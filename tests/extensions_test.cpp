#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/extensions/general_drc.hpp"
#include "ccov/extensions/lambda_cover.hpp"
#include "ccov/extensions/tree_of_rings.hpp"
#include "ccov/graph/generators.hpp"

using namespace ccov;
using namespace ccov::extensions;

// ---------- lambda * K_n ----------

TEST(Lambda, LowerBoundScalesLinearlyForOdd) {
  for (std::uint32_t lam = 1; lam <= 4; ++lam)
    EXPECT_EQ(rho_lambda_lower_bound(9, lam), lam * covering::rho(9));
}

TEST(Lambda, EvenNParityOnlyForOddLambda) {
  const std::uint32_t n = 8;
  const std::uint64_t cap = covering::capacity_lower_bound(n);
  EXPECT_EQ(rho_lambda_lower_bound(n, 1), cap + 1);
  EXPECT_EQ(rho_lambda_lower_bound(n, 2), 2 * cap);
  EXPECT_EQ(rho_lambda_lower_bound(n, 3), 3 * cap + 1);
}

TEST(Lambda, CopiesConstructionValid) {
  for (std::uint32_t lam : {1u, 2u, 3u}) {
    const auto cover = build_lambda_cover(7, lam);
    EXPECT_TRUE(validate_lambda_cover(cover, lam)) << lam;
    EXPECT_EQ(cover.size(), lam * covering::rho(7));
  }
}

TEST(Lambda, OptimalForOddN) {
  // lambda copies of the optimal K_n cover meet the lambda lower bound for
  // odd n: the capacity argument scales exactly.
  for (std::uint32_t lam : {2u, 5u}) {
    EXPECT_EQ(build_lambda_cover(11, lam).size(),
              rho_lambda_lower_bound(11, lam));
  }
}

TEST(Lambda, LowerBoundNeverExceedsKnownOptimum) {
  // Regression: at n = 10, lambda = 1 the bound must equal rho(10) = 13
  // (the parity +1 applies only when p = n/2 is even; p = 5 is odd).
  EXPECT_EQ(rho_lambda_lower_bound(10, 1), covering::rho(10));
  for (std::uint32_t n = 4; n <= 16; n += 2)
    EXPECT_EQ(rho_lambda_lower_bound(n, 1), covering::rho(n)) << n;
}

TEST(Lambda, RejectsBadArgs) {
  EXPECT_THROW(rho_lambda_lower_bound(2, 1), std::invalid_argument);
  EXPECT_THROW(rho_lambda_lower_bound(5, 0), std::invalid_argument);
}

// ---------- trees of rings ----------

TEST(TreeOfRings, DecomposeSingleRing) {
  const auto rings = decompose_rings(graph::cycle_graph(7));
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].vertices.size(), 7u);
}

TEST(TreeOfRings, DecomposeChain) {
  const auto g = graph::tree_of_rings_chain(3, 5);
  const auto rings = decompose_rings(g);
  ASSERT_EQ(rings.size(), 3u);
  for (const auto& r : rings) EXPECT_EQ(r.vertices.size(), 5u);
}

TEST(TreeOfRings, RejectsNonRingGraph) {
  EXPECT_THROW(decompose_rings(graph::path_graph(5)), std::invalid_argument);
}

TEST(TreeOfRings, CoverSingleRingMatchesPlainCover) {
  const auto g = graph::cycle_graph(8);
  const auto result = cover_all_to_all(g);
  ASSERT_EQ(result.ring_covers.size(), 1u);
  EXPECT_EQ(result.total_demand_edges, 28u);
  EXPECT_GE(result.total_cycles, result.lower_bound);
}

TEST(TreeOfRings, ChainCoverServesAllRequests) {
  const auto g = graph::tree_of_rings_chain(2, 6);
  const auto result = cover_all_to_all(g);
  EXPECT_EQ(result.ring_covers.size(), 2u);
  EXPECT_EQ(result.total_demand_edges,
            static_cast<std::uint64_t>(g.num_vertices()) *
                (g.num_vertices() - 1) / 2);
  EXPECT_GE(result.total_cycles, result.lower_bound);
  EXPECT_GT(result.total_cycles, 0u);
}

// ---------- general-graph DRC ----------

TEST(GeneralDrc, RingAgreesWithCircularOrder) {
  const auto g = graph::cycle_graph(6);
  EXPECT_TRUE(satisfies_drc_general(g, {0, 2, 4}));
  EXPECT_TRUE(satisfies_drc_general(g, {0, 1, 2, 3}));
  EXPECT_FALSE(satisfies_drc_general(g, {0, 2, 1, 4}));
  EXPECT_FALSE(satisfies_drc_general(g, {0, 3, 1, 4}));
}

TEST(GeneralDrc, TorusHasMoreRoom) {
  // The crossing quad that fails on a ring routes fine on a torus.
  const auto t = graph::torus_graph(3, 4);
  EXPECT_TRUE(satisfies_drc_general(t, {0, 2, 1, 3}));
}

TEST(GeneralDrc, RoutingIsEdgeDisjoint) {
  const auto g = graph::torus_graph(3, 3);
  const auto paths = edge_disjoint_routing(g, {{0, 4}, {1, 5}, {3, 7}});
  ASSERT_TRUE(paths.has_value());
  std::set<std::pair<graph::Vertex, graph::Vertex>> used;
  for (const auto& p : *paths)
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      auto e = std::make_pair(std::min(p[i], p[i + 1]),
                              std::max(p[i], p[i + 1]));
      EXPECT_TRUE(used.insert(e).second) << "edge reused";
    }
}

TEST(GeneralDrc, InfeasibleWhenCutTooSmall) {
  // Path graph: two requests across the same bridge cannot be disjoint.
  const auto g = graph::path_graph(4);
  EXPECT_FALSE(
      edge_disjoint_routing(g, {{0, 3}, {1, 2}}).has_value());
}

TEST(GeneralDrc, BudgetLimitsSearch) {
  const auto g = graph::torus_graph(4, 4);
  // With a zero node budget nothing can be routed.
  EXPECT_FALSE(satisfies_drc_general(g, {0, 5, 10}, 0));
}
