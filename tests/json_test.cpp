// Tests for the shared JSON layer (ccov/util/json.hpp). The writer's
// byte behaviour is part of the serve wire contract — response lines
// must stay byte-identical across transports and releases — so these
// are golden tests on exact output bytes, plus reader coverage for the
// protocol subset (integers only, strict trailing-garbage detection).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ccov/util/json.hpp"

namespace json = ccov::util::json;

namespace {

json::Value parse_ok(const std::string& text) {
  json::Value v;
  std::string error;
  EXPECT_TRUE(json::Reader(text).parse(&v, &error)) << text << ": " << error;
  return v;
}

std::string parse_err(const std::string& text) {
  json::Value v;
  std::string error;
  EXPECT_FALSE(json::Reader(text).parse(&v, &error)) << text;
  EXPECT_FALSE(error.empty()) << text;
  return error;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

TEST(Json, ReadsScalars) {
  EXPECT_EQ(parse_ok("null").type, json::Value::Type::kNull);
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_EQ(parse_ok("42").integer, 42);
  EXPECT_EQ(parse_ok("-17").integer, -17);
  EXPECT_EQ(parse_ok("0").integer, 0);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
}

TEST(Json, ReadsObjectsPreservingKeyOrder) {
  const json::Value v = parse_ok(R"({"b":1,"a":{"nested":[1,2,3]},"c":"x"})");
  ASSERT_EQ(v.type, json::Value::Type::kObject);
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "b");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "c");
  const json::Value& nested = v.object[1].second;
  ASSERT_EQ(nested.type, json::Value::Type::kObject);
  ASSERT_EQ(nested.object[0].second.array.size(), 3u);
  EXPECT_EQ(nested.object[0].second.array[2].integer, 3);
}

TEST(Json, ReadsStringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r")").string, "a\"b\\c/d\n\t\r");
  EXPECT_EQ(parse_ok(R"("x\b\f")").string, "x\b\f");
  // \uXXXX is not part of the protocol subset.
  const std::string error = parse_err("\"\\u0041\"");
  EXPECT_NE(error.find("unsupported escape"), std::string::npos) << error;
}

TEST(Json, RejectsTheDocumentedErrorCases) {
  parse_err("");
  parse_err("not json");
  parse_err("{");
  parse_err(R"({"a":})");
  parse_err(R"({"a" 1})");
  parse_err("[1,2");
  parse_err("\"unterminated");
  parse_err("tru");
  // Trailing garbage after a complete document is an error, not ignored.
  parse_err(R"({"a":1} trailing)");
  parse_err("1 2");
}

TEST(Json, BoundsNestingDepth) {
  // Exactly at the limit parses...
  std::string at_limit(json::Reader::kMaxDepth, '[');
  at_limit += "1";
  at_limit.append(json::Reader::kMaxDepth, ']');
  EXPECT_EQ(parse_ok(at_limit).type, json::Value::Type::kArray);
  // ...one deeper is a clean error, never a stack overflow. The fuzz
  // corpus pins the original crasher (100k of '[') in
  // tests/fuzz_corpus/json/crash-deep-nesting.
  const std::string error =
      parse_err(std::string(json::Reader::kMaxDepth + 1, '[') + "1");
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
  parse_err(std::string(100000, '['));
  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (int i = 0; i < json::Reader::kMaxDepth; ++i) mixed += R"({"k":[)";
  parse_err(mixed);
}

TEST(Json, RejectsNonIntegerNumbers) {
  const std::string error = parse_err("1.5");
  EXPECT_NE(error.find("non-integer"), std::string::npos) << error;
  parse_err("1e3");
  parse_err("-0.25");
}

// ---------------------------------------------------------------------------
// Writer goldens — these bytes are the wire contract
// ---------------------------------------------------------------------------

TEST(Json, WriterRendersFlatObjectsByteExactly) {
  json::JsonWriter w;
  w.begin_object()
      .key("id").value(std::uint64_t{7})
      .key("ok").value(true)
      .key("algo").value_string("solve")
      .key("n").value(9)
      .end_object();
  EXPECT_EQ(w.str(), R"({"id":7,"ok":true,"algo":"solve","n":9})");
}

TEST(Json, WriterRendersNestedArraysByteExactly) {
  json::JsonWriter w;
  w.begin_object().key("cover").begin_array();
  w.begin_array().value(0).value(1).value(4).end_array();
  w.begin_array().value(2).value(3).end_array();
  w.end_array().key("found").value(false).end_object();
  EXPECT_EQ(w.str(), R"({"cover":[[0,1,4],[2,3]],"found":false})");
}

TEST(Json, WriterEscapesStringsLikeTheProtocol) {
  json::JsonWriter w;
  w.begin_object().key("error").value_string("bad \"op\"\n\tat line\x01\\")
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"error\":\"bad \\\"op\\\"\\n\\tat line\\u0001\\\\\"}");
  EXPECT_EQ(json::escaped("x"), "\"x\"");
  std::string out;
  json::append_escaped(&out, "a\rb");
  EXPECT_EQ(out, "\"a\\rb\"");
}

TEST(Json, WriterEmitsEmptyContainersAndRawSplices) {
  json::JsonWriter w;
  w.begin_object()
      .key("empty_obj").begin_object().end_object()
      .key("empty_arr").begin_array().end_array()
      .key("raw").value_raw("[1,2]")
      .end_object();
  EXPECT_EQ(w.str(), R"({"empty_obj":{},"empty_arr":[],"raw":[1,2]})");
}

TEST(Json, WriterHandlesIntegerExtremes) {
  json::JsonWriter w;
  w.begin_array()
      .value(std::int64_t{-9223372036854775807LL - 1})
      .value(std::uint64_t{18446744073709551615ULL})
      .end_array();
  EXPECT_EQ(w.str(), "[-9223372036854775808,18446744073709551615]");
}

TEST(Json, WriterRoundTripsThroughTheReader) {
  json::JsonWriter w;
  w.begin_object()
      .key("op").value_string("stats")
      .key("hits").value(std::uint64_t{12})
      .key("tags").begin_array().value_string("a").value_string("b")
      .end_array()
      .end_object();
  const json::Value v = parse_ok(w.str());
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].second.string, "stats");
  EXPECT_EQ(v.object[1].second.integer, 12);
  EXPECT_EQ(v.object[2].second.array[1].string, "b");
}
