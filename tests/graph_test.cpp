#include <gtest/gtest.h>

#include <sstream>

#include "ccov/graph/algorithms.hpp"
#include "ccov/graph/generators.hpp"
#include "ccov/graph/graph.hpp"
#include "ccov/graph/io.hpp"

using namespace ccov::graph;

TEST(Graph, AddEdgeGrowsVertexSet) {
  Graph g;
  g.add_edge(2, 5);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_TRUE(g.has_edge(2, 5));
  EXPECT_TRUE(g.has_edge(5, 2));
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, ParallelEdgesCounted) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.multiplicity(0, 1), 2u);
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, EdgesNormalized) {
  Graph g(3);
  g.add_edge(2, 0);
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[0].v, 2u);
}

TEST(Generators, CycleGraphShape) {
  Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(is_cycle_graph(g));
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, CycleGraphTooSmall) {
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Generators, CompleteGraphEdges) {
  Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_TRUE(g.is_simple());
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Generators, CompleteMultigraphLambda) {
  Graph g = complete_multigraph(5, 3);
  EXPECT_EQ(g.num_edges(), 30u);
  EXPECT_EQ(g.multiplicity(1, 3), 3u);
}

TEST(Generators, PathAndStar) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  Graph s = star_graph(6);
  EXPECT_EQ(s.degree(0), 5u);
  EXPECT_EQ(s.degree(3), 1u);
}

TEST(Generators, GridEdges) {
  Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // 9 horizontal + 8 vertical
}

TEST(Generators, TorusRegular) {
  Graph g = torus_graph(3, 5);
  EXPECT_EQ(g.num_edges(), 2u * 15u);
  for (Vertex v = 0; v < 15; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, TreeOfRingsChain) {
  Graph g = tree_of_rings_chain(3, 5);
  EXPECT_EQ(g.num_vertices(), 3u * 4u + 1u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(articulation_points(g).size(), 2u);
}

TEST(Algorithms, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, IsCycleGraphRejectsChord) {
  Graph g = cycle_graph(5);
  g.add_edge(0, 2);
  EXPECT_FALSE(is_cycle_graph(g));
}

TEST(Algorithms, BfsDistancesOnCycle) {
  Graph g = cycle_graph(8);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
  EXPECT_EQ(d[3], 3u);
}

TEST(Algorithms, ShortestPathEndpoints) {
  Graph g = grid_graph(3, 3);
  auto p = shortest_path(g, 0, 8);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 8u);
  EXPECT_EQ(p.size(), 5u);  // 4 hops
}

TEST(Algorithms, ShortestPathUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
}

TEST(Algorithms, ArticulationOfTwoTriangles) {
  Graph g(5);
  // Two triangles sharing vertex 2.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  auto arts = articulation_points(g);
  ASSERT_EQ(arts.size(), 1u);
  EXPECT_EQ(arts[0], 2u);
}

TEST(Algorithms, NoArticulationOnCycle) {
  EXPECT_TRUE(articulation_points(cycle_graph(9)).empty());
}

TEST(Algorithms, EulerianCompleteOddOnly) {
  EXPECT_TRUE(has_eulerian_circuit(complete_graph(5)));
  EXPECT_FALSE(has_eulerian_circuit(complete_graph(6)));
  EXPECT_TRUE(has_eulerian_circuit(cycle_graph(4)));
}

TEST(Io, DotContainsEdges) {
  std::ostringstream os;
  write_dot(os, cycle_graph(3), "tri");
  const std::string s = os.str();
  EXPECT_NE(s.find("graph tri"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
}

TEST(Io, EdgeListRoundTrip) {
  Graph g = complete_graph(5);
  std::stringstream ss;
  write_edge_list(ss, g);
  Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_edges(), 10u);
  EXPECT_TRUE(h.has_edge(2, 4));
}

TEST(Io, EdgeListRejectsTruncated) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

// Parameterized: generator families keep their degree invariants.
class CompleteParam : public ::testing::TestWithParam<std::uint32_t> {};
TEST_P(CompleteParam, HandshakeLemma) {
  const std::uint32_t n = GetParam();
  Graph g = complete_graph(n);
  std::uint64_t degsum = 0;
  for (Vertex v = 0; v < n; ++v) degsum += g.degree(v);
  EXPECT_EQ(degsum, 2 * g.num_edges());
}
INSTANTIATE_TEST_SUITE_P(Sizes, CompleteParam,
                         ::testing::Values(3, 4, 8, 15, 16, 33));
