#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/ring/routing.hpp"
#include "ccov/util/ints.hpp"

using namespace ccov::covering;

TEST(Rho, Theorem1Values) {
  // n = 2p+1 -> p(p+1)/2.
  EXPECT_EQ(rho(3), 1u);
  EXPECT_EQ(rho(5), 3u);
  EXPECT_EQ(rho(7), 6u);
  EXPECT_EQ(rho(9), 10u);
  EXPECT_EQ(rho(11), 15u);
  EXPECT_EQ(rho(101), 50u * 51u / 2u);
}

TEST(Rho, Theorem2Values) {
  // n = 2p -> ceil((p^2+1)/2).
  EXPECT_EQ(rho(6), 5u);
  EXPECT_EQ(rho(8), 9u);
  EXPECT_EQ(rho(10), 13u);
  EXPECT_EQ(rho(12), 19u);
  EXPECT_EQ(rho(14), 25u);
  EXPECT_EQ(rho(100), (50u * 50u + 2u) / 2u);
}

TEST(Rho, PaperK4Example) {
  // The paper's in-text K_4 example uses 3 cycles; the formula agrees.
  EXPECT_EQ(rho(4), 3u);
}

TEST(Rho, RejectsTinyN) { EXPECT_THROW(rho(2), std::invalid_argument); }

TEST(Bounds, CapacityMatchesLoadFormula) {
  for (std::uint32_t n = 3; n <= 60; ++n) {
    EXPECT_EQ(capacity_lower_bound(n),
              ccov::util::ceil_div<std::uint64_t>(
                  ccov::ring::all_to_all_min_load(n), n))
        << n;
  }
}

TEST(Bounds, CapacityTightForOdd) {
  for (std::uint32_t n = 3; n <= 101; n += 2)
    EXPECT_EQ(capacity_lower_bound(n), rho(n)) << n;
}

TEST(Bounds, ParityAddsOneForEven) {
  for (std::uint32_t n = 6; n <= 100; n += 2) {
    EXPECT_EQ(parity_lower_bound(n), rho(n)) << n;
    EXPECT_GE(parity_lower_bound(n), capacity_lower_bound(n)) << n;
    // The refinement gains exactly 1 when p is even (capacity bound is
    // ceil(p^2/2) and rho is p^2/2 + 1), and 0 when p is odd.
    const std::uint64_t p = n / 2;
    const std::uint64_t gain = parity_lower_bound(n) - capacity_lower_bound(n);
    EXPECT_EQ(gain, p % 2 == 0 ? 1u : 0u) << n;
  }
}

TEST(Bounds, ParityIsCapacityForOdd) {
  for (std::uint32_t n = 3; n <= 99; n += 2)
    EXPECT_EQ(parity_lower_bound(n), capacity_lower_bound(n));
}

TEST(Composition, Theorem1Composition) {
  for (std::uint32_t n = 3; n <= 101; n += 2) {
    const std::uint64_t p = (n - 1) / 2;
    const auto comp = theorem_composition(n);
    EXPECT_EQ(comp.c3, p);
    EXPECT_EQ(comp.c4, p * (p - 1) / 2);
    EXPECT_EQ(comp.c3 + comp.c4, rho(n)) << n;
  }
}

TEST(Composition, Theorem2CompositionMod4) {
  // n = 4q: 4 C3 + 2q^2-3 C4.
  for (std::uint32_t q = 2; q <= 20; ++q) {
    const auto comp = theorem_composition(4 * q);
    EXPECT_EQ(comp.c3, 4u);
    EXPECT_EQ(comp.c4, 2ull * q * q - 3);
    EXPECT_EQ(comp.c3 + comp.c4, rho(4 * q));
  }
}

TEST(Composition, Theorem2CompositionMod4Plus2) {
  // n = 4q+2: 2 C3 + 2q^2+2q-1 C4.
  for (std::uint32_t q = 1; q <= 20; ++q) {
    const auto comp = theorem_composition(4 * q + 2);
    EXPECT_EQ(comp.c3, 2u);
    EXPECT_EQ(comp.c4, 2ull * q * q + 2 * q - 1);
    EXPECT_EQ(comp.c3 + comp.c4, rho(4 * q + 2));
  }
}

TEST(Composition, SlotCountIdentityOdd) {
  // 3*C3 + 4*C4 must equal the number of chords of K_n for odd n (the
  // covering is exact: no slack in the capacity bound).
  for (std::uint32_t n = 3; n <= 61; n += 2) {
    const auto comp = theorem_composition(n);
    EXPECT_EQ(3 * comp.c3 + 4 * comp.c4,
              static_cast<std::uint64_t>(n) * (n - 1) / 2)
        << n;
  }
}

TEST(Composition, SlotCountSlackEven) {
  // For even n the theorem covering has exactly p duplicate coverage slots
  // (3*C3 + 4*C4 = chords + p), consistent with the capacity slack.
  for (std::uint32_t n = 6; n <= 60; n += 2) {
    const auto comp = theorem_composition(n);
    const std::uint64_t p = n / 2;
    const std::uint64_t slots = 3 * comp.c3 + 4 * comp.c4;
    const std::uint64_t chords = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    EXPECT_EQ(slots - chords, p) << "n=" << n;
  }
}

// Monotonicity property: rho grows with n.
TEST(Rho, Monotone) {
  for (std::uint32_t n = 4; n <= 300; ++n)
    EXPECT_LE(rho(n - 1), rho(n)) << n;
}

// Growth shape: rho(n) ~ n^2/8.
TEST(Rho, QuadraticGrowthShape) {
  for (std::uint32_t n : {51u, 101u, 201u, 401u}) {
    const double ratio = static_cast<double>(rho(n)) /
                         (static_cast<double>(n) * n / 8.0);
    EXPECT_NEAR(ratio, 1.0, 0.05) << n;
  }
}
