#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/solver.hpp"

using namespace ccov::covering;

// The solver plus the matching lower bound computationally certify the
// rho(n) values of Theorems 1 and 2 for small n: a covering with rho(n)
// cycles exists (solver witness) and none smaller can (parity bound, and
// for extra assurance exhaustive infeasibility at rho-1 on the smallest
// cases).

class SolverParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SolverParam, FindsCoveringAtRho) {
  const std::uint32_t n = GetParam();
  const auto res = solve_with_budget(n, rho(n));
  ASSERT_TRUE(res.found) << "n=" << n;
  const auto rep = validate_cover(res.cover);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(res.cover.size(), rho(n));
}

INSTANTIATE_TEST_SUITE_P(Small, SolverParam,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9));

class SolverInfeasibleParam : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(SolverInfeasibleParam, NoCoveringBelowRho) {
  const std::uint32_t n = GetParam();
  const auto res = solve_with_budget(n, rho(n) - 1);
  EXPECT_FALSE(res.found) << "n=" << n;
  EXPECT_TRUE(res.exhausted) << "search must be a proof, not a timeout";
}

INSTANTIATE_TEST_SUITE_P(Small, SolverInfeasibleParam,
                         ::testing::Values(4, 5, 6, 7, 8));

TEST(Solver, MinimumMatchesRhoOnK7) {
  const auto min = solve_minimum(7);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->first, rho(7));
  EXPECT_TRUE(validate_cover(min->second).ok);
}

TEST(Solver, MinimumMatchesRhoOnK8) {
  const auto min = solve_minimum(8);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->first, rho(8));
}

TEST(Solver, NodeBudgetReported) {
  SolverOptions opts;
  opts.max_nodes = 10;  // absurdly small: must hit the budget on K_8
  const auto res = solve_with_budget(8, rho(8) - 1, opts);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(Solver, TrivialK3) {
  const auto res = solve_with_budget(3, 1);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cover.cycles.size(), 1u);
  EXPECT_EQ(res.cover.cycles[0].size(), 3u);
}
