#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/solver.hpp"

using namespace ccov::covering;

// The solver plus the matching lower bound computationally certify the
// rho(n) values of Theorems 1 and 2 for small n: a covering with rho(n)
// cycles exists (solver witness) and none smaller can (parity bound, and
// for extra assurance exhaustive infeasibility at rho-1 on the smallest
// cases).

class SolverParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SolverParam, FindsCoveringAtRho) {
  const std::uint32_t n = GetParam();
  const auto res = solve_with_budget(n, rho(n));
  ASSERT_TRUE(res.found) << "n=" << n;
  const auto rep = validate_cover(res.cover);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(res.cover.size(), rho(n));
}

INSTANTIATE_TEST_SUITE_P(Small, SolverParam,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9));

class SolverInfeasibleParam : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(SolverInfeasibleParam, NoCoveringBelowRho) {
  const std::uint32_t n = GetParam();
  const auto res = solve_with_budget(n, rho(n) - 1);
  EXPECT_FALSE(res.found) << "n=" << n;
  EXPECT_TRUE(res.exhausted) << "search must be a proof, not a timeout";
}

INSTANTIATE_TEST_SUITE_P(Small, SolverInfeasibleParam,
                         ::testing::Values(4, 5, 6, 7, 8));

TEST(Solver, MinimumMatchesRhoOnK7) {
  const auto min = solve_minimum(7);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->first, rho(7));
  EXPECT_TRUE(validate_cover(min->second).ok);
}

TEST(Solver, MinimumMatchesRhoOnK8) {
  const auto min = solve_minimum(8);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->first, rho(8));
}

TEST(Solver, NodeBudgetReported) {
  SolverOptions opts;
  opts.max_nodes = 10;  // absurdly small: must hit the budget on K_8
  const auto res = solve_with_budget(8, rho(8) - 1, opts);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(Solver, TrivialK3) {
  const auto res = solve_with_budget(3, 1);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cover.cycles.size(), 1u);
  EXPECT_EQ(res.cover.cycles[0].size(), 3u);
}

// ---------------------------------------------------------------------------
// Search determinism goldens. The branch-and-bound search order is part of
// the library contract: node counts and witnesses below were captured from
// the original vector/sort-based implementation, and the bitset/arena core
// must reproduce them exactly. Any future "optimization" that changes the
// candidate ordering, the freshness tie-break, or the pruning sequence
// trips these immediately. (The n=12 proof at budget 18 — 39,310,429
// nodes — is pinned out-of-band in the perf harness; it is too slow for
// the unit tier.)

struct SearchGolden {
  std::uint32_t n;
  std::uint64_t nodes;
  const char* cover;  // concatenated to_string() of the witness
};

constexpr SearchGolden kFeasibleGolden[] = {
    {5, 5, "(0 1 2 3)(0 2 4)(1 3 4)"},
    {6, 6, "(0 1 2 3)(0 2 4 5)(0 1 3 4)(1 4 5)(2 3 5)"},
    {7, 10, "(0 1 2 4)(0 2 3 5)(0 3 4 6)(1 3 6)(1 4 5)(2 5 6)"},
    {8, 24,
     "(0 1 2 3)(0 2 4 5)(0 4 6 7)(0 1 3 6)(1 4 5 6)(1 5 7)(2 3 5)(2 6 7)"
     "(3 4 7)"},
    {9, 72,
     "(0 1 2 5)(0 2 3 6)(0 3 4 7)(0 4 5 8)(1 3 5 6)(1 4 6 8)(1 5 7)(2 4 8)"
     "(2 6 7)(3 7 8)"},
    {11, 54,
     "(0 1 2 6)(0 2 3 7)(0 3 4 8)(0 4 5 9)(0 5 6 10)(1 3 5 7)(1 4 6 8)"
     "(1 5 8 9)(1 6 7 10)(2 4 7 8)(2 5 10)(2 7 9)(3 6 9)(3 8 10)(4 9 10)"},
    {13, 819,
     "(0 1 2 7)(0 2 3 8)(0 3 4 9)(0 4 5 10)(0 5 6 11)(0 6 7 12)(1 3 5 8)"
     "(1 4 6 9)(1 5 7 10)(1 6 8 11)(1 7 8 12)(2 4 7 9)(2 5 9 10)(2 6 12)"
     "(2 8 9 11)(3 6 10)(3 7 11)(3 9 12)(4 8 10 11)(4 10 12)(5 11 12)"},
    {15, 753,
     "(0 1 2 8)(0 2 3 9)(0 3 4 10)(0 4 5 11)(0 5 6 12)(0 6 7 13)(0 7 8 14)"
     "(1 3 5 9)(1 4 6 10)(1 5 7 11)(1 6 8 12)(1 7 9 13)(1 8 9 14)"
     "(2 4 7 10)(2 5 8 11)(2 6 9 12)(2 7 12 13)(2 9 10 14)(3 6 11 12)"
     "(3 7 14)(3 8 13)(3 10 11)(4 8 10 12)(4 9 11 13)(4 11 14)(5 10 13)"
     "(5 12 14)(6 13 14)"},
};

TEST(SolverGolden, FeasibleNodesAndWitnessesPinned) {
  for (const SearchGolden& g : kFeasibleGolden) {
    const auto res = solve_with_budget(g.n, rho(g.n));
    ASSERT_TRUE(res.found) << "n=" << g.n;
    EXPECT_EQ(res.nodes, g.nodes) << "n=" << g.n;
    EXPECT_EQ(to_string(res.cover), g.cover) << "n=" << g.n;
  }
}

struct InfeasibleGolden {
  std::uint32_t n;
  std::uint64_t nodes;
};

constexpr InfeasibleGolden kInfeasibleGolden[] = {
    {5, 1}, {6, 1}, {7, 1}, {8, 9823}, {9, 1}, {10, 1}, {11, 1}, {13, 1},
};

TEST(SolverGolden, InfeasibleProofNodesPinned) {
  for (const InfeasibleGolden& g : kInfeasibleGolden) {
    const auto res = solve_with_budget(g.n, rho(g.n) - 1);
    EXPECT_FALSE(res.found) << "n=" << g.n;
    EXPECT_TRUE(res.exhausted) << "n=" << g.n;
    EXPECT_EQ(res.nodes, g.nodes) << "n=" << g.n;
  }
}

TEST(SolverGolden, MinimumWitnessPinnedOnK9) {
  const auto min = solve_minimum(9);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->first, rho(9));
  EXPECT_EQ(to_string(min->second),
            "(3 7 8)(2 3 6 7)(2 6 8)(1 2 5 6)(1 3 5 7)(1 5 8)(0 1 4 5)"
            "(0 2 4 6)(0 3 4 7)(0 4 8)");
}

// ---------------------------------------------------------------------------
// Candidate enumeration. The rewritten generator emits each candidate
// exactly once, in lexicographically sorted vertex order, with no dedup
// pass — these regression tests pin that the lists stay duplicate-free
// and complete for every chord.

TEST(SolverCandidates, DuplicateFreeForEveryChord) {
  for (std::uint32_t n = 5; n <= 12; ++n) {
    for (Vertex a = 0; a < n; ++a) {
      for (Vertex b = a + 1; b < n; ++b) {
        const auto cands = detail::candidate_cycles(n, a, b);
        std::set<Cycle> seen;
        for (const Cycle& c : cands) {
          EXPECT_TRUE(seen.insert(c).second)
              << "duplicate candidate " << to_string(c) << " for chord ("
              << a << "," << b << "), n=" << n;
          EXPECT_TRUE(is_valid_cycle(c, n)) << to_string(c);
          EXPECT_TRUE(std::is_sorted(c.begin(), c.end())) << to_string(c);
          // (a, b) must be an edge of the circularly ordered cycle.
          bool has_chord = false;
          for (const auto& [u, v] : cycle_chords(c))
            has_chord |= (u == a && v == b);
          EXPECT_TRUE(has_chord) << to_string(c);
        }
      }
    }
  }
}

TEST(SolverCandidates, CountMatchesClosedForm) {
  // n-2 triangles, plus quads whose two extra vertices share one of the
  // two open arcs between a and b.
  for (std::uint32_t n = 5; n <= 12; ++n) {
    for (Vertex a = 0; a < n; ++a) {
      for (Vertex b = a + 1; b < n; ++b) {
        const std::size_t inside = b - a - 1;
        const std::size_t outside = n - 2 - inside;
        const std::size_t expect = (n - 2) + inside * (inside - 1) / 2 +
                                   outside * (outside - 1) / 2;
        EXPECT_EQ(detail::candidate_cycles(n, a, b).size(), expect)
            << "chord (" << a << "," << b << "), n=" << n;
      }
    }
  }
}

TEST(SolverCandidates, TriangleOnlyWhenMaxLenIsThree) {
  SolverOptions opts;
  opts.max_cycle_len = 3;
  const auto cands = detail::candidate_cycles(9, 2, 6, opts);
  EXPECT_EQ(cands.size(), 7u);  // n - 2 triangles, no quads
  for (const Cycle& c : cands) EXPECT_EQ(c.size(), 3u);
}
