#include <gtest/gtest.h>

#include <set>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/drc.hpp"

using namespace ccov::covering;

// ---------- Theorem 1: odd n, full reproduction ----------

class OddConstructParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OddConstructParam, ValidCovering) {
  const auto cover = construct_odd_cover(GetParam());
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST_P(OddConstructParam, ExactlyRhoCycles) {
  const std::uint32_t n = GetParam();
  EXPECT_EQ(construct_odd_cover(n).size(), rho(n));
}

TEST_P(OddConstructParam, MatchesTheoremComposition) {
  const std::uint32_t n = GetParam();
  const auto cover = construct_odd_cover(n);
  const auto want = theorem_composition(n);
  EXPECT_EQ(count_c3(cover), want.c3);
  EXPECT_EQ(count_c4(cover), want.c4);
  EXPECT_EQ(count_c3(cover) + count_c4(cover), cover.size());  // only C3/C4
}

TEST_P(OddConstructParam, CoverIsExactPartition) {
  // For odd n the optimal covering covers every chord exactly once.
  const auto cover = construct_odd_cover(GetParam());
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.duplicate_coverage, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OddConstructParam,
                         ::testing::Values(3, 5, 7, 9, 11, 13, 15, 17, 19, 21,
                                           25, 31, 41, 51, 75, 101, 151));

// ---------- Theorem 2: even n ----------

class EvenExactParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EvenExactParam, ValidOptimalAndTheoremComposition) {
  const std::uint32_t n = GetParam();
  const auto cover = construct_even_cover(n);
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(cover.size(), rho(n));
  if (n >= 6) {
    const auto want = theorem_composition(n);
    EXPECT_EQ(count_c3(cover), want.c3);
    EXPECT_EQ(count_c4(cover), want.c4);
  }
}

// Optimality (count == rho) is realised exactly for even n <= 12, where the
// exact solver has certified Theorem 2 (see solver_test.cpp).
INSTANTIATE_TEST_SUITE_P(SmallEven, EvenExactParam,
                         ::testing::Values(4, 6, 8, 10, 12));

class EvenGeneralParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EvenGeneralParam, ValidCovering) {
  const auto cover = construct_even_cover(GetParam());
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST_P(EvenGeneralParam, WithinDocumentedGapOfRho) {
  // For even n >= 14 the general construction uses (p^2+p)/2 cycles =
  // rho(n) + floor((p-1)/2); see DESIGN.md 2.4 and EXPERIMENTS.md.
  const std::uint32_t n = GetParam();
  const std::uint64_t p = n / 2;
  const auto cover = construct_even_cover(n);
  EXPECT_GE(cover.size(), rho(n));
  EXPECT_EQ(cover.size(), rho(n) + (p - 1) / 2);
  EXPECT_EQ(cover.size(), p * (p + 1) / 2);
}

TEST_P(EvenGeneralParam, EveryCycleSatisfiesDrc) {
  const std::uint32_t n = GetParam();
  const ccov::ring::Ring r(n);
  for (const auto& c : construct_even_cover(n).cycles)
    EXPECT_TRUE(satisfies_drc(r, c)) << to_string(c);
}

INSTANTIATE_TEST_SUITE_P(LargeEven, EvenGeneralParam,
                         ::testing::Values(14, 16, 18, 20, 26, 32, 40, 50, 64,
                                           100));

// ---------- Dispatcher ----------

TEST(BuildOptimal, DispatchesByParity) {
  EXPECT_EQ(build_optimal_cover(9).size(), rho(9));
  EXPECT_EQ(build_optimal_cover(8).size(), rho(8));
  EXPECT_THROW(build_optimal_cover(2), std::invalid_argument);
}

TEST(BuildOptimal, RejectsWrongParityCalls) {
  EXPECT_THROW(construct_odd_cover(8), std::invalid_argument);
  EXPECT_THROW(construct_even_cover(9), std::invalid_argument);
}

TEST(BuildOptimal, K4MatchesPaperExample) {
  // The covering for n = 4 is the one spelled out in the paper's text.
  const auto cover = build_optimal_cover(4);
  ASSERT_EQ(cover.size(), 3u);
  std::multiset<std::size_t> sizes;
  for (const auto& c : cover.cycles) sizes.insert(c.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{3, 3, 4}));
}

// ---------- Structural properties of the odd induction ----------

TEST(OddInduction, EachStepAddsPNewCycles) {
  // rho(2p+1) - rho(2p-1) = p; the inductive construction realises that.
  for (std::uint32_t p = 2; p <= 20; ++p) {
    const auto small = construct_odd_cover(2 * p - 1);
    const auto big = construct_odd_cover(2 * p + 1);
    EXPECT_EQ(big.size() - small.size(), p);
  }
}

TEST(OddInduction, NewVerticesCoveredByNewCycles) {
  // In the covering of K_{2p+1}, vertices 0 and p (the inserted u, v of the
  // last step) appear together in exactly p cycles.
  const std::uint32_t n = 17;
  const std::uint32_t p = (n - 1) / 2;
  const auto cover = construct_odd_cover(n);
  std::size_t both = 0;
  for (const auto& c : cover.cycles) {
    const bool has_u = std::find(c.begin(), c.end(), 0u) != c.end();
    const bool has_v = std::find(c.begin(), c.end(), p) != c.end();
    if (has_u && has_v) ++both;
  }
  EXPECT_EQ(both, p);
}

TEST(EvenFallback, AntipodalChordsEachCoveredOnce) {
  const std::uint32_t n = 20;
  const auto cover = construct_even_cover(n);
  std::map<std::pair<Vertex, Vertex>, int> anti;
  for (const auto& c : cover.cycles)
    for (const auto& [a, b] : cycle_chords(c))
      if (b - a == n / 2) anti[{a, b}]++;
  EXPECT_EQ(anti.size(), n / 2);
  for (const auto& [ch, cnt] : anti) EXPECT_EQ(cnt, 1) << ch.first;
}
