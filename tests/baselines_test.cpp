#include <gtest/gtest.h>

#include <set>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"

using namespace ccov;
using namespace ccov::baselines;

namespace {

bool covers_all_pairs(std::uint32_t n,
                      const std::vector<covering::Cycle>& cycles) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> covered;
  for (const auto& c : cycles)
    for (const auto& ch : covering::cycle_chords(c)) covered.insert(ch);
  return covered.size() == static_cast<std::size_t>(n) * (n - 1) / 2;
}

}  // namespace

TEST(TripleCover, FortHedlundKnownValues) {
  EXPECT_EQ(triple_covering_number(3), 1u);
  EXPECT_EQ(triple_covering_number(4), 3u);
  EXPECT_EQ(triple_covering_number(5), 4u);
  EXPECT_EQ(triple_covering_number(6), 6u);
  EXPECT_EQ(triple_covering_number(7), 7u);   // Fano plane
  EXPECT_EQ(triple_covering_number(9), 12u);  // affine plane AG(2,3)
  EXPECT_EQ(triple_covering_number(13), 26u); // Steiner system S(2,3,13)
}

TEST(TripleCover, GreedyCoversEverything) {
  for (std::uint32_t n : {5u, 8u, 11u, 14u}) {
    const auto cover = greedy_triple_cover(n);
    EXPECT_TRUE(covers_all_pairs(n, cover)) << n;
    for (const auto& c : cover) EXPECT_EQ(c.size(), 3u);
  }
}

TEST(TripleCover, GreedyRespectsFortHedlund) {
  for (std::uint32_t n = 4; n <= 16; ++n)
    EXPECT_GE(greedy_triple_cover(n).size(), triple_covering_number(n)) << n;
}

TEST(TripleCover, MostTrianglesViolateDrc) {
  // The classical covering ignores routing: on a ring many of its
  // triangles are fine (all triangles are circularly ordered!), so this
  // baseline is about counts, not feasibility — verify the count gap
  // instead: C(n,3,2) ~ n^2/6 > rho(n) ~ n^2/8.
  for (std::uint32_t n : {15u, 21u, 33u}) {
    EXPECT_GT(triple_covering_number(n), covering::rho(n)) << n;
  }
}

TEST(TripleCover, AllTrianglesAreDrcFeasible) {
  // Sanity check of count_drc_feasible: triangles always satisfy the DRC.
  const auto cover = greedy_triple_cover(9);
  EXPECT_EQ(count_drc_feasible(9, cover), cover.size());
}

TEST(C4Cover, LowerBoundValues) {
  EXPECT_EQ(c4_covering_lower_bound(8), 8u);    // max(7, 8)
  EXPECT_EQ(c4_covering_lower_bound(9), 9u);    // 9*8/8 = 9
  EXPECT_GE(c4_covering_lower_bound(10), 12u);  // ceil(90/8)=12, vertex 13?
}

TEST(C4Cover, VertexBoundDominatesForEvenN) {
  // For even n the per-vertex bound ceil(n*ceil((n-1)/2)/4) = n^2/8 exceeds
  // the edge bound n(n-1)/8.
  for (std::uint32_t n = 6; n <= 20; n += 2) {
    const std::uint64_t N = n;
    EXPECT_GE(c4_covering_lower_bound(n), N * N / 8) << n;
  }
}

TEST(C4Cover, GreedyCoversEverything) {
  for (std::uint32_t n : {6u, 9u, 12u}) {
    const auto cover = greedy_c4_cover(n);
    EXPECT_TRUE(covers_all_pairs(n, cover)) << n;
    EXPECT_GE(cover.size(), c4_covering_lower_bound(n)) << n;
  }
}

TEST(Emz, ObjectiveOfOptimalCover) {
  // Optimal covers use C3/C4 only: objective = 3*C3 + 4*C4.
  const auto cover = covering::build_optimal_cover(9);
  EXPECT_EQ(emz_objective(cover),
            3 * covering::count_c3(cover) + 4 * covering::count_c4(cover));
}

TEST(Emz, LowerBoundHolds) {
  for (std::uint32_t n = 4; n <= 20; ++n) {
    const auto cover = covering::build_optimal_cover(n);
    EXPECT_GE(emz_objective(cover), emz_lower_bound(n)) << n;
  }
}

TEST(Emz, GreedyValidAndBounded) {
  const auto cover = emz_greedy_cover(12);
  EXPECT_TRUE(covering::validate_cover(cover).ok);
  EXPECT_GE(emz_objective(cover), emz_lower_bound(12));
}

TEST(Baselines, DrcOptimalBeatsTripleCountAsymptotically) {
  // Who wins and by what factor: triple covering needs ~n^2/6, the DRC
  // covering ~n^2/8 — ratio approaches 4/3.
  const std::uint32_t n = 101;
  const double ratio = static_cast<double>(triple_covering_number(n)) /
                       static_cast<double>(covering::rho(n));
  EXPECT_NEAR(ratio, 4.0 / 3.0, 0.08);
}
