// Robustness tests: the FailPoint fault-injection registry, request
// deadlines / cooperative cancellation in the solver and engine, and
// seeded chaos schedules that arm random failpoint combinations against
// full serve sessions over the stdio, TCP and shared-memory transports.
//
// Invariants every chaos schedule must preserve, whatever faults fire:
//  - the process never crashes (the test binary surviving IS the check);
//  - every response line that arrives carries sequential ids from 0 —
//    requests are answered or diagnosed in input order, never silently
//    skipped or reordered (a torn transport may truncate the tail);
//  - the server outlives the faulted session and serves the next
//    clean client normally;
//  - an interrupted snapshot save never corrupts the previous snapshot.
//
// The FailPoint and Deadline suites run in every build; the Chaos
// suites skip unless the binary was configured with -DCCOV_FAILPOINTS=ON
// (the seams compile to `(false)` otherwise).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccov/covering/solver.hpp"
#include "ccov/engine/cache.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/engine/net.hpp"
#include "ccov/engine/serve.hpp"
#include "ccov/engine/shm.hpp"
#include "ccov/engine/store.hpp"
#include "ccov/util/failpoint.hpp"
#include "ccov/util/timer.hpp"

namespace cov = ccov::covering;
namespace eng = ccov::engine;
namespace net = ccov::engine::net;
namespace shm = ccov::engine::shm;
namespace fp = ccov::util::failpoint;

using ccov::util::CancelToken;
using ccov::util::Deadline;

namespace {

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// RAII: whatever a test armed is gone when the test ends, even on
/// assertion failure.
struct ClearAllGuard {
  ~ClearAllGuard() { fp::clear_all(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// FailPoint: the registry itself (compiled in every build).
// ---------------------------------------------------------------------------

TEST(FailPoint, UnknownNamesAreOff) {
  ClearAllGuard guard;
  EXPECT_FALSE(fp::should_fail("no_such_point"));
  EXPECT_EQ(fp::hits("no_such_point"), 0u);
  EXPECT_TRUE(fp::names().empty());
}

TEST(FailPoint, ErrorModeFiresAndCounts) {
  ClearAllGuard guard;
  std::string err;
  ASSERT_TRUE(fp::set("p", "error", &err)) << err;
  EXPECT_TRUE(fp::should_fail("p"));
  EXPECT_TRUE(fp::should_fail("p"));
  EXPECT_EQ(fp::hits("p"), 2u);
  ASSERT_EQ(fp::names().size(), 1u);
  EXPECT_EQ(fp::names()[0], "p");
  fp::clear("p");
  EXPECT_FALSE(fp::should_fail("p"));
  EXPECT_EQ(fp::hits("p"), 0u);
}

TEST(FailPoint, CountSuffixBoundsTheFirings) {
  ClearAllGuard guard;
  ASSERT_TRUE(fp::set("p", "error*2"));
  EXPECT_TRUE(fp::should_fail("p"));
  EXPECT_TRUE(fp::should_fail("p"));
  EXPECT_FALSE(fp::should_fail("p"));  // exhausted: back to off
  EXPECT_FALSE(fp::should_fail("p"));
  EXPECT_EQ(fp::hits("p"), 2u);
}

TEST(FailPoint, DelayModeSleepsThenProceeds) {
  ClearAllGuard guard;
  ASSERT_TRUE(fp::set("p", "delay:30"));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fp::should_fail("p"));  // delay is not a failure
  EXPECT_GE(elapsed_ms_since(t0), 25.0);
  EXPECT_EQ(fp::hits("p"), 1u);
}

TEST(FailPoint, MalformedSpecsAreRejectedAndChangeNothing) {
  ClearAllGuard guard;
  ASSERT_TRUE(fp::set("p", "error"));
  std::string err;
  for (const char* bad :
       {"", "bogus", "delay", "delay:", "delay:x", "error*", "error*x",
        "delay:5*", "crash*0x2"}) {
    err.clear();
    EXPECT_FALSE(fp::set("p", bad, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
  EXPECT_TRUE(fp::should_fail("p"));  // previous state survived
}

TEST(FailPoint, ConfigureParsesTheEnvSyntax) {
  ClearAllGuard guard;
  std::string err;
  ASSERT_TRUE(fp::configure("a=error;b=delay:1*3;;c=off", &err)) << err;
  EXPECT_TRUE(fp::should_fail("a"));
  EXPECT_FALSE(fp::should_fail("b"));
  EXPECT_FALSE(fp::should_fail("c"));
  EXPECT_FALSE(fp::configure("a=error;broken", &err));
  EXPECT_FALSE(err.empty());
  fp::clear_all();
  EXPECT_FALSE(fp::should_fail("a"));
  EXPECT_TRUE(fp::names().empty());
}

TEST(FailPoint, ValidateAcceptsWellFormedConfigsWithoutArming) {
  ClearAllGuard guard;
  std::string err;
  EXPECT_TRUE(fp::validate("a=error;b=delay:1*3;;c=off;d=crash*2", &err))
      << err;
  // Parse-only: nothing was armed, nothing fires.
  EXPECT_TRUE(fp::names().empty());
  EXPECT_FALSE(fp::should_fail("a"));
}

TEST(FailPoint, ValidateRejectsUnknownActions) {
  std::string err;
  EXPECT_FALSE(fp::validate("net_read=explode", &err));
  EXPECT_NE(err.find("unknown spec"), std::string::npos) << err;
  EXPECT_TRUE(fp::names().empty());  // the valid prefix is NOT armed either
}

TEST(FailPoint, ValidateRejectsBadCounts) {
  std::string err;
  EXPECT_FALSE(fp::validate("a=error*x", &err));
  EXPECT_NE(err.find("bad count"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(fp::validate("a=error;b=delay:5*-1", &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(fp::validate("noequals", &err));
  EXPECT_NE(err.find("bad entry"), std::string::npos) << err;
}

TEST(FailPointDeathTest, CrashModeAbortsOnce) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ClearAllGuard guard;
  ASSERT_TRUE(fp::set("boom", "crash"));
  EXPECT_DEATH((void)fp::should_fail("boom"), "");
  // In the parent the point is still armed for its single firing; clear
  // it rather than firing it here.
  fp::clear("boom");
}

// ---------------------------------------------------------------------------
// Deadline / CancelToken primitives.
// ---------------------------------------------------------------------------

TEST(Deadline, UnsetNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.set());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(Deadline::after_ms(0).set());
  EXPECT_FALSE(Deadline::after_ms(-5).set());
}

TEST(Deadline, AfterMsExpiresOnSchedule) {
  const Deadline d = Deadline::after_ms(40);
  ASSERT_TRUE(d.set());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0);
}

TEST(Deadline, CancelTokenLifecycle) {
  CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  tok.cancel();  // idempotent
  EXPECT_TRUE(tok.cancelled());
  tok.reset();
  EXPECT_FALSE(tok.cancelled());
}

// ---------------------------------------------------------------------------
// Deadline / cancellation in the solver.
// ---------------------------------------------------------------------------

namespace {

/// n=10 with budget 13 (= rho(10)) is the workhorse long search: it
/// neither finds a cover nor exhausts within the default 200M-node
/// budget, so without a deadline it grinds for seconds — perfect for
/// proving an interrupt actually interrupted.
constexpr std::uint32_t kHardN = 10;
constexpr std::uint64_t kHardBudget = 13;

}  // namespace

TEST(Deadline, SolverStopsAtTheDeadline) {
  cov::SolverOptions opts;
  opts.deadline = Deadline::after_ms(50);
  const auto t0 = std::chrono::steady_clock::now();
  const cov::SolverResult res =
      cov::solve_with_budget(kHardN, kHardBudget, opts);
  EXPECT_LT(elapsed_ms_since(t0), 2000.0)
      << "a 50ms deadline must not run for seconds";
  EXPECT_TRUE(res.timed_out);
  EXPECT_FALSE(res.cancelled);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted) << "a timeout is never an infeasibility proof";
  EXPECT_GT(res.nodes, 0u);
}

TEST(Deadline, ParallelSolverStopsAtTheDeadline) {
  cov::SolverOptions opts;
  opts.deadline = Deadline::after_ms(50);
  const auto t0 = std::chrono::steady_clock::now();
  const cov::SolverResult res =
      cov::solve_with_budget_parallel(kHardN, kHardBudget, opts, 2);
  EXPECT_LT(elapsed_ms_since(t0), 3000.0);
  EXPECT_TRUE(res.timed_out);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(Deadline, CancelTokenAbortsTheSolverMidSearch) {
  CancelToken tok;
  cov::SolverOptions opts;
  opts.cancel = &tok;
  std::thread killer([&tok] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    tok.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const cov::SolverResult res =
      cov::solve_with_budget(kHardN, kHardBudget, opts);
  killer.join();
  EXPECT_LT(elapsed_ms_since(t0), 2000.0)
      << "cancellation latency is bounded by the ~4k-node poll interval";
  EXPECT_TRUE(res.cancelled);
  EXPECT_FALSE(res.timed_out);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(Deadline, CancelTokenAbortsTheParallelSolver) {
  CancelToken tok;
  cov::SolverOptions opts;
  opts.cancel = &tok;
  std::thread killer([&tok] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    tok.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const cov::SolverResult res =
      cov::solve_with_budget_parallel(kHardN, kHardBudget, opts, 2);
  killer.join();
  EXPECT_LT(elapsed_ms_since(t0), 3000.0);
  EXPECT_TRUE(res.cancelled);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(Deadline, AnAlreadyCancelledTokenStopsTheSearchAlmostImmediately) {
  CancelToken tok;
  tok.cancel();
  cov::SolverOptions opts;
  opts.cancel = &tok;
  const cov::SolverResult res =
      cov::solve_with_budget(kHardN, kHardBudget, opts);
  EXPECT_TRUE(res.cancelled);
  // The poll runs every 4096 nodes, so a pre-cancelled search visits at
  // most a few poll intervals' worth of nodes.
  EXPECT_LE(res.nodes, 3u * 4096u);
}

TEST(Deadline, GoldenNodeCountsAreByteIdenticalWithoutADeadline) {
  // Pinned against the pre-deadline solver (PR 7, commit 6bdf933): the
  // amortized interrupt poll must not change what the search visits.
  // Any drift here means unset deadlines are no longer free.
  const struct {
    std::uint32_t n;
    std::uint64_t budget;
    std::uint64_t nodes;
    bool found;
  } golden[] = {
      {8, 9, 24, true},
      {9, 10, 72, true},
      {11, 15, 54, true},
      {13, 21, 819, true},
      {9, 6, 1, false},  // exhausted infeasibility proof
  };
  CancelToken never_fired;
  for (const auto& g : golden) {
    // Default options: no deadline, no token.
    const cov::SolverResult plain = cov::solve_with_budget(g.n, g.budget);
    EXPECT_EQ(plain.nodes, g.nodes) << "n=" << g.n;
    EXPECT_EQ(plain.found, g.found) << "n=" << g.n;
    EXPECT_TRUE(plain.exhausted) << "n=" << g.n;
    EXPECT_FALSE(plain.timed_out);
    EXPECT_FALSE(plain.cancelled);
    // An unset deadline plus a live-but-quiet token: still identical.
    cov::SolverOptions opts;
    opts.deadline = Deadline::after_ms(0);
    opts.cancel = &never_fired;
    const cov::SolverResult armed = cov::solve_with_budget(g.n, g.budget, opts);
    EXPECT_EQ(armed.nodes, g.nodes) << "n=" << g.n;
    EXPECT_EQ(armed.found, g.found) << "n=" << g.n;
  }
}

// ---------------------------------------------------------------------------
// Deadline / degradation / shedding through the engine and serve stack.
// ---------------------------------------------------------------------------

namespace {

eng::CoverRequest hard_request(std::uint64_t deadline_ms) {
  eng::CoverRequest req;
  req.algorithm = "solve";
  req.n = kHardN;
  req.budget = kHardBudget;
  req.deadline_ms = deadline_ms;
  return req;
}

}  // namespace

TEST(Deadline, EngineResolvesDeadlineMsAndNeverCachesTimeouts) {
  eng::Engine engine;
  const eng::CoverResponse resp = engine.run(hard_request(40));
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.timed_out);
  EXPECT_FALSE(resp.found);
  EXPECT_FALSE(resp.degraded);
  EXPECT_FALSE(eng::CoverCache::should_cache(resp));
  EXPECT_EQ(engine.cache().size(), 0u) << "deadline casualties must not pin";
  // A repeat is recomputed, not served from a poisoned cache entry.
  const eng::CoverResponse again = engine.run(hard_request(40));
  EXPECT_FALSE(again.cache_hit);
  EXPECT_TRUE(again.timed_out);
}

TEST(Deadline, GreedyFallbackAnswersTimedOutSolvesWhenEnabled) {
  eng::EngineOptions opts;
  opts.fallback_greedy = true;
  eng::Engine engine(opts);
  eng::CoverRequest req = hard_request(40);
  req.validate = true;
  const eng::CoverResponse resp = engine.run(req);
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.timed_out);
  EXPECT_TRUE(resp.degraded);
  EXPECT_TRUE(resp.found) << "degradation means an answer, not a shrug";
  EXPECT_TRUE(resp.validated);
  EXPECT_TRUE(resp.valid) << "a degraded cover is still a real cover";
  EXPECT_FALSE(eng::CoverCache::should_cache(resp))
      << "a deliberately non-minimal answer must never be cached";
  EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(Deadline, ShutdownCancellationSkipsTheGreedyFallback) {
  // --fallback greedy degrades *timeouts*; a shutdown cancel must stay
  // fast and answer bare, not run one more algorithm.
  eng::EngineOptions opts;
  opts.fallback_greedy = true;
  eng::Engine engine(opts);
  CancelToken tok;
  tok.cancel();
  eng::CoverRequest req = hard_request(0);
  req.cancel = &tok;
  const eng::CoverResponse resp = engine.run(req);
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.timed_out);  // rendered the same as a timeout
  EXPECT_FALSE(resp.degraded);
  EXPECT_FALSE(resp.found);
}

TEST(Deadline, ServeAppliesTheDefaultDeadlineAndRendersFlagsOnlyWhenRaised) {
  eng::Engine engine;
  eng::ServeConfig config;
  config.default_deadline_ms = 40;
  std::istringstream in(
      "{\"algo\":\"solve\",\"n\":10,\"budget\":13}\n"
      "{\"algo\":\"construct\",\"n\":9}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0);
  std::istringstream lines(out.str());
  std::string slow, fast;
  ASSERT_TRUE(std::getline(lines, slow));
  ASSERT_TRUE(std::getline(lines, fast));
  EXPECT_EQ(slow.rfind("{\"id\":0,", 0), 0u) << slow;
  EXPECT_NE(slow.find("\"timed_out\":true"), std::string::npos) << slow;
  EXPECT_EQ(fast.rfind("{\"id\":1,", 0), 0u) << fast;
  // Byte-identity: flags render only when raised, so a fast request's
  // line is exactly what a build without deadlines produced.
  EXPECT_EQ(fast.find("timed_out"), std::string::npos) << fast;
  EXPECT_EQ(fast.find("degraded"), std::string::npos) << fast;
  EXPECT_EQ(fast.find("shed"), std::string::npos) << fast;
  EXPECT_EQ(engine.metrics().value("ccov_requests_timed_out_total"), 1);
}

TEST(Deadline, PerRequestDeadlineOverridesTheDefault) {
  eng::Engine engine;
  eng::ServeConfig config;
  config.default_deadline_ms = 600000;  // effectively none
  std::istringstream in("{\"algo\":\"solve\",\"n\":10,\"budget\":13,"
                        "\"deadline_ms\":40}\n");
  std::ostringstream out;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0);
  EXPECT_LT(elapsed_ms_since(t0), 5000.0);
  EXPECT_NE(out.str().find("\"timed_out\":true"), std::string::npos)
      << out.str();
}

TEST(Deadline, QueuedRequestsWhoseDeadlineExpiredAreShedInBand) {
  // Pipelined session (jobs=2, batch=1): the first flush grinds until
  // its 400ms deadline while the second request — accepted immediately
  // by the parser thread with only 40ms of life — waits behind it. By
  // the time its flush job runs, it is dead: the server must say so
  // in-band, in order, without wasting a solve on it.
  eng::Engine engine;
  eng::ServeConfig config;
  config.jobs = 2;
  std::istringstream in(
      "{\"algo\":\"solve\",\"n\":10,\"budget\":13,\"deadline_ms\":400}\n"
      "{\"algo\":\"construct\",\"n\":9,\"deadline_ms\":40}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0);
  std::istringstream lines(out.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_NE(first.find("\"timed_out\":true"), std::string::npos) << first;
  EXPECT_EQ(second.rfind("{\"id\":1,", 0), 0u) << second;
  EXPECT_NE(second.find("\"shed\":true"), std::string::npos) << second;
  EXPECT_EQ(second.find("\"cycles\""), std::string::npos)
      << "a shed request must not carry a cover: " << second;
  EXPECT_EQ(
      engine.metrics().counter("ccov_requests_shed_total", "").value(), 1u);
}

TEST(Deadline, SessionCancelTokenStopsTheSessionBetweenLines) {
  // A pre-cancelled server token: the session must answer nothing and
  // exit immediately — the between-lines check, which bounds shutdown
  // latency for transports whose reads cannot be woken.
  eng::Engine engine;
  eng::ServeConfig config;
  CancelToken tok;
  tok.cancel();
  config.cancel = &tok;
  std::istringstream in("{\"algo\":\"construct\",\"n\":9}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0);
  EXPECT_TRUE(out.str().empty()) << out.str();
}

// ---------------------------------------------------------------------------
// Chaos: seeded random failpoint schedules against full serve sessions.
// ---------------------------------------------------------------------------

namespace {

/// The chaos workload: compute requests (one D_n pair to exercise the
/// cache), a garbage line (in-band error path), a control verb and a
/// save (snapshot seams). Six lines, ids 0..5.
const char kChaosWorkload[] =
    "{\"algo\":\"construct\",\"n\":9}\n"
    "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[0,3],[1,4]]}\n"
    "this is not json\n"
    "{\"op\":\"stats\"}\n"
    "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[2,5],[3,6]]}\n"
    "{\"op\":\"save\"}\n";
constexpr std::size_t kChaosWorkloadLines = 6;

/// Arm a random schedule drawn from `points`. Specs mix error (with
/// small counts, so sessions can make progress past the faults), short
/// delays (to shake scheduling) and off. Returns a description for
/// failure messages.
std::string arm_random_schedule(std::mt19937* rng,
                                const std::vector<std::string>& points) {
  std::string desc;
  for (const std::string& point : points) {
    static const char* const kSpecs[] = {
        "off", "error*1", "error*2", "delay:5*2", "delay:20*1", "off",
    };
    const std::string spec = kSpecs[(*rng)() % (sizeof(kSpecs) /
                                                sizeof(kSpecs[0]))];
    if (spec == "off") continue;
    EXPECT_TRUE(fp::set(point, spec));
    desc += point + "=" + spec + ";";
  }
  return desc.empty() ? "(all off)" : desc;
}

/// Every received line must be `{"id":k,...}` for k = 0,1,2,... — an
/// in-order, gap-free prefix of the request stream. Returns how many
/// lines arrived.
std::size_t expect_ordered_prefix(const std::string& output,
                                  const std::string& context) {
  std::istringstream lines(output);
  std::string line;
  std::size_t next = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"id\":" + std::to_string(next) + ",";
    EXPECT_EQ(line.rfind(prefix, 0), 0u)
        << context << "\nexpected response id " << next << ", got: " << line;
    EXPECT_NE(line.find("\"ok\":"), std::string::npos)
        << context << "\nnot a response/diagnostic line: " << line;
    ++next;
  }
  return next;
}

std::string chaos_tmp_snapshot(const char* tag, int seed) {
  namespace fs = std::filesystem;
  return (fs::path(testing::TempDir()) /
          ("ccov_chaos_" + std::string(tag) + "_" + std::to_string(seed) +
           "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

}  // namespace

TEST(Chaos, StdioSchedulesAnswerEveryLineInOrder) {
  if (!fp::compiled())
    GTEST_SKIP() << "binary built without CCOV_FAILPOINTS=ON";
  ClearAllGuard guard;
  // The stdio transport has no read/write seams, so every line must be
  // answered whatever fires: cache drops, pipeline stalls, snapshot
  // failures all stay in-band.
  const std::vector<std::string> points = {"cache_insert", "pipeline_submit",
                                           "snapshot_open", "snapshot_write",
                                           "snapshot_fsync", "snapshot_rename"};
  for (int seed = 0; seed < 10; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    const std::string schedule = arm_random_schedule(&rng, points);
    eng::Engine engine;
    eng::ServeConfig config;
    config.jobs = 1 + rng() % 2;
    config.batch = 1 + rng() % 3;
    config.cache_file = chaos_tmp_snapshot("stdio", seed);
    std::istringstream in(kChaosWorkload);
    std::ostringstream out;
    ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0)
        << "seed " << seed << ": " << schedule;
    EXPECT_EQ(expect_ordered_prefix(out.str(),
                                    "seed " + std::to_string(seed) + ": " +
                                        schedule),
              kChaosWorkloadLines)
        << out.str();
    fp::clear_all();
    // Whatever the schedule did to the save verb, the snapshot path
    // holds its invariant: the file either loads cleanly or is absent.
    if (std::filesystem::exists(config.cache_file)) {
      eng::CoverCache check(256);
      EXPECT_NO_THROW(eng::load_snapshot_file(config.cache_file, check))
          << "seed " << seed << ": " << schedule;
      std::filesystem::remove(config.cache_file);
    }
  }
}

namespace {

/// Minimal blocking TCP test client (mirrors net_test.cpp).
class ChaosTcpClient {
 public:
  explicit ChaosTcpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_) << std::strerror(errno);
  }
  ~ChaosTcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void send_text(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t w = ::send(fd_, text.data() + off, text.size() - off, 0);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return;  // server-side fault tore the connection: fine
      off += static_cast<std::size_t>(w);
    }
  }
  void finish_sending() { ::shutdown(fd_, SHUT_WR); }
  std::string read_to_eof() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return buffer;
      buffer.append(chunk, static_cast<std::size_t>(r));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

}  // namespace

TEST(Chaos, TcpSchedulesNeverKillTheServer) {
  if (!fp::compiled())
    GTEST_SKIP() << "binary built without CCOV_FAILPOINTS=ON";
  ClearAllGuard guard;
  const std::vector<std::string> points = {"net_read", "net_write",
                                           "cache_insert", "pipeline_submit"};
  eng::Engine engine;
  net::ServeServer server(engine, {});
  std::thread runner([&server] { server.run(); });
  for (int seed = 100; seed < 105; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    const std::string schedule = arm_random_schedule(&rng, points);
    {
      ChaosTcpClient client(server.port());
      ASSERT_TRUE(client.connected());
      client.send_text(kChaosWorkload);
      client.finish_sending();
      // A net fault may truncate the stream, but what arrives is an
      // in-order, gap-free prefix — no skipped, reordered or torn line.
      expect_ordered_prefix(client.read_to_eof(),
                            "seed " + std::to_string(seed) + ": " + schedule);
    }
    fp::clear_all();
    // The faulted session is gone; the server answers the next clean
    // client in full.
    ChaosTcpClient survivor(server.port());
    ASSERT_TRUE(survivor.connected());
    survivor.send_text("{\"algo\":\"construct\",\"n\":9}\n");
    survivor.finish_sending();
    const std::string got = survivor.read_to_eof();
    EXPECT_EQ(expect_ordered_prefix(got, "post-chaos survivor"), 1u) << got;
    EXPECT_NE(got.find("\"ok\":true"), std::string::npos) << got;
  }
  server.shutdown();
  runner.join();
}

TEST(Chaos, ShmSchedulesNeverKillTheServer) {
  if (!fp::compiled())
    GTEST_SKIP() << "binary built without CCOV_FAILPOINTS=ON";
  ClearAllGuard guard;
  const std::string name =
      "ccov-chaos-" + std::to_string(::getpid());
  eng::Engine engine;
  eng::ServeConfig config;
  config.shm_name = name;
  config.shm_ring_bytes = 1 << 16;
  shm::ShmServer server(engine, config);
  std::thread runner([&server] { server.run(); });
  const std::vector<std::string> points = {"shm_read", "shm_write",
                                           "futex_wait", "cache_insert"};
  for (int seed = 200; seed < 205; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    const std::string schedule = arm_random_schedule(&rng, points);
    {
      shm::ShmClient client;
      std::string error;
      bool connected = false;
      for (int i = 0; i < 600 && !connected; ++i) {
        connected = client.connect(name, &error);
        if (!connected) ::usleep(5 * 1000);
      }
      ASSERT_TRUE(connected) << "seed " << seed << ": " << error;
      std::istringstream lines(kChaosWorkload);
      std::string line;
      while (std::getline(lines, line)) {
        if (!client.send_line(line)) break;  // session died mid-fault: fine
      }
      client.finish();
      std::string rx, got;
      while (client.read_line(&rx)) got += rx + "\n";
      expect_ordered_prefix(got,
                            "seed " + std::to_string(seed) + ": " + schedule);
      client.close();
    }
    fp::clear_all();
    // Next clean session over the same segment round-trips in full.
    shm::ShmClient survivor;
    std::string error;
    bool connected = false;
    for (int i = 0; i < 600 && !connected; ++i) {
      connected = survivor.connect(name, &error);
      if (!connected) ::usleep(5 * 1000);
    }
    ASSERT_TRUE(connected) << "post-chaos reconnect, seed " << seed << ": "
                           << error;
    ASSERT_TRUE(survivor.send_line("{\"algo\":\"construct\",\"n\":9}"));
    survivor.finish();
    std::string line;
    ASSERT_TRUE(survivor.read_line(&line)) << "seed " << seed;
    EXPECT_EQ(line.rfind("{\"id\":0,", 0), 0u) << line;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    survivor.close();
  }
  server.shutdown();
  runner.join();
}

TEST(Chaos, SaveVerbReportsInjectedDiskFailuresInBand) {
  if (!fp::compiled())
    GTEST_SKIP() << "binary built without CCOV_FAILPOINTS=ON";
  ClearAllGuard guard;
  const std::string path = chaos_tmp_snapshot("save", 0);
  eng::Engine engine;
  eng::ServeConfig config;
  config.cache_file = path;
  for (const char* point : {"snapshot_write", "snapshot_fsync",
                            "snapshot_rename"}) {
    ASSERT_TRUE(fp::set(point, "error*1"));
    std::istringstream in(
        "{\"algo\":\"construct\",\"n\":9}\n"
        "{\"op\":\"save\"}\n"
        "{\"op\":\"save\"}\n");
    std::ostringstream out;
    ASSERT_EQ(eng::serve_loop(in, out, engine, config), 0);
    std::istringstream lines(out.str());
    std::string compute, failed_save, ok_save;
    ASSERT_TRUE(std::getline(lines, compute));
    ASSERT_TRUE(std::getline(lines, failed_save));
    ASSERT_TRUE(std::getline(lines, ok_save));
    // The injected failure is a structured in-band answer, not silence
    // and not a dead session...
    EXPECT_EQ(failed_save.rfind("{\"id\":1,", 0), 0u) << failed_save;
    EXPECT_NE(failed_save.find("\"ok\":false"), std::string::npos)
        << point << ": " << failed_save;
    EXPECT_NE(failed_save.find("\"error\":"), std::string::npos)
        << point << ": " << failed_save;
    // ...and the very next save (failpoint exhausted) succeeds.
    EXPECT_NE(ok_save.find("\"ok\":true"), std::string::npos)
        << point << ": " << ok_save;
    eng::CoverCache check(256);
    EXPECT_GE(eng::load_snapshot_file(path, check), 1u) << point;
  }
  std::filesystem::remove(path);
}
