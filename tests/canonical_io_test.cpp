#include <gtest/gtest.h>

#include <sstream>

#include "ccov/covering/canonical.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/io.hpp"

using namespace ccov::covering;

TEST(Canonical, RotationIsIsomorphism) {
  const auto cover = build_optimal_cover(9);
  for (std::uint32_t s : {1u, 3u, 8u}) {
    const auto rot = rotate_cover(cover, s);
    EXPECT_TRUE(validate_cover(rot).ok);
    EXPECT_TRUE(covers_isomorphic(cover, rot)) << "shift " << s;
  }
}

TEST(Canonical, ReflectionIsIsomorphism) {
  const auto cover = build_optimal_cover(8);
  const auto refl = reflect_cover(cover);
  EXPECT_TRUE(validate_cover(refl).ok);
  EXPECT_TRUE(covers_isomorphic(cover, refl));
}

TEST(Canonical, CanonicalFormIsInvariant) {
  const auto cover = build_optimal_cover(7);
  const auto c1 = canonical_cover(cover);
  const auto c2 = canonical_cover(rotate_cover(cover, 4));
  const auto c3 = canonical_cover(reflect_cover(cover));
  EXPECT_EQ(c1.cycles, c2.cycles);
  EXPECT_EQ(c1.cycles, c3.cycles);
}

TEST(Canonical, DifferentCoversNotIsomorphic) {
  // The paper K_4 covering vs a different (padded) one.
  RingCover a{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}};
  RingCover b{4, {{0, 1, 2, 3}, {0, 1, 2}, {0, 2, 3}}};
  // b's cycles: (0,1,2) covers 01,12,02 — different multiset of chords.
  EXPECT_FALSE(covers_isomorphic(a, b));
}

TEST(Canonical, OrbitDividesGroupOrder) {
  for (std::uint32_t n : {5u, 6u, 7u}) {
    const auto cover = build_optimal_cover(n);
    const auto orb = orbit_size(cover);
    EXPECT_GE(orb, 1u);
    EXPECT_LE(orb, 2u * n);
    EXPECT_EQ((2u * n) % orb, 0u) << "orbit size must divide |D_n|";
  }
}

TEST(CoverIo, RoundTripStream) {
  const auto cover = build_optimal_cover(11);
  std::stringstream ss;
  write_cover(ss, cover);
  const auto loaded = read_cover(ss);
  EXPECT_EQ(loaded.n, cover.n);
  EXPECT_EQ(loaded.cycles, cover.cycles);
}

TEST(CoverIo, RoundTripFile) {
  const auto cover = build_optimal_cover(10);
  const std::string path = testing::TempDir() + "ccov_cover_test.txt";
  save_cover(path, cover);
  const auto loaded = load_cover(path);
  EXPECT_EQ(loaded.cycles, cover.cycles);
  EXPECT_TRUE(validate_cover(loaded).ok);
}

TEST(CoverIo, RejectsBadHeader) {
  std::stringstream ss("nonsense v1\nn 5\ncycles 0\n");
  EXPECT_THROW(read_cover(ss), std::runtime_error);
}

TEST(CoverIo, RejectsTruncatedCycle) {
  std::stringstream ss("drc-cover v1\nn 5\ncycles 1\n4 0 1 2\n");
  EXPECT_THROW(read_cover(ss), std::runtime_error);
}

TEST(CoverIo, RejectsDegenerateCycleLength) {
  std::stringstream ss("drc-cover v1\nn 5\ncycles 1\n2 0 1\n");
  EXPECT_THROW(read_cover(ss), std::runtime_error);
}

TEST(CoverIo, MissingFileThrows) {
  EXPECT_THROW(load_cover("/nonexistent/path/cover.txt"), std::runtime_error);
}
