#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ccov/covering/chord_bitset.hpp"
#include "ccov/covering/cycle.hpp"
#include "ccov/covering/drc.hpp"
#include "ccov/ring/tiling.hpp"
#include "ccov/util/prng.hpp"

using namespace ccov::covering;
using ccov::ring::Ring;

TEST(SmallCycle, ConvertsToCycleAtBoundary) {
  const SmallCycle tri(4, 0, 2);
  EXPECT_EQ(tri.size(), 3u);
  EXPECT_EQ(tri.to_cycle(), (Cycle{4, 0, 2}));
  SmallCycle quad(1, 3, 5, 7);
  quad[0] = 0;
  EXPECT_EQ(quad.to_cycle(), (Cycle{0, 3, 5, 7}));
  EXPECT_EQ(SmallCycle(1, 2, 3), SmallCycle(1, 2, 3));
  EXPECT_FALSE(SmallCycle(1, 2, 3) == SmallCycle(1, 2, 3, 4));
}

TEST(ForEachChord, MatchesCycleChordsOnBothRepresentations) {
  const Cycle heap{3, 0, 4, 6};
  const SmallCycle inline_c(3, 0, 4, 6);
  std::vector<std::pair<Vertex, Vertex>> from_heap, from_small;
  for_each_chord(heap, [&](Vertex u, Vertex v) {
    from_heap.emplace_back(u, v);
  });
  for_each_chord(inline_c, [&](Vertex u, Vertex v) {
    from_small.emplace_back(u, v);
  });
  EXPECT_EQ(from_heap, cycle_chords(heap));
  EXPECT_EQ(from_small, cycle_chords(heap));
}

TEST(ChordBitsetTest, SetClearFirstCount) {
  ChordBitset bits(9);
  EXPECT_TRUE(bits.none());
  bits.set_all_chords();
  EXPECT_EQ(bits.count(), 9u * 8 / 2);
  Vertex a = 99, b = 99;
  ASSERT_TRUE(bits.first(a, b));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  bits.clear(0, 1);
  EXPECT_FALSE(bits.test(0, 1));
  ASSERT_TRUE(bits.first(a, b));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 2u);
  bits.set(0, 1);
  EXPECT_TRUE(bits.test(0, 1));
}

TEST(ChordBitsetTest, FirstScansAcrossWordBoundaries) {
  // n = 12 spans three 64-bit words; leave only a late chord set.
  ChordBitset bits(12);
  bits.set(10, 11);  // bit index 131, in the third word
  EXPECT_FALSE(bits.none());
  EXPECT_EQ(bits.count(), 1u);
  Vertex a = 0, b = 0;
  ASSERT_TRUE(bits.first(a, b));
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 11u);
  bits.clear(10, 11);
  EXPECT_FALSE(bits.first(a, b));
  EXPECT_TRUE(bits.none());
}

TEST(Cycle, ValidityChecks) {
  EXPECT_TRUE(is_valid_cycle({0, 1, 2}, 5));
  EXPECT_FALSE(is_valid_cycle({0, 1}, 5));          // too short
  EXPECT_FALSE(is_valid_cycle({0, 1, 1}, 5));       // repeat
  EXPECT_FALSE(is_valid_cycle({0, 1, 7}, 5));       // out of range
}

TEST(Cycle, ChordsNormalized) {
  auto ch = cycle_chords({3, 0, 4});
  ASSERT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch[0], std::make_pair(0u, 3u));
  EXPECT_EQ(ch[1], std::make_pair(0u, 4u));
  EXPECT_EQ(ch[2], std::make_pair(3u, 4u));
}

TEST(Cycle, CanonicalRotationInvariant) {
  EXPECT_EQ(canonical({2, 3, 0, 1}), canonical({0, 1, 2, 3}));
}

TEST(Cycle, CanonicalReflectionInvariant) {
  EXPECT_EQ(canonical({0, 3, 2, 1}), canonical({0, 1, 2, 3}));
}

TEST(Cycle, CanonicalDistinguishesDifferentCycles) {
  // (0,1,2,3) and (0,2,1,3) are different 4-cycles.
  EXPECT_NE(canonical({0, 1, 2, 3}), canonical({0, 2, 1, 3}));
}

TEST(Cycle, ToStringFormat) {
  EXPECT_EQ(to_string({1, 2, 3}), "(1 2 3)");
}

TEST(Drc, PaperExampleK4) {
  // The example from the paper: on C_4, the 4-cycle (1,3,4,2) [0-indexed
  // (0,2,3,1)] admits no edge-disjoint routing, while (1,2,3,4), (1,2,4)
  // and (1,3,4) do.
  Ring r(4);
  EXPECT_FALSE(satisfies_drc(r, {0, 2, 3, 1}));
  EXPECT_TRUE(satisfies_drc(r, {0, 1, 2, 3}));
  EXPECT_TRUE(satisfies_drc(r, {0, 1, 3}));
  EXPECT_TRUE(satisfies_drc(r, {0, 2, 3}));
}

TEST(Drc, TrianglesAlwaysRoutable) {
  // Any 3 distinct points on a circle appear in circular order.
  Ring r(9);
  ccov::util::Xoshiro256 g(123);
  for (int it = 0; it < 200; ++it) {
    Vertex a = static_cast<Vertex>(g.below(9));
    Vertex b = static_cast<Vertex>(g.below(9));
    Vertex c = static_cast<Vertex>(g.below(9));
    if (a == b || b == c || a == c) continue;
    EXPECT_TRUE(satisfies_drc(r, {a, b, c})) << a << b << c;
  }
}

TEST(Drc, ReversedOrderAccepted) {
  Ring r(8);
  EXPECT_TRUE(satisfies_drc(r, {5, 3, 1}));       // ccw order
  EXPECT_TRUE(satisfies_drc(r, {6, 4, 2, 0}));    // ccw quad
}

TEST(Drc, CrossingQuadRejected) {
  Ring r(8);
  EXPECT_FALSE(satisfies_drc(r, {0, 4, 1, 5}));
  EXPECT_FALSE(satisfies_drc(r, {0, 2, 1, 3}));
}

TEST(Drc, RouteTilesRingExactly) {
  Ring r(9);
  auto arcs = drc_route(r, {1, 4, 7});
  ASSERT_TRUE(arcs.has_value());
  EXPECT_TRUE(ccov::ring::is_exact_tiling(r, *arcs));
}

TEST(Drc, RouteOfReversedCycle) {
  Ring r(7);
  auto arcs = drc_route(r, {5, 3, 0});
  ASSERT_TRUE(arcs.has_value());
  EXPECT_TRUE(ccov::ring::is_exact_tiling(r, *arcs));
}

TEST(Drc, RouteRejectsNonCircular) {
  Ring r(6);
  EXPECT_FALSE(drc_route(r, {0, 2, 1, 4}).has_value());
}

TEST(Drc, WholeRingCycle) {
  Ring r(5);
  EXPECT_TRUE(satisfies_drc(r, {0, 1, 2, 3, 4}));
  auto arcs = drc_route(r, {0, 1, 2, 3, 4});
  ASSERT_TRUE(arcs.has_value());
  for (const auto& a : *arcs) EXPECT_EQ(a.len, 1u);
}

// Property: the O(k) circular-order characterisation agrees with the
// exponential brute-force oracle on every small cycle.
class DrcOracleParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DrcOracleParam, MatchesBruteForceOnAllTriangles) {
  const std::uint32_t n = GetParam();
  Ring r(n);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      for (Vertex c = b + 1; c < n; ++c)
        for (const Cycle& cyc : {Cycle{a, b, c}, Cycle{a, c, b}})
          EXPECT_EQ(satisfies_drc(r, cyc), satisfies_drc_bruteforce(r, cyc))
              << to_string(cyc) << " n=" << n;
}

TEST_P(DrcOracleParam, MatchesBruteForceOnRandomQuads) {
  const std::uint32_t n = GetParam();
  Ring r(n);
  ccov::util::Xoshiro256 g(n * 7919);
  int checked = 0;
  while (checked < 60) {
    Cycle c;
    for (int i = 0; i < 4; ++i) c.push_back(static_cast<Vertex>(g.below(n)));
    if (!is_valid_cycle(c, n)) continue;
    ++checked;
    EXPECT_EQ(satisfies_drc(r, c), satisfies_drc_bruteforce(r, c))
        << to_string(c) << " n=" << n;
  }
}

TEST_P(DrcOracleParam, MatchesBruteForceOnRandomPentagons) {
  const std::uint32_t n = GetParam();
  if (n < 5) return;
  Ring r(n);
  ccov::util::Xoshiro256 g(n * 104729);
  int checked = 0;
  while (checked < 40) {
    Cycle c;
    for (int i = 0; i < 5; ++i) c.push_back(static_cast<Vertex>(g.below(n)));
    if (!is_valid_cycle(c, n)) continue;
    ++checked;
    EXPECT_EQ(satisfies_drc(r, c), satisfies_drc_bruteforce(r, c))
        << to_string(c) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DrcOracleParam,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11));
