#!/usr/bin/env bash
# Smoke test for the ccov CLI: exercises every subcommand and the
# --out/--in cover-file round trip. Usage: cli_smoke.sh <path-to-ccov>
set -euo pipefail

CCOV=${1:?usage: cli_smoke.sh <path-to-ccov>}
TMPDIR_SMOKE=$(mktemp -d)
trap 'rm -rf "${TMPDIR_SMOKE}"' EXIT
COVER_FILE="${TMPDIR_SMOKE}/cover.txt"

fail() { echo "cli_smoke: FAIL: $*" >&2; exit 1; }

echo "== ccov usage/help behaviour"
"${CCOV}" | grep -q "usage:" || fail "no-arg invocation should print usage and exit 0"
"${CCOV}" help >/dev/null || fail "'ccov help' should exit 0"
if "${CCOV}" frobnicate >/dev/null 2>&1; then fail "unknown command should exit nonzero"; fi

echo "== ccov bounds --n 13"
OUT=$("${CCOV}" bounds --n 13)
echo "${OUT}" | grep -q "rho(n)" || fail "bounds output missing rho(n)"
echo "${OUT}" | grep -q "capacity bound" || fail "bounds output missing capacity bound"

echo "== ccov cover --n 13 --out"
"${CCOV}" cover --n 13 --out "${COVER_FILE}" >/dev/null
[ -s "${COVER_FILE}" ] || fail "cover --out did not write ${COVER_FILE}"

echo "== ccov validate --in (round trip)"
"${CCOV}" validate --in "${COVER_FILE}" >/dev/null || fail "saved cover failed validation"

echo "== ccov validate rejects a corrupt cover"
CORRUPT="${TMPDIR_SMOKE}/corrupt.txt"
head -n 2 "${COVER_FILE}" > "${CORRUPT}"
if "${CCOV}" validate --in "${CORRUPT}" >/dev/null 2>&1; then
  fail "truncated cover should fail validation"
fi

echo "== ccov validate --in missing file exits nonzero"
if "${CCOV}" validate --in "${TMPDIR_SMOKE}/nope.txt" >/dev/null 2>&1; then
  fail "missing --in file should exit nonzero"
fi

echo "== ccov cover (stdout path, no --out)"
"${CCOV}" cover --n 9 | grep -q "cycle" || fail "cover without --out should print cycles"

echo "== ccov solve --n 7 (serial + parallel agree on found)"
S=$("${CCOV}" solve --n 7)
P=$("${CCOV}" solve --n 7 --parallel)
echo "${S}" | grep -q "found=1" || fail "serial solve n=7 should find a cover"
echo "${P}" | grep -q "found=1" || fail "parallel solve n=7 should find a cover"

echo "== ccov protect --n 12 --edge 3"
"${CCOV}" protect --n 12 --edge 3 | grep -q "affected=" || fail "protect output missing report"

echo "cli_smoke: PASS"
