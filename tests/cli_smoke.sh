#!/usr/bin/env bash
# Smoke test for the ccov CLI: exercises every subcommand and the
# --out/--in cover-file round trip. Usage: cli_smoke.sh <path-to-ccov>
set -euo pipefail

CCOV=${1:?usage: cli_smoke.sh <path-to-ccov>}
TMPDIR_SMOKE=$(mktemp -d)
# Unique per run so parallel ctest invocations don't share a segment. The
# server shm_unlink's it on a clean exit; the trap covers failure paths,
# where an orphaned /dev/shm file would otherwise outlive the test.
SHM_NAME="ccov-smoke-$$"
SHM_RETRY_NAME="ccov-smoke-retry-$$"
cleanup() {
  rm -rf "${TMPDIR_SMOKE}"
  rm -f "/dev/shm/${SHM_NAME}" "/dev/shm/${SHM_RETRY_NAME}"
}
trap cleanup EXIT
COVER_FILE="${TMPDIR_SMOKE}/cover.txt"

fail() { echo "cli_smoke: FAIL: $*" >&2; exit 1; }

echo "== ccov usage/help behaviour"
"${CCOV}" | grep -q "usage:" || fail "no-arg invocation should print usage and exit 0"
"${CCOV}" help >/dev/null || fail "'ccov help' should exit 0"
for sub in cover validate bounds solve protect run sweep serve cache algos; do
  "${CCOV}" help | grep -q "${sub}" || fail "usage should list '${sub}'"
done
if "${CCOV}" frobnicate >/dev/null 2>&1; then fail "unknown command should exit nonzero"; fi
UNKNOWN_OUT="${TMPDIR_SMOKE}/unknown.out"
UNKNOWN_ERR="${TMPDIR_SMOKE}/unknown.err"
if "${CCOV}" frobnicate >"${UNKNOWN_OUT}" 2>"${UNKNOWN_ERR}"; then
  fail "unknown command should exit nonzero"
fi
[ ! -s "${UNKNOWN_OUT}" ] || fail "unknown command should not write to stdout"
grep -q "usage:" "${UNKNOWN_ERR}" || fail "unknown command should print usage on stderr"

echo "== ccov --version"
"${CCOV}" --version | grep -Eq "^ccov [0-9]+\.[0-9]+\.[0-9]+" \
  || fail "--version should print 'ccov <semver>'"

echo "== ccov bounds --n 13"
OUT=$("${CCOV}" bounds --n 13)
echo "${OUT}" | grep -q "rho(n)" || fail "bounds output missing rho(n)"
echo "${OUT}" | grep -q "capacity bound" || fail "bounds output missing capacity bound"

echo "== ccov cover --n 13 --out"
"${CCOV}" cover --n 13 --out "${COVER_FILE}" >/dev/null
[ -s "${COVER_FILE}" ] || fail "cover --out did not write ${COVER_FILE}"

echo "== ccov validate --in (round trip)"
"${CCOV}" validate --in "${COVER_FILE}" >/dev/null || fail "saved cover failed validation"

echo "== ccov validate rejects a corrupt cover"
CORRUPT="${TMPDIR_SMOKE}/corrupt.txt"
head -n 2 "${COVER_FILE}" > "${CORRUPT}"
if "${CCOV}" validate --in "${CORRUPT}" >/dev/null 2>&1; then
  fail "truncated cover should fail validation"
fi

echo "== ccov validate --in missing file exits nonzero"
if "${CCOV}" validate --in "${TMPDIR_SMOKE}/nope.txt" >/dev/null 2>&1; then
  fail "missing --in file should exit nonzero"
fi

echo "== ccov cover (stdout path, no --out)"
"${CCOV}" cover --n 9 | grep -q "cycle" || fail "cover without --out should print cycles"

echo "== ccov solve --n 7 (serial + parallel agree on found)"
S=$("${CCOV}" solve --n 7)
P=$("${CCOV}" solve --n 7 --parallel)
echo "${S}" | grep -q "found=1" || fail "serial solve n=7 should find a cover"
echo "${P}" | grep -q "found=1" || fail "parallel solve n=7 should find a cover"

echo "== ccov protect --n 12 --edge 3"
"${CCOV}" protect --n 12 --edge 3 | grep -q "affected=" || fail "protect output missing report"

echo "== ccov algos lists the registered strategies"
ALGOS=$("${CCOV}" algos)
for name in construct solve greedy lambda; do
  echo "${ALGOS}" | grep -q "${name}" || fail "algos output missing '${name}'"
done

echo "== ccov run --algo construct --n 9"
"${CCOV}" run --algo construct --n 9 | grep -q "valid=yes" \
  || fail "run construct n=9 should produce a valid cover"

echo "== ccov run --algo solve caches the second invocation's shape"
"${CCOV}" run --algo solve --n 7 | grep -q "found=1" \
  || fail "run solve n=7 should find a cover"

echo "== ccov run with an unknown algorithm exits nonzero"
if "${CCOV}" run --algo frobnicate --n 9 >/dev/null 2>&1; then
  fail "run with unknown --algo should exit nonzero"
fi

echo "== ccov run exits nonzero when the cover fails validation"
# The classical C4 covering ignores the DRC, so validation fails.
if "${CCOV}" run --algo c4 --n 9 >/dev/null 2>&1; then
  fail "run producing an invalid cover should exit nonzero"
fi
"${CCOV}" run --algo c4 --n 9 --no-validate >/dev/null \
  || fail "run --no-validate should not fail on an unvalidated cover"

echo "== ccov sweep (CSV to file, deterministic across --jobs)"
SWEEP1="${TMPDIR_SMOKE}/sweep1.csv"
SWEEP4="${TMPDIR_SMOKE}/sweep4.csv"
"${CCOV}" sweep --n-from 3 --n-to 12 --algo construct --jobs 1 --out "${SWEEP1}" \
  || fail "sweep --jobs 1 failed"
"${CCOV}" sweep --n-from 3 --n-to 12 --algo construct --jobs 4 --out "${SWEEP4}" \
  || fail "sweep --jobs 4 failed"
head -n 1 "${SWEEP1}" | grep -q "algo,n,rho,cycles" || fail "sweep CSV header missing"
[ "$(wc -l < "${SWEEP1}")" -eq 11 ] || fail "sweep CSV should have header + 10 rows"
cmp -s "${SWEEP1}" "${SWEEP4}" || fail "sweep output should be identical across --jobs"

echo "== ccov sweep --format json"
"${CCOV}" sweep --n-from 5 --n-to 7 --algo greedy --format json \
  | grep -q '"algo": "greedy"' || fail "sweep JSON output malformed"

echo "== bad numeric flags fail with a one-line stderr error"
for args in "sweep --n-from abc" "sweep --n-from 3 --n-to 9 --jobs 1.5" \
            "run --algo solve --n 7 --budget 99999999999999999999999" \
            "serve --batch nope"; do
  ERR="${TMPDIR_SMOKE}/badnum.err"
  # shellcheck disable=SC2086
  if "${CCOV}" ${args} >/dev/null 2>"${ERR}"; then
    fail "'ccov ${args}' should exit nonzero"
  fi
  [ "$(wc -l < "${ERR}")" -eq 1 ] || fail "'ccov ${args}' should print exactly one stderr line"
  grep -Eq "invalid (integer|number)|out of range" "${ERR}" \
    || fail "'ccov ${args}' error should name the bad value: $(cat "${ERR}")"
done

echo "== ccov serve (JSONL round trip, byte-identical across --jobs)"
REQS="${TMPDIR_SMOKE}/requests.jsonl"
cat > "${REQS}" <<'EOF'
{"algo":"construct","n":9}
{"algo":"solve","n":7}
{"algo":"greedy","n":9,"demand":[[0,3],[1,4],[2,7]]}
{"algo":"greedy","n":9,"demand":[[2,5],[3,6],[0,4]]}
{"algo":"construct","n":9}
{"op":"stats"}
EOF
SERVE1="${TMPDIR_SMOKE}/serve1.jsonl"
SERVE4="${TMPDIR_SMOKE}/serve4.jsonl"
"${CCOV}" serve --jobs 1 < "${REQS}" > "${SERVE1}" 2>/dev/null \
  || fail "serve --jobs 1 failed"
"${CCOV}" serve --jobs 4 --batch 8 < "${REQS}" > "${SERVE4}" 2>/dev/null \
  || fail "serve --jobs 4 failed"
[ "$(wc -l < "${SERVE1}")" -eq 6 ] || fail "serve should answer every input line"
cmp -s "${SERVE1}" "${SERVE4}" || fail "serve output should be identical across --jobs"
head -n 1 "${SERVE1}" | grep -q '"id":0,"ok":true' || fail "serve responses should be index-aligned"
grep -q '"op":"stats","ok":true' "${SERVE1}" || fail "stats verb should answer in-band"
grep -q '"nodes":0,"cache_hit":true' "${SERVE1}" \
  || fail "duplicate requests inside one serve run should hit the cache"

echo "== ccov serve rejects garbage lines in-band"
echo 'this is not json' | "${CCOV}" serve 2>/dev/null \
  | grep -q '"ok":false,"error":"parse:' || fail "parse errors should answer in-band"

echo "== ccov serve --cache-file warm start (cache_hit=true, nodes=0)"
SNAP="${TMPDIR_SMOKE}/store.bin"
echo '{"algo":"solve","n":8}' | "${CCOV}" serve --cache-file "${SNAP}" >/dev/null 2>&1 \
  || fail "serve --cache-file (cold) failed"
[ -s "${SNAP}" ] || fail "serve should save the store on exit"
WARM=$(echo '{"algo":"solve","n":8}' | "${CCOV}" serve --cache-file "${SNAP}" 2>/dev/null)
echo "${WARM}" | grep -q '"nodes":0,"cache_hit":true' \
  || fail "warm-started serve should answer from the snapshot: ${WARM}"

echo "== ccov serve answers interactively (stdin stays open)"
coproc SERVE_PROC { "${CCOV}" serve 2>/dev/null; }
SERVE_COPROC_PID=${SERVE_PROC_PID}
printf '%s\n' '{"algo":"construct","n":9}' >&"${SERVE_PROC[1]}"
IFS= read -r -t 30 line <&"${SERVE_PROC[0]}" \
  || fail "serve did not answer while stdin was still open"
echo "${line}" | grep -q '"id":0,"ok":true' \
  || fail "interactive response malformed: ${line}"
eval "exec ${SERVE_PROC[1]}>&-"
wait "${SERVE_COPROC_PID}" || fail "interactive serve should exit 0"

echo "== ccov serve handles CRLF and oversized lines in-band"
printf '{"algo":"construct","n":9}\r\n' | "${CCOV}" serve 2>/dev/null \
  | grep -q '"id":0,"ok":true' || fail "CRLF-terminated requests should parse"
LONG_LINE=$(head -c 2000 /dev/zero | tr '\0' 'x')
printf '%s\n{"algo":"construct","n":9}\n' "${LONG_LINE}" \
  | "${CCOV}" serve --max-line 256 2>/dev/null > "${TMPDIR_SMOKE}/long.jsonl" \
  || fail "serve with an oversized line should keep running"
grep -q '"id":0,"ok":false,"error":"parse: line exceeds' "${TMPDIR_SMOKE}/long.jsonl" \
  || fail "oversized line should be rejected in-band"
grep -q '"id":1,"ok":true' "${TMPDIR_SMOKE}/long.jsonl" \
  || fail "the line after an oversized one should still be answered"

echo "== ccov serve --listen (TCP loopback, byte-identical to stdio)"
LISTEN_ERR="${TMPDIR_SMOKE}/listen.err"
LISTEN_SNAP="${TMPDIR_SMOKE}/listen_store.bin"
"${CCOV}" serve --listen 127.0.0.1:0 --cache-file "${LISTEN_SNAP}" \
  2>"${LISTEN_ERR}" &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "${LISTEN_ERR}" 2>/dev/null || true)
  [ -n "${PORT}" ] && break
  sleep 0.1
done
[ -n "${PORT}" ] || fail "server did not report its listening port"

# Scripted client 1: the same request file as the stdio runs above.
TCP_OUT="${TMPDIR_SMOKE}/tcp.jsonl"
: > "${TCP_OUT}"
exec 3<>"/dev/tcp/127.0.0.1/${PORT}" || fail "cannot connect to port ${PORT}"
cat "${REQS}" >&3
for _ in $(seq "$(wc -l < "${REQS}")"); do
  IFS= read -r line <&3 || fail "server closed the connection early"
  printf '%s\n' "${line}" >> "${TCP_OUT}"
done
exec 3<&- 3>&-
cmp -s "${SERVE1}" "${TCP_OUT}" \
  || fail "TCP responses should be byte-identical to stdio serve"

# Scripted client 2: repeats are served from the shared warm cache.
exec 3<>"/dev/tcp/127.0.0.1/${PORT}" || fail "cannot reconnect to ${PORT}"
printf '%s\n' '{"algo":"solve","n":7}' >&3
IFS= read -r line <&3 || fail "second client got no response"
echo "${line}" | grep -q '"nodes":0,"cache_hit":true' \
  || fail "second TCP client should hit the warm shared cache: ${line}"
exec 3<&- 3>&-

kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}" || fail "server should exit 0 on SIGTERM"
[ -s "${LISTEN_SNAP}" ] || fail "server should save the store on SIGTERM"
"${CCOV}" cache load --cache-file "${LISTEN_SNAP}" | grep -q "snapshot ok" \
  || fail "snapshot saved on shutdown should load cleanly"
if ls "${TMPDIR_SMOKE}" | grep -q "\.tmp\."; then
  fail "atomic save left a temp file behind"
fi

echo "== ccov serve --http (HTTP loopback, byte-identical to stdio)"
HTTP_ERR="${TMPDIR_SMOKE}/http.err"
"${CCOV}" serve --http 127.0.0.1:0 2>"${HTTP_ERR}" &
HTTP_PID=$!
HTTP_PORT=""
for _ in $(seq 100); do
  HTTP_PORT=$(sed -n 's/.*http listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "${HTTP_ERR}" 2>/dev/null || true)
  [ -n "${HTTP_PORT}" ] && break
  sleep 0.1
done
[ -n "${HTTP_PORT}" ] || fail "http server did not report its listening port"

# POST the same request file; the chunked payload bytes are whole JSONL
# lines, so stripping CRs and keeping '^{' lines de-chunks the body.
HTTP_OUT="${TMPDIR_SMOKE}/http.jsonl"
HTTP_RAW="${TMPDIR_SMOKE}/http.raw"
exec 3<>"/dev/tcp/127.0.0.1/${HTTP_PORT}" || fail "cannot connect to ${HTTP_PORT}"
{
  printf 'POST /v1/batch HTTP/1.1\r\n'
  printf 'Host: 127.0.0.1\r\n'
  printf 'Content-Length: %s\r\n' "$(wc -c < "${REQS}")"
  printf 'Connection: close\r\n\r\n'
  cat "${REQS}"
} >&3
cat <&3 > "${HTTP_RAW}"
exec 3<&- 3>&-
head -n 1 "${HTTP_RAW}" | grep -q "200 OK" || fail "batch POST should answer 200"
tr -d '\r' < "${HTTP_RAW}" | grep '^{' > "${HTTP_OUT}"
cmp -s "${SERVE1}" "${HTTP_OUT}" \
  || fail "HTTP responses should be byte-identical to stdio serve"

# Scrape /metrics and check the session above left its marks.
METRICS_RAW="${TMPDIR_SMOKE}/metrics.raw"
exec 3<>"/dev/tcp/127.0.0.1/${HTTP_PORT}" || fail "cannot reconnect to ${HTTP_PORT}"
printf 'GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
cat <&3 > "${METRICS_RAW}"
exec 3<&- 3>&-
grep -q "ccov_serve_sessions_total 1" "${METRICS_RAW}" \
  || fail "/metrics should count the batch session"
grep -q "ccov_http_requests_total" "${METRICS_RAW}" \
  || fail "/metrics should expose the HTTP request counter"
grep -q "ccov_cache_entries" "${METRICS_RAW}" \
  || fail "/metrics should expose the cache gauges"

kill -TERM "${HTTP_PID}"
wait "${HTTP_PID}" || fail "http server should exit 0 on SIGTERM"

echo "== ccov serve --shm (shared memory, byte-identical to stdio)"
SHM_ERR="${TMPDIR_SMOKE}/shm.err"
"${CCOV}" serve --shm "${SHM_NAME}" 2>"${SHM_ERR}" &
SHM_PID=$!
for _ in $(seq 100); do
  grep -q "shm serving on" "${SHM_ERR}" 2>/dev/null && break
  sleep 0.1
done
grep -q "shm serving on" "${SHM_ERR}" || fail "shm server did not come up"
[ -e "/dev/shm/${SHM_NAME}" ] || fail "shm segment missing while serving"

SHM_OUT="${TMPDIR_SMOKE}/shm.jsonl"
"${CCOV}" client --shm "${SHM_NAME}" < "${REQS}" > "${SHM_OUT}" \
  || fail "shm client round trip failed"
cmp -s "${SERVE1}" "${SHM_OUT}" \
  || fail "shm responses should be byte-identical to stdio serve"

kill -TERM "${SHM_PID}"
wait "${SHM_PID}" || fail "shm server should exit 0 on SIGTERM"
[ ! -e "/dev/shm/${SHM_NAME}" ] || fail "shm segment should be unlinked on exit"

echo "== ccov cache stats / load / save / clear"
"${CCOV}" cache stats --cache-file "${SNAP}" | grep -q "entries: 1" \
  || fail "cache stats should count the stored entry"
"${CCOV}" cache load --cache-file "${SNAP}" | grep -q "snapshot ok" \
  || fail "cache load should verify the snapshot"
"${CCOV}" cache save --cache-file "${SNAP}" --algo construct --n-from 3 --n-to 12 >/dev/null \
  || fail "cache save (offline warming) failed"
"${CCOV}" cache stats --cache-file "${SNAP}" | grep -q "entries: 11" \
  || fail "cache save should merge the sweep into the snapshot"
"${CCOV}" cache clear --cache-file "${SNAP}" >/dev/null || fail "cache clear failed"
"${CCOV}" cache stats --cache-file "${SNAP}" | grep -q "entries: 0" \
  || fail "cleared snapshot should be empty"
echo "garbage" > "${SNAP}"
if "${CCOV}" cache load --cache-file "${SNAP}" >/dev/null 2>&1; then
  fail "cache load should reject a corrupt snapshot"
fi

echo "== ccov sweep --cache-file warm start"
SWEEPSNAP="${TMPDIR_SMOKE}/sweep_store.bin"
WARM1="${TMPDIR_SMOKE}/sweep_warm1.csv"
WARM2="${TMPDIR_SMOKE}/sweep_warm2.csv"
"${CCOV}" sweep --n-from 3 --n-to 9 --algo solve --cache-file "${SWEEPSNAP}" --out "${WARM1}" \
  || fail "sweep --cache-file (cold) failed"
"${CCOV}" sweep --n-from 3 --n-to 9 --algo solve --cache-file "${SWEEPSNAP}" --out "${WARM2}" \
  || fail "sweep --cache-file (warm) failed"
# The warm sweep answers every n from the snapshot: zero nodes searched.
tail -n +2 "${WARM2}" | awk -F, '{ if ($9 != 0) exit 1 }' \
  || fail "warm sweep should report nodes=0 for every row"

echo "== ccov serve request deadlines (timed_out, degraded, never cached)"
# n=10 at its default budget exhausts the 200M-node budget (~seconds of
# search), so a 60ms deadline reliably expires mid-search.
DL_REQ='{"algo":"solve","n":10,"deadline_ms":60}'
DL_OUT=$(echo "${DL_REQ}" | "${CCOV}" serve 2>/dev/null)
echo "${DL_OUT}" | grep -q '"timed_out":true' \
  || fail "expired deadline should answer timed_out:true: ${DL_OUT}"
echo "${DL_OUT}" | grep -q '"found":false' \
  || fail "a bare timeout should not claim a cover: ${DL_OUT}"
DEG_OUT=$(echo "${DL_REQ}" | "${CCOV}" serve --fallback greedy 2>/dev/null)
echo "${DEG_OUT}" | grep -q '"degraded":true' \
  || fail "--fallback greedy should flag the answer degraded: ${DEG_OUT}"
echo "${DEG_OUT}" | grep -q '"found":true' \
  || fail "--fallback greedy should still produce a cover: ${DEG_OUT}"
DD_OUT=$(echo '{"algo":"solve","n":10}' \
  | "${CCOV}" serve --default-deadline-ms 60 2>/dev/null)
echo "${DD_OUT}" | grep -q '"timed_out":true' \
  || fail "--default-deadline-ms should bound requests without one: ${DD_OUT}"
DL_SNAP="${TMPDIR_SMOKE}/deadline_store.bin"
echo "${DL_REQ}" | "${CCOV}" serve --cache-file "${DL_SNAP}" >/dev/null 2>&1 \
  || fail "serve with an expired deadline should still exit 0"
"${CCOV}" cache stats --cache-file "${DL_SNAP}" | grep -q "entries: 0" \
  || fail "a timed-out answer must never be cached"

echo "== SIGTERM mid-solve: bounded shutdown, loadable snapshot (stdio)"
TERM_SNAP="${TMPDIR_SMOKE}/term_store.bin"
TERM_IN="${TMPDIR_SMOKE}/term_in"
TERM_OUT="${TMPDIR_SMOKE}/term_out.jsonl"
mkfifo "${TERM_IN}"
# A plain background command (not a coproc) so ${TERM_PID} is the ccov
# process itself — the SIGTERM must land on the server, not a wrapper.
"${CCOV}" serve --cache-file "${TERM_SNAP}" \
  < "${TERM_IN}" > "${TERM_OUT}" 2>/dev/null &
TERM_PID=$!
exec 9> "${TERM_IN}"
printf '%s\n' '{"algo":"construct","n":9}' >&9
for _ in $(seq 100); do
  [ -s "${TERM_OUT}" ] && break
  sleep 0.1
done
[ -s "${TERM_OUT}" ] || fail "serve did not answer the warmup request"
printf '%s\n' '{"algo":"solve","n":10}' >&9
sleep 0.3  # the solve is now seconds deep into its 200M-node budget
T0=$(date +%s%N)
kill -TERM "${TERM_PID}"
wait "${TERM_PID}" || fail "stdio serve should exit 0 on SIGTERM"
exec 9>&-
ELAPSED_MS=$(( ( $(date +%s%N) - T0 ) / 1000000 ))
[ "${ELAPSED_MS}" -lt 2000 ] \
  || fail "stdio SIGTERM shutdown took ${ELAPSED_MS}ms (in-flight solve not cancelled?)"
"${CCOV}" cache load --cache-file "${TERM_SNAP}" | grep -q "snapshot ok" \
  || fail "snapshot saved during stdio SIGTERM shutdown should load cleanly"

echo "== SIGTERM mid-solve: bounded shutdown, loadable snapshot (TCP)"
TERM_TCP_SNAP="${TMPDIR_SMOKE}/term_tcp_store.bin"
TERM_TCP_ERR="${TMPDIR_SMOKE}/term_tcp.err"
"${CCOV}" serve --listen 127.0.0.1:0 --cache-file "${TERM_TCP_SNAP}" \
  2>"${TERM_TCP_ERR}" &
TERM_TCP_PID=$!
TERM_PORT=""
for _ in $(seq 100); do
  TERM_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "${TERM_TCP_ERR}" 2>/dev/null || true)
  [ -n "${TERM_PORT}" ] && break
  sleep 0.1
done
[ -n "${TERM_PORT}" ] || fail "TCP server did not report its listening port"
exec 3<>"/dev/tcp/127.0.0.1/${TERM_PORT}" || fail "cannot connect to ${TERM_PORT}"
printf '%s\n' '{"algo":"construct","n":9}' >&3
IFS= read -r line <&3 || fail "warmup over TCP got no response"
printf '%s\n' '{"algo":"solve","n":10}' >&3
sleep 0.3
T0=$(date +%s%N)
kill -TERM "${TERM_TCP_PID}"
wait "${TERM_TCP_PID}" || fail "TCP serve should exit 0 on SIGTERM"
ELAPSED_MS=$(( ( $(date +%s%N) - T0 ) / 1000000 ))
exec 3<&- 3>&-
[ "${ELAPSED_MS}" -lt 2000 ] \
  || fail "TCP SIGTERM shutdown took ${ELAPSED_MS}ms (in-flight solve not cancelled?)"
"${CCOV}" cache load --cache-file "${TERM_TCP_SNAP}" | grep -q "snapshot ok" \
  || fail "snapshot saved during TCP SIGTERM shutdown should load cleanly"

echo "== ccov client --shm retries until the server appears"
RETRY_OUT="${TMPDIR_SMOKE}/retry.jsonl"
( echo '{"algo":"construct","n":9}' \
    | "${CCOV}" client --shm "${SHM_RETRY_NAME}" --connect-retry-ms 5000 \
    > "${RETRY_OUT}" ) &
RETRY_CLIENT_PID=$!
sleep 0.3  # the client is now inside its backoff loop, server not yet up
"${CCOV}" serve --shm "${SHM_RETRY_NAME}" 2>/dev/null &
RETRY_SHM_PID=$!
wait "${RETRY_CLIENT_PID}" \
  || fail "client --shm should keep retrying until the server appears"
grep -q '"id":0,"ok":true' "${RETRY_OUT}" \
  || fail "retried shm client should complete its round trip"
kill -TERM "${RETRY_SHM_PID}"
wait "${RETRY_SHM_PID}" || fail "retry-test shm server should exit 0 on SIGTERM"

echo "cli_smoke: PASS"
