#include <gtest/gtest.h>

#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/wdm/cost.hpp"
#include "ccov/wdm/network.hpp"

using namespace ccov;

// End-to-end: design a survivable WDM ring exactly as the paper describes
// and check every cross-module invariant on the way.
class EndToEnd : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EndToEnd, DesignFlow) {
  const std::uint32_t n = GetParam();

  // 1. Optimal DRC covering.
  const auto cover = covering::build_optimal_cover(n);
  const auto rep = covering::validate_cover(cover);
  ASSERT_TRUE(rep.ok) << rep.error;

  // 2. Bounds bracket the construction.
  EXPECT_GE(cover.size(), covering::parity_lower_bound(n));
  if (n % 2 == 1 || n <= 12) {
    EXPECT_EQ(cover.size(), covering::rho(n));
  }

  // 3. Deploy as a WDM network.
  const auto inst = wdm::Instance::all_to_all(n);
  wdm::WdmRingNetwork net(n, cover, inst);
  EXPECT_EQ(net.subnetworks().size(), cover.size());

  // 4. Cost model is consistent.
  const auto cost = wdm::evaluate_cost(net, wdm::CostModel{});
  EXPECT_EQ(cost.adms + cost.transit,
            static_cast<std::uint64_t>(n) * cover.size());

  // 5. Survive every single-link failure by loop-back.
  for (std::uint32_t e = 0; e < n; ++e) {
    const auto r = protection::simulate_loopback(net, {e});
    EXPECT_EQ(r.affected_requests, cover.size());
    EXPECT_GT(r.recovery_time_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, EndToEnd,
                         ::testing::Values(5, 6, 7, 8, 9, 10, 11, 12, 13, 15,
                                           16, 21));

TEST(CrossCheck, GreedyNeverBeatsOptimalOnCertifiedSizes) {
  for (std::uint32_t n = 4; n <= 13; ++n) {
    const auto greedy = covering::greedy_cover(n);
    EXPECT_GE(greedy.size(), covering::rho(n)) << n;
  }
}

TEST(CrossCheck, OptimalBeatsClassicalTripleCovering) {
  // The DRC covering uses mixed C3/C4 and needs fewer cycles than the
  // classical triangle covering for every n >= 8 (count comparison).
  for (std::uint32_t n = 8; n <= 24; ++n) {
    const auto cover = covering::build_optimal_cover(n);
    EXPECT_LE(cover.size(), baselines::triple_covering_number(n)) << n;
  }
}

TEST(CrossCheck, ProtectionCheaperThanRestorationInSwitches) {
  // Loop-back switches 2 per sub-network ~ n^2/4; restoration switches 2
  // per affected request ~ n^2/8 per failure... the relevant claim is
  // TIME: pre-planned protection recovers faster. Check on a mid-size ring.
  const std::uint32_t n = 14;
  const auto cover = covering::build_optimal_cover(n);
  const auto inst = wdm::Instance::all_to_all(n);
  wdm::WdmRingNetwork net(n, cover, inst);
  const auto lb = protection::simulate_loopback(net, {0});
  const auto rs = protection::simulate_restoration(n, inst, {0});
  EXPECT_LT(lb.recovery_time_ms, rs.recovery_time_ms);
}
