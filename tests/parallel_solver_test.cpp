#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/solver.hpp"

using namespace ccov::covering;

class ParallelSolverParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParallelSolverParam, AgreesWithSerialOnFeasibility) {
  const std::uint32_t n = GetParam();
  const auto par = solve_with_budget_parallel(n, rho(n));
  ASSERT_TRUE(par.found) << "n=" << n;
  const auto rep = validate_cover(par.cover);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(par.cover.size(), rho(n));
}

TEST_P(ParallelSolverParam, AgreesWithSerialOnInfeasibility) {
  const std::uint32_t n = GetParam();
  if (n < 4) return;
  const auto par = solve_with_budget_parallel(n, rho(n) - 1);
  EXPECT_FALSE(par.found) << "n=" << n;
  EXPECT_TRUE(par.exhausted);
}

INSTANTIATE_TEST_SUITE_P(Small, ParallelSolverParam,
                         ::testing::Values(4, 5, 6, 7, 8));

TEST(ParallelSolver, SingleThreadStillWorks) {
  const auto res = solve_with_budget_parallel(6, rho(6), {}, 1);
  EXPECT_TRUE(res.found);
}

TEST(ParallelSolver, ZeroBudgetInfeasible) {
  const auto res = solve_with_budget_parallel(5, 0);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.exhausted);
}

// ---------------------------------------------------------------------------
// Determinism: the parallel search returns the witness of the *lowest*
// successful root subtree — exactly the one the serial search commits to —
// and sums the node counts the serial search would have spent, so whenever
// the node budget is not hit, nodes and covers are byte-identical to
// solve_with_budget for every thread count.

class ParallelDeterminismParam
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParallelDeterminismParam, NodesAndCoverMatchSerial) {
  const std::uint32_t n = GetParam();
  const auto ser = solve_with_budget(n, rho(n));
  ASSERT_TRUE(ser.found);
  const std::size_t thread_counts[] = {1, 4, 0};
  for (const std::size_t threads : thread_counts) {
    const auto par = solve_with_budget_parallel(n, rho(n), {}, threads);
    ASSERT_TRUE(par.found) << "n=" << n << " threads=" << threads;
    EXPECT_EQ(par.nodes, ser.nodes) << "n=" << n << " threads=" << threads;
    EXPECT_EQ(par.cover.cycles, ser.cover.cycles)
        << "n=" << n << " threads=" << threads;
  }
}

TEST_P(ParallelDeterminismParam, NodesMatchSerialOnInfeasible) {
  const std::uint32_t n = GetParam();
  const auto ser = solve_with_budget(n, rho(n) - 1);
  const auto par = solve_with_budget_parallel(n, rho(n) - 1);
  EXPECT_FALSE(par.found) << "n=" << n;
  EXPECT_EQ(par.exhausted, ser.exhausted) << "n=" << n;
  EXPECT_EQ(par.nodes, ser.nodes) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Golden, ParallelDeterminismParam,
                         ::testing::Values(5, 6, 7, 8, 9, 11, 13, 15));

TEST(ParallelSolver, SharedBudgetBoundsTotalNodeSpend) {
  // All workers draw from one shared pool: the total node spend may exceed
  // max_nodes only by the few nodes each worker counts while discovering
  // the pool is empty — never by a factor of the root fan-out as the old
  // per-worker budgets allowed.
  SolverOptions opts;
  opts.max_nodes = 1000;
  const auto res = solve_with_budget_parallel(8, rho(8) - 1, opts);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
  EXPECT_LE(res.nodes, opts.max_nodes + 100);
}
