#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/solver.hpp"

using namespace ccov::covering;

class ParallelSolverParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParallelSolverParam, AgreesWithSerialOnFeasibility) {
  const std::uint32_t n = GetParam();
  const auto par = solve_with_budget_parallel(n, rho(n));
  ASSERT_TRUE(par.found) << "n=" << n;
  const auto rep = validate_cover(par.cover);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(par.cover.size(), rho(n));
}

TEST_P(ParallelSolverParam, AgreesWithSerialOnInfeasibility) {
  const std::uint32_t n = GetParam();
  if (n < 4) return;
  const auto par = solve_with_budget_parallel(n, rho(n) - 1);
  EXPECT_FALSE(par.found) << "n=" << n;
  EXPECT_TRUE(par.exhausted);
}

INSTANTIATE_TEST_SUITE_P(Small, ParallelSolverParam,
                         ::testing::Values(4, 5, 6, 7, 8));

TEST(ParallelSolver, SingleThreadStillWorks) {
  const auto res = solve_with_budget_parallel(6, rho(6), {}, 1);
  EXPECT_TRUE(res.found);
}

TEST(ParallelSolver, ZeroBudgetInfeasible) {
  const auto res = solve_with_budget_parallel(5, 0);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.exhausted);
}
