#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/protection/simulator.hpp"
#include <algorithm>

#include "ccov/ring/routing.hpp"

using namespace ccov;
using namespace ccov::protection;

namespace {

wdm::WdmRingNetwork make_net(std::uint32_t n) {
  return wdm::WdmRingNetwork(n, covering::build_optimal_cover(n),
                             wdm::Instance::all_to_all(n));
}

}  // namespace

TEST(Loopback, EverySubnetworkAffectedExactlyOnce) {
  // Each sub-network's routing tiles the ring, so any single link failure
  // hits exactly one request per sub-network.
  const std::uint32_t n = 11;
  const auto net = make_net(n);
  for (std::uint32_t e = 0; e < n; ++e) {
    const auto rep = simulate_loopback(net, LinkFailure{e});
    EXPECT_EQ(rep.affected_requests, net.subnetworks().size()) << "e=" << e;
    EXPECT_EQ(rep.switching_actions, 2 * net.subnetworks().size());
  }
}

TEST(Loopback, DetourStaysWithinRing) {
  const std::uint32_t n = 12;
  const auto net = make_net(n);
  const auto rep = simulate_loopback(net, LinkFailure{3});
  EXPECT_LE(rep.max_detour_hops, static_cast<std::uint64_t>(n) - 1);
  EXPECT_GT(rep.max_detour_hops, 0u);
}

TEST(Loopback, RecoveryTimeBoundedByParallelism) {
  // Loop-back recovers sub-networks in parallel: time is independent of
  // how many sub-networks exist (only of the worst detour).
  const TimingModel t;
  const auto small = simulate_loopback(make_net(7), LinkFailure{0}, t);
  const auto large = simulate_loopback(make_net(15), LinkFailure{0}, t);
  EXPECT_LT(large.recovery_time_ms,
            t.detect_ms + 2 * t.per_switch_ms + t.per_hop_ms * 15);
  EXPECT_GT(large.recovery_time_ms, 0.0);
  EXPECT_GT(small.recovery_time_ms, 0.0);
}

TEST(Restoration, AffectedEqualsLoad) {
  // Affected requests = minor-routing load on the failed edge; by symmetry
  // equal for all edges.
  const std::uint32_t n = 9;  // odd: minor routing is rotation-symmetric
  const auto inst = wdm::Instance::all_to_all(n);
  const auto r0 = simulate_restoration(n, inst, LinkFailure{0});
  const auto r5 = simulate_restoration(n, inst, LinkFailure{5});
  EXPECT_EQ(r0.affected_requests, r5.affected_requests);
  EXPECT_GT(r0.affected_requests, 0u);
}

TEST(Restoration, SlowerThanLoopbackAtScale) {
  // Restoration signalling is sequential per request; protection is
  // pre-planned. The shape claim of the paper's motivation.
  const std::uint32_t n = 15;
  const auto net = make_net(n);
  const auto inst = wdm::Instance::all_to_all(n);
  const auto lb = simulate_loopback(net, LinkFailure{2});
  const auto rs = simulate_restoration(n, inst, LinkFailure{2});
  EXPECT_GT(rs.recovery_time_ms, lb.recovery_time_ms);
}

TEST(WholeRing, SwitchesScaleWithLoad) {
  const std::uint32_t n = 12;
  const auto inst = wdm::Instance::all_to_all(n);
  const auto rep = simulate_whole_ring(n, inst, LinkFailure{0});
  // Wavelengths = max edge load of the minor routing.
  const auto load = ccov::ring::all_to_all_edge_load(n);
  const std::uint64_t expected_wl =
      *std::max_element(load.begin(), load.end());
  EXPECT_EQ(rep.switching_actions, 2 * expected_wl);
}

TEST(Averaging, MeanOverFailuresIsSymmetric) {
  const std::uint32_t n = 9;
  const auto net = make_net(n);
  const auto avg = average_over_failures(
      n, [&](LinkFailure f) { return simulate_loopback(net, f); });
  EXPECT_EQ(avg.affected_requests, net.subnetworks().size());
}

TEST(Loopback, ExtraHopsConsistency) {
  // Reroute extra hops = sum over affected requests of (n - 2*arc_len);
  // every term is positive because arcs are shorter than the ring.
  const std::uint32_t n = 13;
  const auto rep = simulate_loopback(make_net(n), LinkFailure{7});
  EXPECT_GT(rep.reroute_extra_hops, 0u);
  EXPECT_LT(rep.reroute_extra_hops,
            rep.affected_requests * static_cast<std::uint64_t>(n));
}
