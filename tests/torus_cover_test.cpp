#include <gtest/gtest.h>

#include "ccov/extensions/torus_cover.hpp"

using namespace ccov::extensions;

TEST(TorusCover, SmallTorusValid) {
  const auto tc = cover_torus_all_to_all(3, 3);
  EXPECT_EQ(tc.row_covers.size(), 3u);
  EXPECT_EQ(tc.col_covers.size(), 3u);
  EXPECT_TRUE(validate_torus_cover(tc));
  EXPECT_GE(tc.total_cycles, tc.lower_bound);
}

TEST(TorusCover, RectangularTorusValid) {
  const auto tc = cover_torus_all_to_all(3, 5);
  EXPECT_TRUE(validate_torus_cover(tc));
}

TEST(TorusCover, LargerTorusValid) {
  const auto tc = cover_torus_all_to_all(4, 6);
  EXPECT_TRUE(validate_torus_cover(tc));
  EXPECT_GT(tc.total_cycles, 0u);
}

TEST(TorusCover, RejectsDegenerateDimensions) {
  EXPECT_THROW(cover_torus_all_to_all(2, 5), std::invalid_argument);
  EXPECT_THROW(cover_torus_all_to_all(5, 2), std::invalid_argument);
}

TEST(TorusCover, RowDemandScalesWithColumns) {
  // Every row ring carries the row legs of all requests originating in
  // that row: C(cols,2) distinct chords at least.
  const auto tc = cover_torus_all_to_all(3, 6);
  for (const auto& cov : tc.row_covers) EXPECT_GT(cov.size(), 0u);
}

TEST(TorusCover, ValidationCatchesTampering) {
  auto tc = cover_torus_all_to_all(3, 4);
  ASSERT_FALSE(tc.row_covers[0].cycles.empty());
  tc.row_covers[0].cycles.clear();  // destroy one ring's cover
  EXPECT_FALSE(validate_torus_cover(tc));
}
