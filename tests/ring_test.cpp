#include <gtest/gtest.h>

#include "ccov/ring/arc.hpp"
#include "ccov/ring/ring.hpp"
#include "ccov/ring/routing.hpp"
#include "ccov/ring/tiling.hpp"

using namespace ccov::ring;

TEST(Ring, SuccPredWrap) {
  Ring r(5);
  EXPECT_EQ(r.succ(4), 0u);
  EXPECT_EQ(r.pred(0), 4u);
  EXPECT_EQ(r.succ(2), 3u);
}

TEST(Ring, CwDist) {
  Ring r(8);
  EXPECT_EQ(r.cw_dist(2, 5), 3u);
  EXPECT_EQ(r.cw_dist(5, 2), 5u);
  EXPECT_EQ(r.cw_dist(3, 3), 0u);
}

TEST(Ring, DistIsMinorSide) {
  Ring r(8);
  EXPECT_EQ(r.dist(0, 3), 3u);
  EXPECT_EQ(r.dist(0, 5), 3u);
  EXPECT_EQ(r.dist(0, 4), 4u);  // antipodal
}

TEST(Ring, AntipodalOnlyForEven) {
  Ring even(8), odd(7);
  EXPECT_TRUE(even.antipodal(1, 5));
  EXPECT_FALSE(even.antipodal(1, 4));
  for (Vertex u = 0; u < 7; ++u)
    for (Vertex v = 0; v < 7; ++v) EXPECT_FALSE(odd.antipodal(u, v));
}

TEST(Ring, AdvanceWraps) {
  Ring r(6);
  EXPECT_EQ(r.advance(4, 5), 3u);
  EXPECT_EQ(r.advance(0, 12), 0u);
}

TEST(Arc, EndComputation) {
  Ring r(10);
  Arc a{7, 5};
  EXPECT_EQ(a.end(r), 2u);
}

TEST(Arc, CoversEdge) {
  Ring r(10);
  Arc a{8, 4};  // edges 8, 9, 0, 1
  EXPECT_TRUE(arc_covers_edge(r, a, 8));
  EXPECT_TRUE(arc_covers_edge(r, a, 0));
  EXPECT_TRUE(arc_covers_edge(r, a, 1));
  EXPECT_FALSE(arc_covers_edge(r, a, 2));
  EXPECT_FALSE(arc_covers_edge(r, a, 7));
}

TEST(Arc, MinorArcShortSide) {
  Ring r(9);
  Arc a = minor_arc(r, 1, 4);
  EXPECT_EQ(a.len, 3u);
  EXPECT_EQ(a.start, 1u);
  Arc b = minor_arc(r, 4, 1);  // same chord, same minor arc
  EXPECT_EQ(b.len, 3u);
}

TEST(Arc, MinorArcWrapSide) {
  Ring r(9);
  Arc a = minor_arc(r, 1, 7);  // cw dist 6, other side 3
  EXPECT_EQ(a.len, 3u);
  EXPECT_EQ(a.start, 7u);
}

TEST(Arc, MinorArcAntipodalDeterministic) {
  Ring r(8);
  Arc a = minor_arc(r, 2, 6);
  Arc b = minor_arc(r, 6, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.len, 4u);
  EXPECT_EQ(a.start, 2u);  // min endpoint convention
}

TEST(Arc, ComplementInvolution) {
  Ring r(11);
  Arc a{3, 4};
  Arc c = complement(r, a);
  EXPECT_EQ(c.start, 7u);
  EXPECT_EQ(c.len, 7u);
  EXPECT_EQ(complement(r, c), a);
}

TEST(Arc, OverlapDetection) {
  Ring r(10);
  EXPECT_TRUE(arcs_overlap(r, Arc{0, 3}, Arc{2, 2}));
  EXPECT_FALSE(arcs_overlap(r, Arc{0, 2}, Arc{2, 2}));
  EXPECT_TRUE(arcs_overlap(r, Arc{8, 4}, Arc{0, 1}));  // wrap
  EXPECT_FALSE(arcs_overlap(r, Arc{8, 2}, Arc{0, 3}));
}

TEST(Arc, EdgesEnumerated) {
  Ring r(6);
  auto edges = arc_edges(r, Arc{4, 3});
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], 4u);
  EXPECT_EQ(edges[1], 5u);
  EXPECT_EQ(edges[2], 0u);
}

TEST(Tiling, ExactTilingAccepted) {
  Ring r(7);
  EXPECT_TRUE(is_exact_tiling(r, {Arc{0, 3}, Arc{3, 2}, Arc{5, 2}}));
}

TEST(Tiling, GapRejected) {
  Ring r(7);
  EXPECT_FALSE(is_exact_tiling(r, {Arc{0, 3}, Arc{3, 2}}));
}

TEST(Tiling, OverlapRejected) {
  Ring r(7);
  EXPECT_FALSE(is_exact_tiling(r, {Arc{0, 4}, Arc{3, 2}, Arc{5, 2}}));
}

TEST(Tiling, WrapArcLoad) {
  Ring r(5);
  auto load = edge_load(r, {Arc{3, 4}});  // edges 3, 4, 0, 1
  EXPECT_EQ(load[3], 1u);
  EXPECT_EQ(load[4], 1u);
  EXPECT_EQ(load[0], 1u);
  EXPECT_EQ(load[1], 1u);
  EXPECT_EQ(load[2], 0u);
}

TEST(Tiling, MaxLoadAndTotal) {
  Ring r(6);
  std::vector<Arc> arcs{Arc{0, 4}, Arc{2, 3}};
  EXPECT_EQ(max_load(r, arcs), 2u);
  EXPECT_EQ(total_length(arcs), 7u);
}

TEST(Routing, MinorRoutingLoadMatchesClosedForm) {
  for (std::uint32_t n : {5u, 6u, 7u, 8u, 9u, 12u, 15u, 16u}) {
    const auto load = all_to_all_edge_load(n);
    std::uint64_t total = 0;
    for (auto l : load) total += l;
    EXPECT_EQ(total, all_to_all_min_load(n)) << "n=" << n;
  }
}

TEST(Routing, ClosedFormOdd) {
  // n = 2p+1: L = n * p(p+1)/2.
  EXPECT_EQ(all_to_all_min_load(7), 7u * 6u);     // p=3: 7*6
  EXPECT_EQ(all_to_all_min_load(9), 9u * 10u);    // p=4: 9*10
}

TEST(Routing, ClosedFormEven) {
  // n = 2p: L = n*p(p-1)/2 + p^2.
  EXPECT_EQ(all_to_all_min_load(8), 8u * 6u + 16u);
  EXPECT_EQ(all_to_all_min_load(6), 6u * 3u + 9u);
}

TEST(Routing, UniformLoadBySymmetryOddN) {
  // For odd n every chord has a strict minor side, so the load is uniform
  // by rotational symmetry. (For even n the antipodal tie-break makes the
  // load vary by +-1 around the ring.)
  for (std::uint32_t n : {9u, 11u, 13u}) {
    const auto load = all_to_all_edge_load(n);
    for (auto l : load) EXPECT_EQ(l, load[0]) << n;
  }
}

TEST(Routing, EvenLoadWithinOneOfAverage) {
  const std::uint32_t n = 10;
  const auto load = all_to_all_edge_load(n);
  const std::uint64_t avg = all_to_all_min_load(n) / n;
  for (auto l : load) {
    EXPECT_GE(l + 3, avg);
    EXPECT_LE(l, avg + 3);
  }
}

TEST(Routing, RouteMinorUsesMinorArcs) {
  Ring r(9);
  auto arcs = route_minor(r, {{0, 4}, {2, 8}});
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].len, 4u);
  EXPECT_EQ(arcs[1].len, 3u);  // dist(2,8) = 3 via wrap
}

// Property sweep: complement length identity and dist symmetry.
class RingParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingParam, ComplementLengthsSumToN) {
  const std::uint32_t n = GetParam();
  Ring r(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = 0; v < n; ++v) {
      if (u == v) continue;
      Arc a = minor_arc(r, u, v);
      EXPECT_EQ(a.len + complement(r, a).len, n);
      EXPECT_LE(a.len, n / 2);
      EXPECT_EQ(r.dist(u, v), r.dist(v, u));
      EXPECT_EQ(r.cw_dist(u, v) + r.cw_dist(v, u), n);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingParam,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 12, 13, 16,
                                           17, 25, 32));
