#include <gtest/gtest.h>

#include <algorithm>

#include "ccov/covering/construct.hpp"
#include "ccov/protection/node_failure.hpp"

using namespace ccov;
using namespace ccov::protection;

namespace {

wdm::WdmRingNetwork make_net(std::uint32_t n) {
  return wdm::WdmRingNetwork(n, covering::build_optimal_cover(n),
                             wdm::Instance::all_to_all(n));
}

}  // namespace

TEST(NodeFailure, LostRequestsAreTwicePerMemberCycle) {
  // A failed node loses exactly 2 requests in every cycle containing it.
  const std::uint32_t n = 11;
  const auto net = make_net(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::size_t member_cycles = 0;
    for (const auto& s : net.subnetworks())
      if (std::find(s.cycle.begin(), s.cycle.end(), v) != s.cycle.end())
        ++member_cycles;
    const auto rep = simulate_node_failure(net, NodeFailure{v});
    EXPECT_EQ(rep.lost_requests, 2 * member_cycles) << "v=" << v;
  }
}

TEST(NodeFailure, EverySubnetworkReacts) {
  // Each sub-network either loses traffic (node is a member) or reroutes
  // its transit request — never neither.
  const std::uint32_t n = 9;
  const auto net = make_net(n);
  const auto rep = simulate_node_failure(net, NodeFailure{4});
  EXPECT_EQ(rep.lost_requests / 2 + rep.rerouted_requests,
            net.subnetworks().size());
}

TEST(NodeFailure, MemberCountAcrossCycles) {
  // Sum over vertices of member-cycle counts = sum of cycle sizes.
  const std::uint32_t n = 10;
  const auto net = make_net(n);
  std::uint64_t lost_total = 0;
  for (std::uint32_t v = 0; v < n; ++v)
    lost_total += simulate_node_failure(net, NodeFailure{v}).lost_requests;
  std::uint64_t sizes = 0;
  for (const auto& s : net.subnetworks()) sizes += s.cycle.size();
  EXPECT_EQ(lost_total, 2 * sizes);
}

TEST(NodeFailure, RecoveryTimePositiveAndBounded) {
  const std::uint32_t n = 13;
  const auto net = make_net(n);
  const TimingModel t;
  const auto rep = simulate_node_failure(net, NodeFailure{0}, t);
  EXPECT_GT(rep.recovery_time_ms, 0.0);
  EXPECT_LE(rep.recovery_time_ms,
            t.detect_ms + 2 * t.per_switch_ms + t.per_hop_ms * n);
}

TEST(NodeFailure, AverageIsConsistent) {
  const std::uint32_t n = 8;
  const auto net = make_net(n);
  const auto avg = average_over_node_failures(net);
  EXPECT_GT(avg.lost_requests + avg.rerouted_requests, 0u);
  EXPECT_GT(avg.switching_actions, 0u);
}

TEST(NodeFailure, TransitRerouteUsesComplement) {
  // On a node failure, rerouted requests detour by n - 2*len > 0 hops.
  const std::uint32_t n = 12;
  const auto net = make_net(n);
  const auto rep = simulate_node_failure(net, NodeFailure{5});
  if (rep.rerouted_requests > 0) {
    EXPECT_GT(rep.reroute_extra_hops, 0u);
  }
}
