#include <gtest/gtest.h>

#include "ccov/covering/cover.hpp"
#include "ccov/graph/generators.hpp"

using namespace ccov::covering;

namespace {

RingCover paper_k4_cover() {
  return RingCover{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}};
}

}  // namespace

TEST(Cover, PaperK4CoverValidates) {
  const auto rep = validate_cover(paper_k4_cover());
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.uncovered_chords, 0u);
  EXPECT_EQ(rep.non_drc_cycles, 0u);
}

TEST(Cover, PaperInvalidCoverRejected) {
  // The paper's counterexample: two C4s cover K_4's edges but (0,2,3,1)
  // violates the DRC.
  RingCover c{4, {{0, 1, 2, 3}, {0, 2, 3, 1}}};
  const auto rep = validate_cover(c);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.non_drc_cycles, 1u);
}

TEST(Cover, MissingChordDetected) {
  RingCover c{4, {{0, 1, 2, 3}, {0, 1, 3}}};  // chord (0,2) uncovered
  const auto rep = validate_cover(c);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.uncovered_chords, 1u);
  EXPECT_NE(rep.error.find("(0,2)"), std::string::npos);
}

TEST(Cover, DuplicateCoverageCounted) {
  const auto base = validate_cover(paper_k4_cover());
  RingCover c{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}, {0, 1, 2}}};
  const auto rep = validate_cover(c);
  EXPECT_TRUE(rep.ok);
  // The extra triangle re-covers exactly its 3 chords.
  EXPECT_EQ(rep.duplicate_coverage, base.duplicate_coverage + 3);
}

TEST(Cover, StructurallyInvalidCycleReported) {
  RingCover c{5, {{0, 1, 1}}};
  const auto rep = validate_cover(c);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("invalid cycle"), std::string::npos);
}

TEST(Cover, CompositionCounts) {
  const auto comp = composition(paper_k4_cover());
  EXPECT_EQ(comp[3], 2u);
  EXPECT_EQ(comp[4], 1u);
  EXPECT_EQ(count_c3(paper_k4_cover()), 2u);
  EXPECT_EQ(count_c4(paper_k4_cover()), 1u);
}

TEST(Cover, ValidateAgainstPartialDemand) {
  ccov::graph::Graph demand(6);
  demand.add_edge(0, 3);
  demand.add_edge(1, 2);
  RingCover c{6, {{0, 1, 2, 3}}};  // covers (0,3) as cycle edge? edges: 01,12,23,30
  const auto rep = validate_cover_against(c, demand);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(Cover, ValidateAgainstMultigraphDemand) {
  const auto demand = ccov::graph::complete_multigraph(4, 2);
  // Single cover of K_4 does not satisfy lambda = 2.
  const auto rep = validate_cover_against(paper_k4_cover(), demand);
  EXPECT_FALSE(rep.ok);
  // Two copies do.
  RingCover doubled = paper_k4_cover();
  for (const auto& cyc : paper_k4_cover().cycles) doubled.cycles.push_back(cyc);
  EXPECT_TRUE(validate_cover_against(doubled, demand).ok);
}

TEST(Cover, SummaryMentionsValidity) {
  EXPECT_NE(summary(paper_k4_cover()).find("valid"), std::string::npos);
}

TEST(Cover, TinyRingRejected) {
  RingCover c{2, {}};
  EXPECT_FALSE(validate_cover(c).ok);
}
