#include <gtest/gtest.h>

#include "ccov/covering/construct.hpp"
#include "ccov/protection/availability.hpp"

using namespace ccov;
using namespace ccov::protection;

namespace {

wdm::WdmRingNetwork make_net(std::uint32_t n) {
  return wdm::WdmRingNetwork(n, covering::build_optimal_cover(n),
                             wdm::Instance::all_to_all(n));
}

}  // namespace

TEST(Availability, ComponentModelInRange) {
  ComponentModel m;
  EXPECT_GT(m.link_availability(), 0.99);
  EXPECT_LT(m.link_availability(), 1.0);
  EXPECT_GT(m.node_availability(), 0.99);
  EXPECT_LT(m.node_availability(), 1.0);
}

TEST(Availability, ProtectionNeverHurts) {
  const ring::Ring r(16);
  const ComponentModel m;
  for (std::uint32_t len = 1; len <= 8; ++len) {
    const ring::Arc a{3, len};
    EXPECT_GE(request_availability_protected(r, a, m),
              request_availability_unprotected(r, a, m))
        << len;
  }
}

TEST(Availability, EndpointFailureCapsBoth) {
  // No scheme exceeds the two-endpoint availability product.
  const ring::Ring r(10);
  const ComponentModel m;
  const double cap = m.node_availability() * m.node_availability();
  const ring::Arc a{0, 4};
  EXPECT_LE(request_availability_protected(r, a, m), cap);
  EXPECT_LE(request_availability_unprotected(r, a, m), cap);
}

TEST(Availability, LongerWorkingPathLessAvailableUnprotected) {
  const ring::Ring r(20);
  const ComponentModel m;
  const double short_arc =
      request_availability_unprotected(r, {0, 2}, m);
  const double long_arc =
      request_availability_unprotected(r, {0, 9}, m);
  EXPECT_GT(short_arc, long_arc);
}

TEST(Availability, NetworkReportConsistent) {
  const auto net = make_net(11);
  const auto rep = analyze_availability(net);
  // One routed request per cycle edge.
  std::size_t expected = 0;
  for (const auto& s : net.subnetworks()) expected += s.routing.size();
  EXPECT_EQ(rep.requests, expected);
  EXPECT_LE(rep.min_protected, rep.mean_protected);
  EXPECT_LE(rep.min_unprotected, rep.mean_unprotected);
  EXPECT_GE(rep.mean_protected, rep.mean_unprotected);
}

TEST(Availability, DowntimeReductionSubstantial) {
  // The paper's survivability claim, quantified: loop-back protection cuts
  // downtime severalfold under realistic MTBF/MTTR (the residual downtime
  // is dominated by the unprotectable endpoint nodes), and the cut grows
  // with the ring size as working paths lengthen.
  const auto r13 = analyze_availability(make_net(13));
  EXPECT_GT(r13.downtime_reduction, 5.0);
  const auto r25 = analyze_availability(make_net(25));
  EXPECT_GT(r25.downtime_reduction, r13.downtime_reduction);
}

TEST(Availability, PerfectComponentsPerfectService) {
  ComponentModel perfect;
  perfect.link_mttr_h = 0.0;
  perfect.node_mttr_h = 0.0;
  const auto rep = analyze_availability(make_net(8), perfect);
  EXPECT_DOUBLE_EQ(rep.mean_protected, 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_unprotected, 1.0);
}
