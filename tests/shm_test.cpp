// Tests for the shared-memory transport: the SPSC byte ring underneath
// it (wrap-around, backpressure, cross-thread hammering) and the
// ShmServer/ShmClient pair on top (handshake rejection of torn
// segments, busy slots, end-to-end byte identity against the stdio
// transport from a fork()'d client process).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/serve.hpp"
#include "ccov/engine/shm.hpp"
#include "ccov/util/shm_ring.hpp"

namespace eng = ccov::engine;
namespace shm = ccov::engine::shm;
using ccov::util::ShmByteRing;

namespace {

std::vector<char> ring_region(std::size_t capacity) {
  // Over-align generously: the real transport gets page-aligned memory
  // from mmap; alignof(Control) is what init actually needs.
  return std::vector<char>(ShmByteRing::region_bytes(capacity) + 64);
}

void* aligned_base(std::vector<char>& region) {
  void* p = region.data();
  std::size_t space = region.size();
  return std::align(64, region.size() - 64, p, space);
}

/// A per-test unique segment name: parallel ctest runs must not share
/// POSIX shm names.
std::string unique_shm_name(const char* tag) {
  return std::string("ccov-test-") + tag + "-" + std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// ShmRing: the SPSC byte ring on a plain heap buffer.
// ---------------------------------------------------------------------------

TEST(ShmRing, CapacityValidation) {
  EXPECT_FALSE(ShmByteRing::valid_capacity(0));
  EXPECT_FALSE(ShmByteRing::valid_capacity(32));   // below minimum
  EXPECT_FALSE(ShmByteRing::valid_capacity(96));   // not a power of two
  EXPECT_FALSE(ShmByteRing::valid_capacity((1u << 30) + 1));
  EXPECT_TRUE(ShmByteRing::valid_capacity(64));
  EXPECT_TRUE(ShmByteRing::valid_capacity(1 << 20));

  std::vector<char> region = ring_region(64);
  EXPECT_FALSE(ShmByteRing::init(aligned_base(region), 96).valid());
  EXPECT_TRUE(ShmByteRing::init(aligned_base(region), 64).valid());
}

TEST(ShmRing, AttachValidatesStoredCapacity) {
  std::vector<char> region = ring_region(128);
  ASSERT_TRUE(ShmByteRing::init(aligned_base(region), 128).valid());
  EXPECT_TRUE(ShmByteRing::attach(aligned_base(region), 128).valid());
  // A reader expecting a different geometry must be refused — offsets
  // would be computed against the wrong mask.
  EXPECT_FALSE(ShmByteRing::attach(aligned_base(region), 256).valid());
  EXPECT_FALSE(ShmByteRing::attach(nullptr, 128).valid());
}

TEST(ShmRing, WrapAroundPreservesBytes) {
  constexpr std::size_t kCap = 64;
  std::vector<char> region = ring_region(kCap);
  ShmByteRing ring = ShmByteRing::init(aligned_base(region), kCap);
  ASSERT_TRUE(ring.valid());

  // Chunks of 48 against a capacity of 64 force the copy to split at
  // the physical end of the buffer on most iterations.
  std::string sent, received;
  char out[kCap];
  for (int i = 0; i < 100; ++i) {
    std::string chunk;
    for (int j = 0; j < 48; ++j)
      chunk.push_back(static_cast<char>('A' + (i + j) % 26));
    ASSERT_EQ(ring.try_write(chunk.data(), chunk.size()), chunk.size());
    sent += chunk;
    const std::size_t r = ring.try_read(out, sizeof out);
    ASSERT_EQ(r, chunk.size());
    received.append(out, r);
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(ring.readable(), 0u);
  EXPECT_EQ(ring.writable(), kCap);
}

TEST(ShmRing, PartialWriteWhenNearlyFull) {
  constexpr std::size_t kCap = 64;
  std::vector<char> region = ring_region(kCap);
  ShmByteRing ring = ShmByteRing::init(aligned_base(region), kCap);
  ASSERT_TRUE(ring.valid());

  const std::string big(100, 'x');
  EXPECT_EQ(ring.try_write(big.data(), big.size()), kCap);  // clipped
  EXPECT_EQ(ring.try_write(big.data(), big.size()), 0u);    // full
  EXPECT_EQ(ring.writable(), 0u);

  char buf[16];
  EXPECT_EQ(ring.try_read(buf, sizeof buf), sizeof buf);
  EXPECT_EQ(ring.writable(), sizeof buf);
  EXPECT_EQ(ring.try_write(big.data(), big.size()), sizeof buf);
}

TEST(ShmRing, BackpressureBlocksUntilDrained) {
  constexpr std::size_t kCap = 64;
  std::vector<char> region = ring_region(kCap);
  ShmByteRing ring = ShmByteRing::init(aligned_base(region), kCap);
  ASSERT_TRUE(ring.valid());

  // Producer: 8 KiB of a counted pattern through a 64-byte ring — it
  // must block on backpressure hundreds of times and resume each time
  // the consumer frees space.
  constexpr std::size_t kTotal = 8192;
  std::thread producer([&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      const char byte = static_cast<char>(sent % 251);
      if (ring.try_write(&byte, 1) == 1) {
        ++sent;
      } else {
        ring.wait_writable(1000);
      }
    }
  });

  std::size_t got = 0;
  bool in_order = true;
  while (got < kTotal) {
    char buf[kCap];
    const std::size_t r = ring.try_read(buf, sizeof buf);
    if (r == 0) {
      ring.wait_readable(1000);
      continue;
    }
    for (std::size_t i = 0; i < r; ++i)
      in_order = in_order && buf[i] == static_cast<char>((got + i) % 251);
    got += r;
  }
  producer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(got, kTotal);
}

TEST(ShmRing, TwoThreadHammer) {
  // Variable-sized writes against variable-sized reads, checked as one
  // continuous byte stream. Run under TSan this doubles as the data-race
  // proof for the publish/consume protocol.
  constexpr std::size_t kCap = 256;
  constexpr std::size_t kTotal = 1 << 20;
  std::vector<char> region = ring_region(kCap);
  ShmByteRing ring = ShmByteRing::init(aligned_base(region), kCap);
  ASSERT_TRUE(ring.valid());

  std::thread producer([&] {
    std::size_t sent = 0;
    std::uint32_t rng = 0x9e3779b9;
    char chunk[191];
    while (sent < kTotal) {
      rng = rng * 1664525 + 1013904223;
      std::size_t want = 1 + rng % sizeof(chunk);
      want = std::min(want, kTotal - sent);
      for (std::size_t i = 0; i < want; ++i)
        chunk[i] = static_cast<char>((sent + i) % 251);
      std::size_t off = 0;
      while (off < want) {
        const std::size_t w = ring.try_write(chunk + off, want - off);
        if (w == 0)
          ring.wait_writable(1000);
        else
          off += w;
      }
      sent += want;
    }
  });

  std::size_t got = 0;
  bool ok = true;
  std::uint32_t rng = 0xdeadbeef;
  char buf[137];
  while (got < kTotal) {
    rng = rng * 1664525 + 1013904223;
    const std::size_t want = 1 + rng % sizeof(buf);
    const std::size_t r = ring.try_read(buf, want);
    if (r == 0) {
      ring.wait_readable(1000);
      continue;
    }
    for (std::size_t i = 0; i < r; ++i)
      ok = ok && buf[i] == static_cast<char>((got + i) % 251);
    got += r;
  }
  producer.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, kTotal);
}

// ---------------------------------------------------------------------------
// ShmServe: handshake and session behaviour over a real segment.
// ---------------------------------------------------------------------------

/// Serves sessions on a background thread until destruction.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& name,
                         std::size_t ring_bytes = 1 << 16) {
    eng::ServeConfig config;
    config.shm_name = name;
    config.shm_ring_bytes = ring_bytes;
    server_ = std::make_unique<shm::ShmServer>(engine_, config);
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() {
    server_->shutdown();
    thread_.join();
    server_.reset();
  }

  eng::Engine& engine() { return engine_; }

 private:
  eng::Engine engine_{eng::EngineOptions{}};
  std::unique_ptr<shm::ShmServer> server_;
  std::thread thread_;
};

bool connect_with_retry(shm::ShmClient* client, const std::string& name,
                        std::string* error) {
  // The slot may still be in its post-session reset window, and after a
  // vanished client the server only probes the pid on wait timeouts —
  // allow a few seconds, like an interactive CLI retry would.
  for (int i = 0; i < 600; ++i) {
    if (client->connect(name, error)) return true;
    ::usleep(5 * 1000);
  }
  return false;
}

TEST(ShmServe, NameNormalization) {
  std::string out, err;
  EXPECT_TRUE(shm::normalize_shm_name("covers", &out, &err));
  EXPECT_EQ(out, "/covers");
  EXPECT_TRUE(shm::normalize_shm_name("/covers", &out, &err));
  EXPECT_EQ(out, "/covers");
  EXPECT_FALSE(shm::normalize_shm_name("", &out, &err));
  EXPECT_FALSE(shm::normalize_shm_name("a/b", &out, &err));
  EXPECT_FALSE(shm::normalize_shm_name(std::string(300, 'x'), &out, &err));
}

TEST(ShmServe, ConnectRejectsMissingSegment) {
  shm::ShmClient client;
  std::string error;
  EXPECT_FALSE(client.connect(unique_shm_name("missing"), &error));
  EXPECT_FALSE(error.empty());
}

TEST(ShmServe, ConnectRejectsTornSegment) {
  // Hand-craft segments that fail each handshake stage: wrong magic
  // (foreign or mid-construction), wrong version, wrong capacity
  // geometry, and a header that claims more than the file holds.
  const std::string name = unique_shm_name("torn");
  const std::string path = "/" + name;

  struct Case {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t capacity;
    std::size_t file_bytes;
  };
  const std::size_t full = shm::segment_bytes(1 << 16);
  const Case cases[] = {
      {0x646145646145ULL, shm::kShmVersion, 1 << 16, full},  // bad magic
      {shm::kShmMagic, shm::kShmVersion + 7, 1 << 16, full},  // bad version
      {shm::kShmMagic, shm::kShmVersion, (1 << 16) + 13, full},  // bad cap
      {shm::kShmMagic, shm::kShmVersion, 1 << 16,
       sizeof(shm::ShmSegmentHeader)},  // truncated file
  };

  for (const Case& c : cases) {
    ::shm_unlink(path.c_str());
    const int fd = ::shm_open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(c.file_bytes)), 0);
    void* mem = ::mmap(nullptr, sizeof(shm::ShmSegmentHeader),
                       PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ASSERT_NE(mem, MAP_FAILED);
    auto* header = new (mem) shm::ShmSegmentHeader();
    header->version = c.version;
    header->ring_capacity = c.capacity;
    header->server_pid.store(static_cast<std::uint32_t>(::getpid()),
                             std::memory_order_relaxed);
    header->magic.store(c.magic, std::memory_order_release);
    ::munmap(mem, sizeof(shm::ShmSegmentHeader));
    ::close(fd);

    shm::ShmClient client;
    std::string error;
    EXPECT_FALSE(client.connect(name, &error))
        << "segment with magic=" << c.magic << " version=" << c.version
        << " capacity=" << c.capacity << " bytes=" << c.file_bytes
        << " must be rejected";
    EXPECT_FALSE(error.empty());
    ::shm_unlink(path.c_str());
  }
}

TEST(ShmServe, RoundTripAndSecondClientBusy) {
  const std::string name = unique_shm_name("busy");
  ServerFixture server(name);

  shm::ShmClient client;
  std::string error;
  ASSERT_TRUE(connect_with_retry(&client, name, &error)) << error;

  // The slot is SPSC: a second live claimant must be turned away.
  shm::ShmClient second;
  EXPECT_FALSE(second.connect(name, &error));
  EXPECT_NE(error.find("busy"), std::string::npos) << error;

  ASSERT_TRUE(client.send_line("{\"algo\":\"construct\",\"n\":7}"));
  client.finish();
  std::string line;
  ASSERT_TRUE(client.read_line(&line));
  EXPECT_NE(line.find("\"id\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_FALSE(client.read_line(&line));  // EOF after finish()
  // A clean end-of-stream is the server's eof mark, not an abort.
  EXPECT_TRUE(client.server_finished());
  client.close();
}

TEST(ShmServe, ProcStartTimeIdentity) {
#ifdef __linux__
  // Our own start time must be readable — it is the anti-pid-reuse
  // token every liveness probe folds in.
  EXPECT_NE(shm::proc_start_time(static_cast<std::uint32_t>(::getpid())),
            0u);
#endif
  // A pid that cannot exist has no start time.
  EXPECT_EQ(shm::proc_start_time(0), 0u);
}

TEST(ShmServe, SecondServerOnLiveNameRejected) {
  const std::string name = unique_shm_name("taken");
  ServerFixture server(name);

  // The live server holds an exclusive flock on its segment for its
  // whole lifetime, so a second server must be turned away even
  // without looking at the header.
  eng::Engine other{eng::EngineOptions{}};
  eng::ServeConfig config;
  config.shm_name = name;
  try {
    shm::ShmServer second(other, config);
    FAIL() << "second server on a live name must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("already being served"),
              std::string::npos)
        << e.what();
  }
}

TEST(ShmServe, ZeroMagicLeftoverRecycledAfterGrace) {
  // A segment whose creator died before publishing the magic: nobody
  // holds its lock and the magic never appears, so after the grace
  // window a new server recycles the name instead of failing forever.
  const std::string name = unique_shm_name("zeromagic");
  const std::string path = "/" + name;
  ::shm_unlink(path.c_str());
  const int fd = ::shm_open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::ftruncate(fd, static_cast<off_t>(sizeof(shm::ShmSegmentHeader))), 0);
  ::close(fd);

  eng::Engine engine{eng::EngineOptions{}};
  eng::ServeConfig config;
  config.shm_name = name;
  shm::ShmServer server(engine, config);  // must not throw
  EXPECT_EQ(server.name(), path);
}

TEST(ShmServe, PumpedClientReassemblesSplitLines) {
  // The `ccov client --shm` pump pattern: interleave nonblocking sends
  // with drains into ONE buffer, then keep draining that same buffer
  // through read_some after finish(). Rings far smaller than the
  // response stream force every drain to land mid-line, which is
  // exactly the case that used to tear a line between the local buffer
  // and read_line's internal one.
  const std::vector<std::string> script = {
      "{\"algo\":\"construct\",\"n\":12}", "{\"algo\":\"construct\",\"n\":15}",
      "{\"algo\":\"construct\",\"n\":12}", "{\"op\":\"stats\"}",
      "{\"algo\":\"construct\",\"n\":13}",
  };
  std::string script_text;
  for (const auto& l : script) script_text += l + "\n";

  // Reference bytes through the stdio transport on a fresh engine.
  eng::Engine reference{eng::EngineOptions{}};
  std::istringstream in(script_text);
  std::ostringstream out;
  eng::serve_loop(in, out, reference, eng::ServeConfig{});
  const std::string expected = out.str();
  ASSERT_GT(expected.size(), 512u) << "script must overflow the rings";

  const std::string name = unique_shm_name("pump");
  ServerFixture server(name, /*ring_bytes=*/256);
  shm::ShmClient client;
  std::string error;
  ASSERT_TRUE(connect_with_retry(&client, name, &error)) << error;

  std::string got;
  for (const auto& l : script) {
    const std::string line = l + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      off += client.try_send(line.data() + off, line.size() - off);
      client.drain_available(&got);
      if (off < line.size()) {
        ASSERT_TRUE(client.ok());
        client.wait_send(50);
      }
    }
  }
  client.finish();
  while (client.read_some(&got) > 0) {
  }
  EXPECT_TRUE(client.server_finished());
  client.close();

  EXPECT_EQ(got, expected)
      << "pumped drains must reassemble to the exact stdio byte stream";
}

TEST(ShmServe, SlotRecyclesAcrossSessions) {
  const std::string name = unique_shm_name("recycle");
  ServerFixture server(name);

  for (int session = 0; session < 3; ++session) {
    shm::ShmClient client;
    std::string error;
    ASSERT_TRUE(connect_with_retry(&client, name, &error))
        << "session " << session << ": " << error;
    ASSERT_TRUE(client.send_line("{\"algo\":\"construct\",\"n\":9}"));
    client.finish();
    std::string line;
    ASSERT_TRUE(client.read_line(&line)) << "session " << session;
    // ids restart per session: each session is a fresh serve_session.
    EXPECT_NE(line.find("\"id\":0"), std::string::npos) << line;
    client.close();
  }
}

// ---------------------------------------------------------------------------
// ShmProcess: fork()'d end-to-end byte identity. Kept out of the TSan
// suites (fork + threads don't mix under TSan).
// ---------------------------------------------------------------------------

const char* const kScriptLines[] = {
    "{\"algo\":\"construct\",\"n\":7}",
    "{\"algo\":\"construct\",\"n\":12}",
    "{\"algo\":\"construct\",\"n\":7}",  // cache hit second time around
    "this is not json",
    "{\"algo\":\"no-such-algorithm\",\"n\":7}",
};

TEST(ShmProcess, ForkedClientMatchesStdioBytes) {
  const std::string name = unique_shm_name("fork");
  ServerFixture server(name);

  // Reference bytes: the same script through the stdio transport on a
  // fresh engine (so cache evolution matches the shm server's).
  std::string script;
  for (const char* l : kScriptLines) script += std::string(l) + "\n";
  eng::Engine reference{eng::EngineOptions{}};
  std::istringstream in(script);
  std::ostringstream out;
  eng::serve_loop(in, out, reference, eng::ServeConfig{});
  const std::string expected = out.str();
  ASSERT_FALSE(expected.empty());

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: drive the session from a genuinely separate process and
    // stream every response byte back over the pipe.
    ::close(pipefd[0]);
    shm::ShmClient client;
    std::string error;
    if (!connect_with_retry(&client, name, &error)) ::_exit(2);
    for (const char* l : kScriptLines)
      if (!client.send_line(l)) ::_exit(3);
    client.finish();
    std::string line;
    while (client.read_line(&line)) {
      line += "\n";
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t w =
            ::write(pipefd[1], line.data() + off, line.size() - off);
        if (w <= 0) ::_exit(4);
        off += static_cast<std::size_t>(w);
      }
    }
    client.close();
    ::close(pipefd[1]);
    ::_exit(0);
  }

  ::close(pipefd[1]);
  std::string got;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(pipefd[0], buf, sizeof buf);
    if (r <= 0) break;
    got.append(buf, static_cast<std::size_t>(r));
  }
  ::close(pipefd[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  EXPECT_EQ(got, expected)
      << "shm transport must produce byte-identical serve output";
}

TEST(ShmProcess, StaleSegmentRecycledAfterServerDeath) {
  // A server that dies without running its destructor (crash, SIGKILL)
  // leaves the segment behind with a published magic and a dead pid.
  // The kernel drops its flock with the process, so the next server
  // must probe the header, judge it stale and recycle the name.
  const std::string name = unique_shm_name("deadserver");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    eng::Engine engine{eng::EngineOptions{}};
    eng::ServeConfig config;
    config.shm_name = name;
    shm::ShmServer server(engine, config);
    ::_exit(0);  // _exit skips the destructor: the segment stays linked
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  eng::Engine engine{eng::EngineOptions{}};
  eng::ServeConfig config;
  config.shm_name = name;
  shm::ShmServer server(engine, config);  // recycles; must not throw
  EXPECT_EQ(server.name(), "/" + name);
}

TEST(ShmProcess, VanishedClientFreesSlot) {
  const std::string name = unique_shm_name("vanish");
  ServerFixture server(name);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: claim the slot, send half a session, then die without
    // detaching — the rude-client case the pid probe exists for.
    shm::ShmClient client;
    std::string error;
    if (!connect_with_retry(&client, name, &error)) ::_exit(2);
    client.send_line("{\"algo\":\"construct\",\"n\":7}");
    std::string line;
    client.read_line(&line);
    ::_exit(0);  // no close(): the slot still holds our pid
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // The server's liveness probe must notice the dead pid, tear the
  // session down and reopen the slot for a fresh client.
  shm::ShmClient next;
  std::string error;
  ASSERT_TRUE(connect_with_retry(&next, name, &error)) << error;
  ASSERT_TRUE(next.send_line("{\"algo\":\"construct\",\"n\":9}"));
  next.finish();
  std::string line;
  EXPECT_TRUE(next.read_line(&line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  next.close();

  EXPECT_GE(server.engine()
                .metrics()
                .counter("ccov_shm_clients_vanished_total", "")
                .value(),
            1u);
}

}  // namespace
