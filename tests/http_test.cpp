// Tests for the HTTP/1.1 front end (http.hpp): POST /v1/batch must
// stream back the exact serve-protocol bytes (chunked), /metrics must
// expose Prometheus text, and the server must survive rude clients —
// partial heads, oversized bodies, disconnects mid-response.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/http.hpp"
#include "ccov/engine/serve.hpp"

namespace eng = ccov::engine;
namespace net = ccov::engine::net;

namespace {

// ---------------------------------------------------------------------------
// A minimal blocking HTTP test client.
// ---------------------------------------------------------------------------

class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_) << std::strerror(errno);
  }

  ~HttpClient() { close(); }

  bool connected() const { return connected_; }

  void send_text(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t w = ::send(fd_, text.data() + off, text.size() - off, 0);
      if (w < 0 && errno == EINTR) continue;
      ASSERT_GT(w, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(w);
    }
  }

  void send_post(const std::string& target, const std::string& body,
                 const std::string& extra_headers = "") {
    send_text("POST " + target + " HTTP/1.1\r\nHost: test\r\n" +
              extra_headers +
              "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
              body);
  }

  void send_get(const std::string& target) {
    send_text("GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n");
  }

  struct Response {
    int status = 0;
    std::string head;  ///< raw header block (request line included)
    std::string body;  ///< de-chunked payload
    bool chunked = false;

    bool header_contains(const std::string& needle) const {
      return head.find(needle) != std::string::npos;
    }
  };

  /// Read one full response off the stream (head + framed body).
  /// status == 0 means the stream ended before a response arrived.
  Response read_response() {
    Response resp;
    // --- head ---
    std::size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos)
      if (!fill()) return resp;
    resp.head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);
    const std::size_t sp = resp.head.find(' ');
    if (sp != std::string::npos)
      resp.status = std::atoi(resp.head.c_str() + sp + 1);
    resp.chunked = resp.head.find("Transfer-Encoding: chunked") !=
                   std::string::npos;
    // --- body ---
    if (resp.chunked) {
      for (;;) {
        std::size_t nl;
        while ((nl = buffer_.find("\r\n")) == std::string::npos)
          if (!fill()) return resp;
        const std::size_t size =
            std::strtoul(buffer_.substr(0, nl).c_str(), nullptr, 16);
        buffer_.erase(0, nl + 2);
        while (buffer_.size() < size + 2)
          if (!fill()) return resp;
        resp.body.append(buffer_, 0, size);
        buffer_.erase(0, size + 2);  // data + CRLF
        if (size == 0) break;
      }
    } else {
      const std::size_t cl = resp.head.find("Content-Length: ");
      if (cl != std::string::npos) {
        const std::size_t size =
            std::strtoul(resp.head.c_str() + cl + 16, nullptr, 10);
        while (buffer_.size() < size)
          if (!fill()) return resp;
        resp.body = buffer_.substr(0, size);
        buffer_.erase(0, size);
      }
    }
    return resp;
  }

  std::string read_to_eof() {
    while (fill()) {
    }
    return std::exchange(buffer_, std::string());
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(r));
      return true;
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// A running HttpServer on an ephemeral loopback port.
class HttpHarness {
 public:
  explicit HttpHarness(eng::ServeConfig config = {})
      : server_(engine_, std::move(config)),
        runner_([this] { rc_ = server_.run(); }) {}

  ~HttpHarness() { stop(); }

  void stop() {
    if (runner_.joinable()) {
      server_.shutdown();
      runner_.join();
    }
  }

  eng::Engine& engine() { return engine_; }
  std::uint16_t port() const { return server_.port(); }
  int exit_code() const { return rc_; }

 private:
  eng::Engine engine_;
  net::HttpServer server_;
  int rc_ = -1;
  std::thread runner_;
};

std::string stdio_reference(const std::string& input) {
  eng::Engine engine;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(eng::serve_loop(in, out, engine, {}), 0);
  return out.str();
}

const char kWorkload[] =
    "{\"algo\":\"construct\",\"n\":9}\n"
    "{\"algo\":\"solve\",\"n\":7}\n"
    "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[0,3],[1,4],[2,7]]}\n"
    "not json at all\n"
    "{\"algo\":\"construct\",\"n\":9}\n"
    "{\"op\":\"stats\"}\n";

}  // namespace

// ---------------------------------------------------------------------------
// The tentpole contract: HTTP payload == stdio payload, byte for byte
// ---------------------------------------------------------------------------

TEST(Http, BatchRoundTripIsByteIdenticalToStdio) {
  const std::string expected = stdio_reference(kWorkload);
  HttpHarness server;
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_post("/v1/batch", kWorkload);
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.chunked) << resp.head;
  EXPECT_TRUE(resp.header_contains("Content-Type: application/x-ndjson"))
      << resp.head;
  EXPECT_EQ(resp.body, expected);
  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
}

TEST(Http, PipelinedKeepAliveRequestsShareTheConnectionAndCache) {
  HttpHarness server;
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Two batches and a metrics scrape pipelined in one write. Each batch
  // is its own serve session (ids restart at 0), the second hits the
  // cache the first warmed.
  const std::string batch = "{\"algo\":\"construct\",\"n\":9}\n";
  client.send_post("/v1/batch", batch);
  client.send_post("/v1/batch", batch);
  client.send_get("/metrics");

  const auto first = client.read_response();
  ASSERT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"id\":0,"), std::string::npos) << first.body;
  EXPECT_NE(first.body.find("\"cache_hit\":false"), std::string::npos)
      << first.body;

  const auto second = client.read_response();
  ASSERT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"id\":0,"), std::string::npos) << second.body;
  EXPECT_NE(second.body.find("\"cache_hit\":true"), std::string::npos)
      << second.body;

  const auto metrics = client.read_response();
  ASSERT_EQ(metrics.status, 200);
  EXPECT_TRUE(metrics.header_contains("Content-Type: text/plain"))
      << metrics.head;
  EXPECT_NE(metrics.body.find("ccov_serve_sessions_total 2"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("ccov_http_requests_total 3"),
            std::string::npos)
      << metrics.body;
}

TEST(Http, HeadSplitAcrossManyReadsStillParses) {
  HttpHarness server;
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string body = "{\"op\":\"stats\"}\n";
  const std::string request =
      "POST /v1/batch HTTP/1.1\r\nHost: test\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  // Trickle the request a few bytes at a time — worst-case packetization.
  for (std::size_t off = 0; off < request.size(); off += 7) {
    client.send_text(request.substr(off, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"op\":\"stats\",\"ok\":true"),
            std::string::npos)
      << resp.body;
}

// ---------------------------------------------------------------------------
// Error statuses
// ---------------------------------------------------------------------------

TEST(Http, OversizedBodyIsRefusedWith413) {
  eng::ServeConfig config;
  config.max_body_bytes = 128;
  HttpHarness server(config);
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_post("/v1/batch", std::string(1000, 'x'));
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, 413);
  EXPECT_TRUE(resp.header_contains("Connection: close")) << resp.head;
}

TEST(Http, MissingContentLengthIs411AndChunkedRequestIs501) {
  HttpHarness server;
  {
    HttpClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_text("POST /v1/batch HTTP/1.1\r\nHost: test\r\n\r\n");
    EXPECT_EQ(client.read_response().status, 411);
  }
  {
    HttpClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_text(
        "POST /v1/batch HTTP/1.1\r\nHost: test\r\n"
        "Transfer-Encoding: chunked\r\n\r\n");
    EXPECT_EQ(client.read_response().status, 501);
  }
}

TEST(Http, OversizedHeadIs431) {
  eng::ServeConfig config;
  config.max_header_bytes = 256;
  HttpHarness server(config);
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_text("GET /metrics HTTP/1.1\r\nX-Padding: " +
                   std::string(1000, 'p') + "\r\n");
  EXPECT_EQ(client.read_response().status, 431);
}

TEST(Http, OversizedBodyLineIsAnsweredInBand) {
  // A line over --max-line inside an accepted body is a protocol-level
  // error (ok:false response line), not an HTTP error — identical to
  // the stdio transport's behaviour.
  eng::ServeConfig config;
  config.max_line_bytes = 64;
  HttpHarness server(config);
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string body =
      std::string(500, 'x') + "\n{\"algo\":\"construct\",\"n\":9}\n";
  client.send_post("/v1/batch", body);
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find(
                "{\"id\":0,\"ok\":false,\"error\":\"parse: line exceeds"),
            std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("{\"id\":1,\"ok\":true"), std::string::npos)
      << resp.body;
}

TEST(Http, UnknownRoutesAndMethodsGetDiagnosticStatuses) {
  HttpHarness server;
  {
    HttpClient client(server.port());
    client.send_get("/no/such/path");
    const auto resp = client.read_response();
    EXPECT_EQ(resp.status, 404);
    // The 404 body lists what would have worked.
    EXPECT_NE(resp.body.find("POST /v1/batch"), std::string::npos)
        << resp.body;
    EXPECT_NE(resp.body.find("GET  /metrics"), std::string::npos)
        << resp.body;
    // Keep-alive survives a 404: the same connection still works.
    client.send_get("/healthz");
    EXPECT_EQ(client.read_response().status, 200);
  }
  {
    HttpClient client(server.port());
    client.send_get("/v1/batch");  // wrong method for the batch route
    const auto resp = client.read_response();
    EXPECT_EQ(resp.status, 405);
    EXPECT_TRUE(resp.header_contains("Allow: POST")) << resp.head;
    client.send_text("DELETE /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_EQ(client.read_response().status, 405);
  }
  {
    HttpClient client(server.port());
    client.send_text("BREW /coffee HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_EQ(client.read_response().status, 501);
    HttpClient old_version(server.port());
    old_version.send_text("GET /healthz HTTP/2\r\nHost: t\r\n\r\n");
    EXPECT_EQ(old_version.read_response().status, 505);
  }
}

TEST(Http, Expect100ContinueIsAnswered) {
  HttpHarness server;
  HttpClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string body = "{\"op\":\"stats\"}\n";
  client.send_text(
      "POST /v1/batch HTTP/1.1\r\nHost: test\r\n"
      "Expect: 100-continue\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n");
  const auto cont = client.read_response();
  ASSERT_EQ(cont.status, 100);
  client.send_text(body);
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"op\":\"stats\""), std::string::npos)
      << resp.body;
}

// ---------------------------------------------------------------------------
// Resilience
// ---------------------------------------------------------------------------

TEST(Http, ClientDisconnectingMidResponseLeavesTheServerAlive) {
  HttpHarness server;
  {
    // Ask for a lot of output and vanish without reading: the server's
    // chunk writes hit a dead socket and must only kill this connection.
    HttpClient rude(server.port());
    ASSERT_TRUE(rude.connected());
    std::string body;
    for (int i = 0; i < 50; ++i) body += "{\"algo\":\"construct\",\"n\":64}\n";
    rude.send_post("/v1/batch", body);
    rude.close();
  }
  // No stats verb here: the rude client's requests polluted the shared
  // cache, so cache-statistics lines would not match a fresh-engine
  // reference (the compute responses use different keys and do match).
  const std::string workload =
      "{\"algo\":\"construct\",\"n\":9}\n"
      "{\"algo\":\"solve\",\"n\":7}\n"
      "not json at all\n"
      "{\"algo\":\"construct\",\"n\":9}\n";
  const std::string expected = stdio_reference(workload);
  HttpClient polite(server.port());
  ASSERT_TRUE(polite.connected());
  polite.send_post("/v1/batch", workload);
  const auto resp = polite.read_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, expected);
  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
}

TEST(Http, RefusesClientsBeyondMaxWith503) {
  eng::ServeConfig config;
  config.max_clients = 1;
  HttpHarness server(config);

  HttpClient first(server.port());
  ASSERT_TRUE(first.connected());
  // Round-trip once so the connection is registered server-side.
  first.send_get("/healthz");
  EXPECT_EQ(first.read_response().status, 200);

  HttpClient second(server.port());
  ASSERT_TRUE(second.connected());
  second.send_get("/healthz");
  const auto refused = second.read_response();
  EXPECT_EQ(refused.status, 503);
  EXPECT_TRUE(refused.header_contains("Retry-After")) << refused.head;
  EXPECT_TRUE(second.read_to_eof().empty());  // then the server hangs up

  // The first client is unaffected.
  first.send_get("/metrics");
  EXPECT_EQ(first.read_response().status, 200);
}

TEST(Http, ShutdownWhileKeepAliveConnectionIsIdleReturnsZero) {
  HttpHarness server;
  HttpClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  idle.send_get("/healthz");
  EXPECT_EQ(idle.read_response().status, 200);
  // Shut down while the connection waits for its next request.
  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
  EXPECT_TRUE(idle.read_to_eof().empty());
}
