#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/wdm/cost.hpp"
#include "ccov/wdm/instance.hpp"
#include "ccov/wdm/network.hpp"

using namespace ccov;
using namespace ccov::wdm;

TEST(Instance, AllToAllIsComplete) {
  const auto inst = Instance::all_to_all(7);
  EXPECT_EQ(inst.nodes(), 7u);
  EXPECT_EQ(inst.num_requests(), 21u);
  EXPECT_TRUE(inst.demands().is_simple());
}

TEST(Instance, UniformLambda) {
  const auto inst = Instance::uniform(5, 3);
  EXPECT_EQ(inst.num_requests(), 30u);
}

TEST(Network, BuildsFromOptimalCover) {
  const std::uint32_t n = 9;
  const auto cover = covering::build_optimal_cover(n);
  WdmRingNetwork net(n, cover, Instance::all_to_all(n));
  EXPECT_EQ(net.subnetworks().size(), covering::rho(n));
  EXPECT_EQ(net.wavelengths(), 2 * covering::rho(n));
}

TEST(Network, RejectsIncompleteCover) {
  covering::RingCover partial{5, {{0, 1, 2}}};
  EXPECT_THROW(WdmRingNetwork(5, partial, Instance::all_to_all(5)),
               std::invalid_argument);
}

TEST(Network, RejectsSizeMismatch) {
  const auto cover = covering::build_optimal_cover(5);
  EXPECT_THROW(WdmRingNetwork(7, cover, Instance::all_to_all(7)),
               std::invalid_argument);
}

TEST(Network, RoutingsTileTheRing) {
  const std::uint32_t n = 11;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  for (const auto& sub : net.subnetworks()) {
    std::uint64_t len = 0;
    for (const auto& a : sub.routing) len += a.len;
    EXPECT_EQ(len, n);  // DRC routing tiles the ring exactly
  }
}

TEST(Network, WavelengthsAreDistinctPerSubnetwork) {
  const std::uint32_t n = 8;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  std::set<std::uint32_t> lambdas;
  for (const auto& s : net.subnetworks()) lambdas.insert(s.wavelength);
  EXPECT_EQ(lambdas.size(), net.subnetworks().size());
}

TEST(Network, AdmAndTransitSumToNPerSubnetwork) {
  const std::uint32_t n = 13;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  EXPECT_EQ(net.adm_count() + net.transit_count(),
            static_cast<std::uint64_t>(n) * net.subnetworks().size());
}

TEST(Network, ServingSubnetworkFindsEveryRequest) {
  const std::uint32_t n = 9;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      EXPECT_TRUE(net.serving_subnetwork(u, v).has_value()) << u << "," << v;
}

TEST(Cost, BreakdownConsistency) {
  const std::uint32_t n = 10;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  const auto b = evaluate_cost(net, CostModel{});
  EXPECT_EQ(b.subnetworks, covering::rho(n));
  EXPECT_EQ(b.wavelengths, 2 * b.subnetworks);
  EXPECT_EQ(b.lit_hops, 2ull * n * b.subnetworks);
  EXPECT_GT(b.total, 0.0);
}

TEST(Cost, FewerSubnetworksCheaper) {
  // The paper's claim: on a ring, minimizing the number of sub-networks
  // minimizes cost. Compare the optimal cover against a padded one.
  const std::uint32_t n = 9;
  auto opt = covering::build_optimal_cover(n);
  auto padded = opt;
  padded.cycles.push_back({0, 1, 2});
  padded.cycles.push_back({0, 3, 6});
  const auto inst = Instance::all_to_all(n);
  const CostModel m;
  const double c_opt = evaluate_cost(WdmRingNetwork(n, opt, inst), m).total;
  const double c_pad = evaluate_cost(WdmRingNetwork(n, padded, inst), m).total;
  EXPECT_LT(c_opt, c_pad);
}

TEST(Cost, ZeroModelZeroCost) {
  const std::uint32_t n = 6;
  WdmRingNetwork net(n, covering::build_optimal_cover(n),
                     Instance::all_to_all(n));
  CostModel zero{0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(evaluate_cost(net, zero).total, 0.0);
}
