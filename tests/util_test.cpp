#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ccov/util/cli.hpp"
#include "ccov/util/csv.hpp"
#include "ccov/util/ints.hpp"
#include "ccov/util/pipeline.hpp"
#include "ccov/util/prng.hpp"
#include "ccov/util/table.hpp"
#include "ccov/util/thread_pool.hpp"
#include "ccov/util/timer.hpp"

namespace cu = ccov::util;

TEST(Ints, CeilDivExact) { EXPECT_EQ(cu::ceil_div(10, 5), 2); }
TEST(Ints, CeilDivRoundsUp) { EXPECT_EQ(cu::ceil_div(11, 5), 3); }
TEST(Ints, CeilDivZeroNumerator) { EXPECT_EQ(cu::ceil_div(0, 7), 0); }
TEST(Ints, ModPosPositive) { EXPECT_EQ(cu::mod_pos(7, 5), 2); }
TEST(Ints, ModPosNegative) { EXPECT_EQ(cu::mod_pos(-3, 5), 2); }
TEST(Ints, ModPosMultiple) { EXPECT_EQ(cu::mod_pos(-10, 5), 0); }
TEST(Ints, Gcd) { EXPECT_EQ(cu::gcd_of(12u, 18u), 6u); }
TEST(Ints, GcdCoprime) { EXPECT_EQ(cu::gcd_of(7u, 9u), 1u); }
TEST(Ints, GcdWithZero) { EXPECT_EQ(cu::gcd_of(0u, 5u), 5u); }
TEST(Ints, Choose2) {
  EXPECT_EQ(cu::choose2<std::uint64_t>(0), 0u);
  EXPECT_EQ(cu::choose2<std::uint64_t>(1), 0u);
  EXPECT_EQ(cu::choose2<std::uint64_t>(5), 10u);
  EXPECT_EQ(cu::choose2<std::uint64_t>(100), 4950u);
}

TEST(Prng, Deterministic) {
  cu::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}
TEST(Prng, SeedsDiffer) {
  cu::Xoshiro256 a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 10; ++i) diff += a() != b();
  EXPECT_GT(diff, 0);
}
TEST(Prng, BelowInRange) {
  cu::Xoshiro256 g(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(g.below(17), 17u);
}
TEST(Prng, Uniform01Range) {
  cu::Xoshiro256 g(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}
TEST(Prng, BelowRoughlyUniform) {
  cu::Xoshiro256 g(11);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) counts[g.below(4)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Table, RendersAligned) {
  cu::Table t({"n", "value"});
  t.add(5, "abc");
  t.add(1000, "x");
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}
TEST(Table, RejectsWidthMismatch) {
  cu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}
TEST(Table, FormatsDoubles) {
  cu::Table t({"x"});
  t.add(1.23456);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
}

TEST(Table, WritesCsv) {
  cu::Table t({"algo", "n"});
  t.add("construct", 9);
  t.add("with,comma", 11);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "algo,n\nconstruct,9\n\"with,comma\",11\n");
}
TEST(Table, CsvQuotesQuotesAndCarriageReturns) {
  cu::Table t({"x"});
  t.add(std::string("a\"b"));
  t.add(std::string("c\rd"));
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n\"a\"\"b\"\n\"c\rd\"\n");
}
TEST(Table, WritesJson) {
  cu::Table t({"algo", "n"});
  t.add("greedy", 7);
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(), "[\n  {\"algo\": \"greedy\", \"n\": \"7\"}\n]\n");
}
TEST(Table, JsonEscapesControlCharacters) {
  cu::Table t({"x"});
  t.add(std::string("a\"b\\c\nd\x01"
                    "e"));
  std::ostringstream os;
  t.write_json(os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd\\u0001e"), std::string::npos);
}
TEST(Table, EmptyJsonIsAnEmptyArray) {
  cu::Table t({"x"});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(Csv, WritesEscapedCells) {
  const std::string path = testing::TempDir() + "ccov_csv_test.csv";
  {
    cu::CsvWriter w(path, {"a", "b"});
    w.write("x,y", 3);
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "\"x,y\",3");
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--n=12", "--name=ring"};
  cu::Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get("name", ""), "ring");
}
TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--n", "7"};
  cu::Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("n", 0), 7);
}
TEST(Cli, BooleanFlagAndDefault) {
  const char* argv[] = {"prog", "--verbose"};
  cu::Cli cli(2, argv);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
}
TEST(Cli, Positional) {
  const char* argv[] = {"prog", "input.txt", "--k=3", "out.txt"};
  cu::Cli cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}
TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--x=2.5"};
  cu::Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
}

TEST(ThreadPool, RunsAllTasks) {
  cu::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}
TEST(ThreadPool, ParallelForCoversRange) {
  cu::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  cu::parallel_for(pool, 10, 40, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 40) ? 1 : 0) << i;
}
TEST(ThreadPool, EmptyRangeIsNoop) {
  cu::ThreadPool pool(2);
  cu::parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}
TEST(ThreadPool, ZeroThreadsFallsBackToHardwareConcurrency) {
  cu::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}
TEST(ThreadPool, ReusableAfterDrain) {
  cu::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter++; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}
TEST(ThreadPool, TaskExceptionPropagatesToWaitIdle) {
  cu::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The stored exception is cleared and the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}
TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  cu::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // cleared: a second wait does not rethrow
}
TEST(ThreadPool, ParallelForPropagatesTaskException) {
  cu::ThreadPool pool(4);
  EXPECT_THROW(cu::parallel_for(pool, 0, 100,
                                [](std::size_t i) {
                                  if (i == 37)
                                    throw std::invalid_argument("bad index");
                                }),
               std::invalid_argument);
  // Remaining chunks completed; the pool is still usable afterwards.
  std::vector<std::atomic<int>> hits(20);
  cu::parallel_for(pool, 0, 20, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskGroup, WaitReturnsWhileOtherGroupsStillRun) {
  // A group's wait() must block on its own tasks only, not on every
  // in-flight task in the pool.
  cu::ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  cu::TaskGroup slow, fast;
  pool.submit(slow, [gate] { gate.wait(); });
  std::atomic<int> fast_done{0};
  pool.submit(fast, [&] { fast_done++; });
  fast.wait();  // must not wait for the blocked `slow` task
  EXPECT_EQ(fast_done.load(), 1);
  EXPECT_EQ(slow.pending(), 1u);
  release.set_value();
  slow.wait();
  EXPECT_EQ(slow.pending(), 0u);
}

TEST(TaskGroup, ExceptionsRouteToTheSubmittingBatch) {
  // Two batches on one pool: the failing batch rethrows its own error;
  // the succeeding batch (and the default group) never see it.
  cu::ThreadPool pool(2);
  cu::TaskGroup failing, succeeding;
  for (int i = 0; i < 8; ++i) {
    pool.submit(failing, [] { throw std::runtime_error("boom"); });
    pool.submit(succeeding, [] {});
  }
  succeeding.wait();  // must not throw another batch's exception
  EXPECT_THROW(failing.wait(), std::runtime_error);
  failing.wait();    // cleared on rethrow
  pool.wait_idle();  // default group untouched: no rethrow
}

TEST(ThreadPool, ConcurrentParallelForCallersAreIsolated) {
  // Regression: two OS threads share one pool; one's parallel_for body
  // always throws, the other's never does. Every failing call must
  // observe its own exception and the succeeding caller must never see
  // one (previously wait_idle could rethrow another caller's error and
  // waited for all in-flight tasks).
  cu::ThreadPool pool(4);
  constexpr int kRounds = 25;
  constexpr std::size_t kSpan = 64;

  std::atomic<std::size_t> good_hits{0};
  std::atomic<int> good_saw_exception{0};
  std::atomic<int> bad_exceptions{0};

  std::thread bad([&] {
    for (int r = 0; r < kRounds; ++r) {
      try {
        cu::parallel_for(pool, 0, kSpan, [](std::size_t i) {
          if (i % 7 == 3) throw std::invalid_argument("bad batch");
        });
      } catch (const std::invalid_argument&) {
        bad_exceptions++;
      }
    }
  });
  std::thread good([&] {
    for (int r = 0; r < kRounds; ++r) {
      try {
        cu::parallel_for(pool, 0, kSpan,
                         [&](std::size_t) { good_hits++; });
      } catch (...) {
        good_saw_exception++;
      }
    }
  });
  bad.join();
  good.join();

  EXPECT_EQ(bad_exceptions.load(), kRounds);
  EXPECT_EQ(good_saw_exception.load(), 0);
  EXPECT_EQ(good_hits.load(), kRounds * kSpan);
  pool.wait_idle();  // the pool itself is still healthy
}

TEST(OrderedPipeline, RunsJobsStrictlyInSubmissionOrder) {
  cu::OrderedPipeline pipe(2);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pipe.enqueue([i, &order, &mu] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(i);
      return true;
    }));
  }
  ASSERT_TRUE(pipe.drain());
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(OrderedPipeline, ProducerOverlapsWithTheRunningJob) {
  // While the first job blocks, the producer can still queue the second
  // (depth 2 = double buffering) without deadlocking.
  cu::OrderedPipeline pipe(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> done{0};
  ASSERT_TRUE(pipe.enqueue([gate, &done] {
    gate.wait();
    done++;
    return true;
  }));
  ASSERT_TRUE(pipe.enqueue([&done] {
    done++;
    return true;
  }));  // must not block: slot two of the double buffer
  EXPECT_EQ(done.load(), 0);
  release.set_value();
  ASSERT_TRUE(pipe.drain());
  EXPECT_EQ(done.load(), 2);
}

TEST(OrderedPipeline, FailingJobPoisonsThePipeline) {
  cu::OrderedPipeline pipe(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pipe.enqueue([&ran] {
    ran++;
    return false;  // peer gone
  }));
  // Eventually enqueue starts reporting dead; queued-but-unrun jobs are
  // dropped and drain reports the failure.
  while (pipe.enqueue([&ran] {
    ran++;
    return true;
  })) {
  }
  EXPECT_FALSE(pipe.drain());
  EXPECT_FALSE(pipe.enqueue([] { return true; }));
}

TEST(OrderedPipeline, ThrowingJobCountsAsFailure) {
  cu::OrderedPipeline pipe(1);
  ASSERT_TRUE(pipe.enqueue([]() -> bool { throw std::runtime_error("boom"); }));
  EXPECT_FALSE(pipe.drain());
}

TEST(OrderedPipeline, DestructorRunsTheRemainingQueue) {
  std::atomic<int> ran{0};
  {
    cu::OrderedPipeline pipe(4);
    for (int i = 0; i < 4; ++i)
      ASSERT_TRUE(pipe.enqueue([&ran] {
        ran++;
        return true;
      }));
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(Timer, MeasuresNonNegative) {
  cu::Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.micros(), 0.0);
}
