#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/graph/generators.hpp"

using namespace ccov::covering;

class GreedyParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GreedyParam, ProducesValidCover) {
  const auto cover = greedy_cover(GetParam());
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST_P(GreedyParam, RespectsLowerBound) {
  const std::uint32_t n = GetParam();
  EXPECT_GE(greedy_cover(n).size(), parity_lower_bound(n));
}

TEST_P(GreedyParam, WithinConstantFactorOfOptimal) {
  // Greedy is suboptimal but must stay within 2x of rho on these sizes
  // (the benchmark tables report the actual ratio).
  const std::uint32_t n = GetParam();
  EXPECT_LE(greedy_cover(n).size(), 2 * rho(n)) << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyParam,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 12, 15, 20,
                                           25, 31));

// The greedy's pick order (lexicographically first uncovered chord, then
// the freshest C3/C4 through it with ascending-vertex tie-break) is pinned
// byte-for-byte: the bitset rewrite of the chord set must reproduce the
// std::set-based covers exactly, and these goldens catch any future drift.
TEST(GreedyGolden, CoverPinnedOnK10) {
  EXPECT_EQ(to_string(greedy_cover(10)),
            "(0 1 2 3)(0 2 4 5)(0 4 6 7)(0 6 8 9)(0 1 3 8)(1 4 7 8)"
            "(1 5 6 9)(1 2 6)(1 2 5 7)(2 7 9)(2 3 4 8)(3 5 8 9)(3 6 7)"
            "(4 5 9)");
}

TEST(GreedyGolden, DemandCoverPinnedOnStar8) {
  const auto cover =
      greedy_cover_demand(8, ccov::graph::star_graph(8));
  EXPECT_EQ(to_string(cover), "(0 1 2)(0 3 4)(0 5 6)(0 1 7)");
}

TEST(GreedyDemand, CoversSparseDemand) {
  ccov::graph::Graph demand(10);
  demand.add_edge(0, 5);
  demand.add_edge(2, 7);
  demand.add_edge(1, 2);
  const auto cover = greedy_cover_demand(10, demand);
  EXPECT_TRUE(validate_cover_against(cover, demand).ok);
  EXPECT_LE(cover.size(), 3u);
}

TEST(GreedyDemand, EmptyDemandEmptyCover) {
  ccov::graph::Graph demand(8);
  EXPECT_EQ(greedy_cover_demand(8, demand).size(), 0u);
}

TEST(GreedyDemand, OutOfRangeDemandVertexThrows) {
  // Graph::add_edge auto-grows the vertex set, so a demand built for a
  // larger instance can reach a smaller ring; the bitset is sized for n
  // and must reject it instead of indexing out of bounds.
  ccov::graph::Graph demand(5);
  demand.add_edge(0, 100);
  EXPECT_THROW(greedy_cover_demand(5, demand), std::invalid_argument);
}

TEST(GreedyDemand, MultigraphDemandCoveredWithMultiplicity) {
  ccov::graph::Graph demand(6);
  demand.add_edge(0, 3);
  demand.add_edge(0, 3);
  const auto cover = greedy_cover_demand(6, demand);
  // Each chord instance needs its own coverage... the greedy covers the
  // chord set, so a single coverage satisfies the set but not multiplicity.
  // Validate against the simple version of the demand.
  ccov::graph::Graph simple(6);
  simple.add_edge(0, 3);
  EXPECT_TRUE(validate_cover_against(cover, simple).ok);
}
