#include <gtest/gtest.h>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/graph/generators.hpp"

using namespace ccov::covering;

class GreedyParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GreedyParam, ProducesValidCover) {
  const auto cover = greedy_cover(GetParam());
  const auto rep = validate_cover(cover);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST_P(GreedyParam, RespectsLowerBound) {
  const std::uint32_t n = GetParam();
  EXPECT_GE(greedy_cover(n).size(), parity_lower_bound(n));
}

TEST_P(GreedyParam, WithinConstantFactorOfOptimal) {
  // Greedy is suboptimal but must stay within 2x of rho on these sizes
  // (the benchmark tables report the actual ratio).
  const std::uint32_t n = GetParam();
  EXPECT_LE(greedy_cover(n).size(), 2 * rho(n)) << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyParam,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 12, 15, 20,
                                           25, 31));

TEST(GreedyDemand, CoversSparseDemand) {
  ccov::graph::Graph demand(10);
  demand.add_edge(0, 5);
  demand.add_edge(2, 7);
  demand.add_edge(1, 2);
  const auto cover = greedy_cover_demand(10, demand);
  EXPECT_TRUE(validate_cover_against(cover, demand).ok);
  EXPECT_LE(cover.size(), 3u);
}

TEST(GreedyDemand, EmptyDemandEmptyCover) {
  ccov::graph::Graph demand(8);
  EXPECT_EQ(greedy_cover_demand(8, demand).size(), 0u);
}

TEST(GreedyDemand, MultigraphDemandCoveredWithMultiplicity) {
  ccov::graph::Graph demand(6);
  demand.add_edge(0, 3);
  demand.add_edge(0, 3);
  const auto cover = greedy_cover_demand(6, demand);
  // Each chord instance needs its own coverage... the greedy covers the
  // chord set, so a single coverage satisfies the set but not multiplicity.
  // Validate against the simple version of the demand.
  ccov::graph::Graph simple(6);
  simple.add_edge(0, 3);
  EXPECT_TRUE(validate_cover_against(cover, simple).ok);
}
