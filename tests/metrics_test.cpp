// Tests for the metrics registry (metrics.hpp): counter/gauge
// semantics, callback-backed series, Prometheus text rendering (format
// validation plus a full-text golden against an engine in a known
// state), and the wiring between Engine subsystems and the registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/metrics.hpp"
#include "ccov/engine/serve.hpp"

namespace eng = ccov::engine;

TEST(Metrics, CountersAndGaugesHoldValues) {
  eng::MetricsRegistry reg;
  eng::Counter& c = reg.counter("events_total", "help");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // get-or-create: the same name resolves to the same storage.
  EXPECT_EQ(&reg.counter("events_total", "ignored"), &c);

  eng::Gauge& g = reg.gauge("level", "help");
  g.add(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);

  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.value("events_total"), 42);
  EXPECT_EQ(reg.value("level"), -7);
  EXPECT_EQ(reg.value("no_such_series"), -1);
}

TEST(Metrics, CallbackSeriesReadAtScrapeTime) {
  eng::MetricsRegistry reg;
  std::uint64_t hits = 0;
  reg.counter_fn("hits_total", "h", [&hits] { return hits; });
  EXPECT_EQ(reg.value("hits_total"), 0);
  hits = 9;
  EXPECT_EQ(reg.value("hits_total"), 9);
  // Callback series are registered exactly once.
  EXPECT_THROW(reg.counter_fn("hits_total", "h", [] { return 0ull; }),
               std::invalid_argument);
}

TEST(Metrics, RejectsInvalidNamesAndKindMismatches) {
  eng::MetricsRegistry reg;
  EXPECT_THROW(reg.counter("", "h"), std::invalid_argument);
  EXPECT_THROW(reg.counter("9starts_with_digit", "h"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has-dash", "h"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", "h"), std::invalid_argument);
  reg.counter("ok_name", "h");
  EXPECT_THROW(reg.gauge("ok_name", "h"), std::invalid_argument);
  reg.gauge("_underscore_first", "h");  // valid
}

TEST(Metrics, RenderIsSortedValidPrometheusText) {
  eng::MetricsRegistry reg;
  reg.gauge("zeta", "last alphabetically").set(1);
  reg.counter("alpha_total", "first alphabetically").add(3);
  const std::string text = reg.render_prometheus();

  // Every series renders exactly three lines: # HELP, # TYPE, sample;
  // names appear in sorted order.
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> names;
  int state = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (state == 0) {
      ASSERT_EQ(line.rfind("# HELP ", 0), 0u) << line;
    } else if (state == 1) {
      ASSERT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      const std::string kind = line.substr(line.rfind(' ') + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge") << line;
    } else {
      const std::size_t space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      names.push_back(line.substr(0, space));
      // The sample value must parse as an integer.
      EXPECT_NO_THROW(std::stoll(line.substr(space + 1))) << line;
    }
    state = (state + 1) % 3;
  }
  EXPECT_EQ(state, 0) << "truncated metric block";
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha_total");
  EXPECT_EQ(names[1], "zeta");
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Metrics, GoldenRenderOfAFreshEngineAfterOneRequest) {
  // One construct n=9 against a fresh engine puts every series in a
  // deterministic state; this golden pins the full exposition format.
  eng::EngineOptions opts;
  opts.cache_capacity = 256;
  eng::Engine engine(opts);
  eng::CoverRequest req;
  req.algorithm = "construct";
  req.n = 9;
  ASSERT_TRUE(engine.run(req).ok);

  const std::string expected =
      "# HELP ccov_cache_capacity CoverCache total capacity across shards\n"
      "# TYPE ccov_cache_capacity gauge\n"
      "ccov_cache_capacity 256\n"
      "# HELP ccov_cache_entries CoverCache entries currently stored\n"
      "# TYPE ccov_cache_entries gauge\n"
      "ccov_cache_entries 1\n"
      "# HELP ccov_cache_evictions_total CoverCache entries evicted by the "
      "per-shard LRU\n"
      "# TYPE ccov_cache_evictions_total counter\n"
      "ccov_cache_evictions_total 0\n"
      "# HELP ccov_cache_hits_total CoverCache lookups served from the "
      "cache\n"
      "# TYPE ccov_cache_hits_total counter\n"
      "ccov_cache_hits_total 0\n"
      "# HELP ccov_cache_misses_total CoverCache lookups that required a "
      "computation\n"
      "# TYPE ccov_cache_misses_total counter\n"
      "ccov_cache_misses_total 1\n"
      "# HELP ccov_requests_degraded_total Timed-out exact solves answered "
      "with the greedy fallback cover\n"
      "# TYPE ccov_requests_degraded_total counter\n"
      "ccov_requests_degraded_total 0\n"
      "# HELP ccov_requests_shed_total Requests answered shed:true because "
      "their deadline expired while queued\n"
      "# TYPE ccov_requests_shed_total counter\n"
      "ccov_requests_shed_total 0\n"
      "# HELP ccov_requests_timed_out_total Requests whose deadline expired "
      "before the search settled\n"
      "# TYPE ccov_requests_timed_out_total counter\n"
      "ccov_requests_timed_out_total 0\n"
      "# HELP ccov_serve_errors_total In-band protocol errors answered by "
      "serve sessions\n"
      "# TYPE ccov_serve_errors_total counter\n"
      "ccov_serve_errors_total 0\n"
      "# HELP ccov_serve_pipeline_depth Flush jobs currently queued or "
      "running across sessions\n"
      "# TYPE ccov_serve_pipeline_depth gauge\n"
      "ccov_serve_pipeline_depth 0\n"
      "# HELP ccov_serve_requests_total Compute requests accepted by serve "
      "sessions\n"
      "# TYPE ccov_serve_requests_total counter\n"
      "ccov_serve_requests_total 0\n"
      "# HELP ccov_serve_sessions_active Serve sessions currently running\n"
      "# TYPE ccov_serve_sessions_active gauge\n"
      "ccov_serve_sessions_active 0\n"
      "# HELP ccov_serve_sessions_total Serve sessions started (stdio, TCP "
      "and HTTP batches)\n"
      "# TYPE ccov_serve_sessions_total counter\n"
      "ccov_serve_sessions_total 0\n"
      "# HELP ccov_serve_verbs_total Control verbs executed by serve "
      "sessions\n"
      "# TYPE ccov_serve_verbs_total counter\n"
      "ccov_serve_verbs_total 0\n"
      "# HELP ccov_solver_cancellations_total In-flight solves aborted by "
      "the server's cancel token (shutdown)\n"
      "# TYPE ccov_solver_cancellations_total counter\n"
      "ccov_solver_cancellations_total 0\n"
      "# HELP ccov_solver_nodes_total Cumulative branch-and-bound nodes "
      "searched across all requests\n"
      "# TYPE ccov_solver_nodes_total counter\n"
      "ccov_solver_nodes_total 0\n";
  EXPECT_EQ(engine.metrics().render_prometheus(), expected);
}

TEST(Metrics, SnapshotMatchesRenderedValues) {
  eng::MetricsRegistry reg;
  reg.counter("b_total", "h").add(2);
  reg.gauge("a_level", "h").set(-4);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a_level");
  EXPECT_EQ(snap[0].second, -4);
  EXPECT_EQ(snap[1].first, "b_total");
  EXPECT_EQ(snap[1].second, 2);
}

TEST(Metrics, ConcurrentUpdatesAreLossFree) {
  eng::MetricsRegistry reg;
  eng::Counter& c = reg.counter("hammered_total", "h");
  eng::Gauge& g = reg.gauge("balance", "h");
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, SolverNodesAccumulateAcrossRequests) {
  eng::Engine engine;
  eng::CoverRequest req;
  req.algorithm = "solve";
  req.n = 7;
  ASSERT_TRUE(engine.run(req).ok);
  const std::int64_t after_first =
      engine.metrics().value("ccov_solver_nodes_total");
  EXPECT_GT(after_first, 0);
  // A cache hit searches nothing, so the counter must not move.
  ASSERT_TRUE(engine.run(req).ok);
  EXPECT_EQ(engine.metrics().value("ccov_solver_nodes_total"), after_first);
}
