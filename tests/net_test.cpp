// Tests for the TCP front end (net.hpp): endpoint parsing, loopback
// round trips that must be byte-identical to the stdio transport,
// concurrent clients sharing one warm CoverCache, and resilience when a
// client disconnects mid-stream (the server must outlive EPIPE).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/net.hpp"
#include "ccov/engine/serve.hpp"

namespace eng = ccov::engine;
namespace net = ccov::engine::net;

namespace {

// ---------------------------------------------------------------------------
// A minimal blocking test client.
// ---------------------------------------------------------------------------

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_) << std::strerror(errno);
  }

  ~TestClient() { close(); }

  bool connected() const { return connected_; }

  void send_text(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t w = ::send(fd_, text.data() + off, text.size() - off, 0);
      if (w < 0 && errno == EINTR) continue;
      ASSERT_GT(w, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(w);
    }
  }

  /// Half-close: tells the server this client sent everything (EOF).
  void finish_sending() { ::shutdown(fd_, SHUT_WR); }

  /// Read one '\n'-terminated line (without the newline). Empty result
  /// means the stream ended first.
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return {};
    }
  }

  /// Drain the stream to EOF and return everything (including what was
  /// already buffered).
  std::string read_to_eof() {
    while (fill()) {
    }
    return std::exchange(buffer_, std::string());
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(r));
      return true;
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// A running ServeServer on an ephemeral loopback port.
class ServerHarness {
 public:
  explicit ServerHarness(eng::ServeConfig config = {})
      : server_(engine_, std::move(config)),
        runner_([this] { rc_ = server_.run(); }) {}

  ~ServerHarness() { stop(); }

  void stop() {
    if (runner_.joinable()) {
      server_.shutdown();
      runner_.join();
    }
  }

  eng::Engine& engine() { return engine_; }
  std::uint16_t port() const { return server_.port(); }
  int exit_code() const { return rc_; }

 private:
  eng::Engine engine_;
  net::ServeServer server_;
  int rc_ = -1;
  std::thread runner_;
};

std::string stdio_reference(eng::Engine& engine, const std::string& input,
                            eng::ServeConfig config = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(eng::serve_loop(in, out, engine, config), 0);
  return out.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint parsing
// ---------------------------------------------------------------------------

TEST(NetEndpoint, ParsesTheDocumentedForms) {
  std::string host;
  std::uint16_t port = 0;
  std::string error;

  EXPECT_TRUE(net::parse_endpoint("127.0.0.1:8080", &host, &port, &error));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);

  EXPECT_TRUE(net::parse_endpoint("0", &host, &port, &error));
  EXPECT_EQ(host, "127.0.0.1");  // bare port = loopback
  EXPECT_EQ(port, 0);

  EXPECT_TRUE(net::parse_endpoint(":9100", &host, &port, &error));
  EXPECT_EQ(host, "0.0.0.0");  // ":port" = wildcard

  EXPECT_TRUE(net::parse_endpoint("[::1]:9100", &host, &port, &error));
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 9100);

  EXPECT_TRUE(net::parse_endpoint("localhost:65535", &host, &port, &error));
  EXPECT_EQ(port, 65535);
}

TEST(NetEndpoint, RejectsMalformedSpecs) {
  std::string host;
  std::uint16_t port = 0;
  std::string error;
  for (const char* bad :
       {"", ":", "host:", "host:notaport", "host:70000", "[::1]9100",
        "host:-1", "host:12x", "::1", "fe80::1:9100"}) {
    EXPECT_FALSE(net::parse_endpoint(bad, &host, &port, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Loopback round trips
// ---------------------------------------------------------------------------

namespace {

const char kWorkloadA[] =
    "{\"algo\":\"construct\",\"n\":9}\n"
    "{\"algo\":\"solve\",\"n\":7}\n"
    "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[0,3],[1,4],[2,7]]}\n"
    "not json at all\n"
    "{\"algo\":\"construct\",\"n\":9}\n";

// The same instances as kWorkloadA, rotated through D_n (the greedy
// demand is kWorkloadA's shifted by +2): a warm cache answers all of
// them with nodes=0.
const char kWorkloadB[] =
    "{\"algo\":\"construct\",\"n\":9}\n"
    "{\"algo\":\"solve\",\"n\":7}\n"
    "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[2,5],[3,6],[0,4]]}\n"
    "{\"op\":\"stats\"}\n";

}  // namespace

TEST(NetServer, RoundTripIsByteIdenticalToStdio) {
  // Reference: the exact bytes the stdio transport produces for this
  // stream against a fresh engine.
  eng::Engine reference_engine;
  const std::string expected = stdio_reference(reference_engine, kWorkloadA);

  ServerHarness server;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_text(kWorkloadA);
  client.finish_sending();
  EXPECT_EQ(client.read_to_eof(), expected);

  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
}

TEST(NetServer, ConcurrentClientsShareOneWarmCache) {
  ServerHarness server;

  // Both clients are connected at once; their overlapping requests are
  // sequenced so the byte streams stay deterministic: A computes, then
  // B repeats D_n-equivalent instances and must be served from the
  // shared cache.
  TestClient a(server.port());
  TestClient b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  // The reference bytes come from one stdio engine that sees A's stream
  // and then B's stream — the serve protocol restarts ids per session,
  // exactly like two sequential serve_loop calls on a shared engine.
  eng::Engine reference_engine;
  const std::string expect_a = stdio_reference(reference_engine, kWorkloadA);
  const std::string expect_b = stdio_reference(reference_engine, kWorkloadB);

  a.send_text(kWorkloadA);
  a.finish_sending();
  EXPECT_EQ(a.read_to_eof(), expect_a);

  b.send_text(kWorkloadB);
  b.finish_sending();
  const std::string got_b = b.read_to_eof();
  EXPECT_EQ(got_b, expect_b);

  // B's compute responses all came from the cache A warmed...
  EXPECT_NE(got_b.find("\"id\":0,\"ok\":true,\"algo\":\"construct\""),
            std::string::npos)
      << got_b;
  EXPECT_NE(got_b.find("\"nodes\":0,\"cache_hit\":true"), std::string::npos)
      << got_b;
  // ...and the stats verb shows the cross-client hits on the shared
  // store (A's own duplicate plus B's three repeats).
  const std::size_t hits_pos = got_b.find("\"hits\":");
  ASSERT_NE(hits_pos, std::string::npos) << got_b;
  EXPECT_GE(std::stoul(got_b.substr(hits_pos + 7)), 4u) << got_b;
}

TEST(NetServer, ManyClientsHammeringStayIndexAligned) {
  ServerHarness server;
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 12;

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, c] {
      TestClient client(server.port());
      ASSERT_TRUE(client.connected());
      for (int i = 0; i < kRequestsEach; ++i) {
        // Overlapping D_n-equivalent instances across clients, ping-pong
        // so every response is matched to its request line.
        const int shift = (c + i) % 3;
        const std::string req =
            "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[" +
            std::to_string(shift) + "," + std::to_string(shift + 3) + "],[" +
            std::to_string(shift + 1) + "," + std::to_string(shift + 4) +
            "]]}\n";
        client.send_text(req);
        const std::string line = client.read_line();
        const std::string prefix = "{\"id\":" + std::to_string(i) + ",";
        EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
        EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
      }
      client.finish_sending();
    });
  }
  for (auto& t : threads) t.join();

  // Every demand above is a rotation of [[0,3],[1,4]] — one canonical
  // instance. In the worst race each client misses its very first
  // lookup before anyone inserted; everything after that must hit.
  const auto stats = server.engine().cache().stats();
  EXPECT_GE(stats.hits,
            static_cast<std::uint64_t>(kClients * (kRequestsEach - 1)));
}

TEST(NetServer, ClientDisconnectingMidStreamOnlyKillsItsConnection) {
  ServerHarness server;

  {
    // This client fires several requests and vanishes without reading a
    // byte: the server's writes hit a dead socket (EPIPE/RST). If
    // SIGPIPE were not ignored this would kill the whole test binary.
    TestClient rude(server.port());
    ASSERT_TRUE(rude.connected());
    for (int i = 0; i < 5; ++i)
      rude.send_text("{\"algo\":\"construct\",\"n\":32}\n");
    rude.close();
  }

  // The server keeps serving other clients.
  eng::Engine reference_engine;
  const std::string expected = stdio_reference(reference_engine, kWorkloadA);
  TestClient polite(server.port());
  ASSERT_TRUE(polite.connected());
  polite.send_text(kWorkloadA);
  polite.finish_sending();
  EXPECT_EQ(polite.read_to_eof(), expected);

  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
}

TEST(NetServer, RefusesClientsBeyondMaxWithAnInBandError) {
  eng::ServeConfig config;
  config.max_clients = 1;
  ServerHarness server(config);

  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  // Round-trip once so the connection is registered server-side.
  first.send_text("{\"algo\":\"construct\",\"n\":9}\n");
  EXPECT_FALSE(first.read_line().empty());

  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  const std::string line = second.read_line();
  EXPECT_NE(line.find("server busy"), std::string::npos) << line;
  EXPECT_TRUE(second.read_to_eof().empty());  // then the server hangs up

  // The first client is unaffected.
  first.send_text("{\"op\":\"stats\"}\n");
  EXPECT_NE(first.read_line().find("\"op\":\"stats\",\"ok\":true"),
            std::string::npos);
}

TEST(NetServer, ShutdownDrainsBlockedReadersAndReturnsZero) {
  ServerHarness server;
  TestClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  // One round trip so the connection is registered, then shut down
  // while the connection's reader is blocked in poll waiting for more.
  idle.send_text("{\"algo\":\"construct\",\"n\":9}\n");
  EXPECT_FALSE(idle.read_line().empty());
  server.stop();
  EXPECT_EQ(server.exit_code(), 0);
  // The blocked reader was woken and the connection closed cleanly.
  EXPECT_TRUE(idle.read_to_eof().empty());
}
