#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/canonical.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/cache.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/engine/registry.hpp"
#include "ccov/engine/request.hpp"
#include "ccov/extensions/lambda_cover.hpp"

namespace eng = ccov::engine;
namespace cov = ccov::covering;

namespace {

eng::CoverRequest make_req(const std::string& algo, std::uint32_t n) {
  eng::CoverRequest req;
  req.algorithm = algo;
  req.n = n;
  return req;
}

std::string rows_of(const std::vector<eng::CoverResponse>& responses) {
  std::string out;
  for (const auto& r : responses) out += eng::deterministic_row(r) + "\n";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, ResolvesAllBuiltinsByName) {
  auto& reg = eng::AlgorithmRegistry::global();
  const std::vector<std::string> expected = {
      "construct", "solve",  "solve-parallel", "greedy",
      "emz",       "c4",     "triple",         "lambda"};
  EXPECT_GE(reg.size(), 6u);
  for (const auto& name : expected) {
    const eng::Algorithm* algo = reg.find(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name, name);
    EXPECT_FALSE(algo->description.empty()) << name;
  }
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, UnknownNameIsNull) {
  EXPECT_EQ(eng::AlgorithmRegistry::global().find("frobnicate"), nullptr);
}

TEST(Registry, RejectsDuplicateAndAnonymous) {
  eng::AlgorithmRegistry reg;
  eng::Algorithm a{"x", "test", true,
                   [](const eng::CoverRequest&) {
                     return eng::AlgorithmOutcome{};
                   },
                   nullptr};
  reg.add(a);
  EXPECT_THROW(reg.add(a), std::invalid_argument);
  a.name.clear();
  EXPECT_THROW(reg.add(a), std::invalid_argument);
  a.name = "y";
  a.run = nullptr;
  EXPECT_THROW(reg.add(a), std::invalid_argument);
}

TEST(Registry, EveryBuiltinProducesACoverFor9) {
  eng::Engine engine({.use_cache = false});
  for (const auto& name : engine.registry().names()) {
    const auto resp = engine.run(make_req(name, 9));
    EXPECT_TRUE(resp.ok) << name << ": " << resp.error;
    EXPECT_TRUE(resp.found) << name;
    EXPECT_GT(resp.cover.size(), 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------------

TEST(Engine, UnknownAlgorithmIsAnErrorResponse) {
  eng::Engine engine;
  const auto resp = engine.run(make_req("no-such-algo", 9));
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown algorithm"), std::string::npos);
}

TEST(Engine, TooSmallNIsAnErrorResponse) {
  eng::Engine engine;
  EXPECT_FALSE(engine.run(make_req("construct", 2)).ok);
}

TEST(Engine, UnsupportedRequestShapeIsAnErrorResponse) {
  eng::Engine engine;
  auto req = make_req("construct", 9);
  req.lambda = 3;  // construct only understands plain K_n
  const auto resp = engine.run(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.error.empty());
}

TEST(Engine, LambdaAlgorithmValidatesAgainstLambdaDemand) {
  eng::Engine engine;
  auto req = make_req("lambda", 7);
  req.lambda = 2;
  const auto resp = engine.run(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.validated);
  EXPECT_TRUE(resp.valid);
  EXPECT_TRUE(ccov::extensions::validate_lambda_cover(resp.cover, 2));
}

TEST(Engine, C4BaselineIsInvalidUnderDrcByDesign) {
  // Any 3 distinct ring vertices are circularly ordered, so the classical
  // triangle covering is always DRC-feasible; the classical C4 covering
  // is the baseline that genuinely ignores the routing constraint.
  eng::Engine engine;
  const auto resp = engine.run(make_req("c4", 9));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.validated);
  EXPECT_FALSE(resp.valid);
}

// ---------------------------------------------------------------------------
// CoverCache
// ---------------------------------------------------------------------------

TEST(CoverCache, WarmSolveHitSkipsTheSearch) {
  eng::Engine engine;
  auto req = make_req("solve", 8);
  req.budget = cov::rho(8);
  const auto cold = engine.run(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(cold.found);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.nodes, 0u);

  const auto warm = engine.run(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.nodes, 0u);  // nothing was re-searched
  EXPECT_TRUE(cov::covers_isomorphic(cold.cover, warm.cover));

  const auto stats = engine.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CoverCache, CountsHitsAndMisses) {
  eng::CoverCache cache(8);
  eng::CoverRequest req = make_req("construct", 9);
  EXPECT_FALSE(cache.lookup(req).has_value());
  eng::CoverResponse resp;
  resp.ok = true;
  resp.found = true;
  resp.algorithm = "construct";
  resp.n = 9;
  resp.cover = cov::build_optimal_cover(9);
  cache.insert(req, resp);
  EXPECT_TRUE(cache.lookup(req).has_value());
  EXPECT_FALSE(cache.lookup(make_req("construct", 11)).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CoverCache, EvictsLeastRecentlyUsedAtCapacity) {
  eng::CoverCache cache(2);
  auto mk_resp = [](std::uint32_t n) {
    eng::CoverResponse resp;
    resp.ok = true;
    resp.found = true;
    resp.n = n;
    resp.cover = cov::build_optimal_cover(n);
    return resp;
  };
  cache.insert(make_req("construct", 5), mk_resp(5));
  cache.insert(make_req("construct", 7), mk_resp(7));
  // Touch n=5 so n=7 is the LRU entry, then overflow.
  EXPECT_TRUE(cache.lookup(make_req("construct", 5)).has_value());
  cache.insert(make_req("construct", 9), mk_resp(9));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(make_req("construct", 5)).has_value());
  EXPECT_TRUE(cache.lookup(make_req("construct", 9)).has_value());
  EXPECT_FALSE(cache.lookup(make_req("construct", 7)).has_value());
}

TEST(CoverCache, FailedResponsesAreNotCached) {
  eng::CoverCache cache(4);
  eng::CoverResponse bad;
  bad.ok = false;
  cache.insert(make_req("construct", 9), bad);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CoverCache, DihedrallyEquivalentDemandsShareOneEntry) {
  // The same sparse demand, once as-is, once rotated by 2, once
  // reflected: all three canonicalize to one key.
  const std::uint32_t n = 9;
  const std::vector<ccov::graph::Edge> base = {{0, 3}, {1, 4}, {2, 7}};
  auto transformed = [&](bool reflect, std::uint32_t shift) {
    std::vector<ccov::graph::Edge> out;
    for (const auto& e : base) {
      auto map = [&](std::uint32_t v) {
        const std::uint32_t r = reflect ? (n - v) % n : v;
        return (r + shift) % n;
      };
      out.push_back({map(e.u), map(e.v)});
    }
    return out;
  };

  auto req_with = [&](std::vector<ccov::graph::Edge> demand) {
    auto req = make_req("greedy", n);
    req.demand = std::move(demand);
    return req;
  };

  const auto k0 = eng::canonical_request_key(req_with(base));
  const auto k1 = eng::canonical_request_key(req_with(transformed(false, 2)));
  const auto k2 = eng::canonical_request_key(req_with(transformed(true, 5)));
  EXPECT_EQ(k0.key, k1.key);
  EXPECT_EQ(k0.key, k2.key);

  eng::Engine engine;
  const auto cold = engine.run(req_with(base));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);

  const auto rotated = req_with(transformed(false, 2));
  const auto hit = engine.run(rotated);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(engine.cache().size(), 1u);
  // The cover handed back is in the *rotated request's* frame: it must
  // cover the rotated demand exactly.
  EXPECT_TRUE(cov::validate_cover_against(
                  hit.cover, eng::demand_graph(n, rotated.demand))
                  .ok);

  const auto reflected = req_with(transformed(true, 5));
  const auto hit2 = engine.run(reflected);
  ASSERT_TRUE(hit2.ok) << hit2.error;
  EXPECT_TRUE(hit2.cache_hit);
  EXPECT_TRUE(cov::validate_cover_against(
                  hit2.cover, eng::demand_graph(n, reflected.demand))
                  .ok);
  EXPECT_EQ(engine.cache().size(), 1u);
  EXPECT_EQ(engine.cache().stats().hits, 2u);
}

TEST(CoverCache, ApplyElementRoundTrips) {
  const auto cover = cov::build_optimal_cover(9);
  for (const bool reflect : {false, true}) {
    for (std::uint32_t shift = 0; shift < 9; ++shift) {
      const eng::DihedralElement g{reflect, shift};
      const auto there = eng::apply_element(cover, g);
      const auto back = eng::apply_inverse(there, g);
      EXPECT_TRUE(cov::covers_isomorphic(cover, there));
      // Round trip is the identity on the nose, not just up to D_n.
      EXPECT_EQ(cov::canonical_cover(back).cycles,
                cov::canonical_cover(cover).cycles);
      EXPECT_TRUE(cov::validate_cover(back).ok);
    }
  }
}

// ---------------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------------

TEST(BatchRunner, SweepIsByteIdenticalAcrossJobCounts) {
  // The acceptance sweep: construct for every n in 3..15 plus the exact
  // solver for the small sizes, once with 1 worker, once with 4. The
  // deterministic rows must match byte for byte.
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 3; n <= 15; ++n)
    requests.push_back(make_req("construct", n));
  for (std::uint32_t n = 3; n <= 9; ++n) {
    auto req = make_req("solve", n);
    req.budget = cov::rho(n);
    requests.push_back(req);
  }

  eng::Engine engine1;
  eng::BatchRunner serial(engine1, {.jobs = 1});
  const std::string rows1 = rows_of(serial.run(requests));

  eng::Engine engine4;
  eng::BatchRunner parallel(engine4, {.jobs = 4});
  const std::string rows4 = rows_of(parallel.run(requests));

  EXPECT_EQ(rows1, rows4);
  EXPECT_FALSE(rows1.empty());
}

TEST(BatchRunner, DuplicateRequestsStayByteIdenticalAcrossJobCounts) {
  // Serially the second duplicate hits the warm cache (nodes = 0); the
  // parallel path must not let both copies race past the cache and
  // report different node counts.
  std::vector<eng::CoverRequest> requests;
  for (int copy = 0; copy < 2; ++copy) {
    for (std::uint32_t n = 7; n <= 9; ++n) {
      auto req = make_req("solve", n);
      req.budget = cov::rho(n);
      requests.push_back(req);
    }
  }
  eng::Engine engine1;
  eng::BatchRunner serial(engine1, {.jobs = 1});
  const std::string rows1 = rows_of(serial.run(requests));

  eng::Engine engine4;
  eng::BatchRunner parallel(engine4, {.jobs = 4});
  const std::string rows4 = rows_of(parallel.run(requests));
  EXPECT_EQ(rows1, rows4);
}

TEST(BatchRunner, ResultsAreIndexAlignedWithRequests) {
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 15; n >= 3; --n)  // deliberately decreasing
    requests.push_back(make_req("greedy", n));
  eng::Engine engine;
  eng::BatchRunner runner(engine, {.jobs = 4});
  const auto responses = runner.run(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].n, requests[i].n) << i;
    EXPECT_EQ(responses[i].algorithm, "greedy") << i;
    EXPECT_TRUE(responses[i].ok) << responses[i].error;
  }
}

TEST(BatchRunner, BadRequestsDoNotPoisonTheBatch) {
  std::vector<eng::CoverRequest> requests = {
      make_req("construct", 9), make_req("no-such-algo", 9),
      make_req("construct", 2), make_req("construct", 11)};
  eng::Engine engine;
  eng::BatchRunner runner(engine, {.jobs = 2});
  const auto responses = runner.run(requests);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_FALSE(responses[2].ok);
  EXPECT_TRUE(responses[3].ok);
}

// ---------------------------------------------------------------------------
// Migrated bench tables: engine rows == bespoke-loop rows
// ---------------------------------------------------------------------------

TEST(MigratedTables, Theorem1RowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 3; n <= 21; n += 2)
    requests.push_back(make_req("construct", n));
  const auto responses = runner.run(requests);
  for (const auto& resp : responses) {
    const auto direct = cov::construct_odd_cover(resp.n);
    EXPECT_EQ(resp.cover.size(), direct.size()) << resp.n;
    EXPECT_EQ(cov::count_c3(resp.cover), cov::count_c3(direct)) << resp.n;
    EXPECT_EQ(cov::count_c4(resp.cover), cov::count_c4(direct)) << resp.n;
    EXPECT_EQ(resp.valid, cov::validate_cover(direct).ok) << resp.n;
  }
}

TEST(MigratedTables, Theorem2RowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 4; n <= 20; n += 2)
    requests.push_back(make_req("construct", n));
  const auto responses = runner.run(requests);
  for (const auto& resp : responses) {
    const auto direct = cov::construct_even_cover(resp.n);
    EXPECT_EQ(resp.cover.size(), direct.size()) << resp.n;
    EXPECT_EQ(cov::count_c3(resp.cover), cov::count_c3(direct)) << resp.n;
    EXPECT_EQ(cov::count_c4(resp.cover), cov::count_c4(direct)) << resp.n;
  }
}

TEST(MigratedTables, BaselineRowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  const std::vector<std::string> algos = {"construct", "greedy", "triple",
                                          "c4", "emz"};
  std::vector<eng::CoverRequest> requests;
  for (const auto& algo : algos) {
    auto req = make_req(algo, 11);
    req.validate = false;
    requests.push_back(req);
  }
  const auto responses = runner.run(requests);
  EXPECT_EQ(responses[0].cover.size(), cov::build_optimal_cover(11).size());
  EXPECT_EQ(responses[1].cover.size(), cov::greedy_cover(11).size());
  EXPECT_EQ(responses[2].cover.size(),
            ccov::baselines::greedy_triple_cover(11).size());
  EXPECT_EQ(responses[3].cover.size(),
            ccov::baselines::greedy_c4_cover(11).size());
  EXPECT_EQ(responses[4].cover.size(),
            ccov::baselines::emz_greedy_cover(11).size());
  EXPECT_EQ(ccov::baselines::emz_objective(responses[0].cover),
            ccov::baselines::emz_objective(cov::build_optimal_cover(11)));
}
