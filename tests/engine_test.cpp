#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/canonical.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/cache.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/engine/registry.hpp"
#include "ccov/engine/request.hpp"
#include "ccov/engine/serve.hpp"
#include "ccov/engine/store.hpp"
#include "ccov/extensions/lambda_cover.hpp"
#include "ccov/util/failpoint.hpp"
#include "ccov/util/prng.hpp"

namespace eng = ccov::engine;
namespace cov = ccov::covering;

namespace {

eng::CoverRequest make_req(const std::string& algo, std::uint32_t n) {
  eng::CoverRequest req;
  req.algorithm = algo;
  req.n = n;
  return req;
}

std::string rows_of(const std::vector<eng::CoverResponse>& responses) {
  std::string out;
  for (const auto& r : responses) out += eng::deterministic_row(r) + "\n";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, ResolvesAllBuiltinsByName) {
  auto& reg = eng::AlgorithmRegistry::global();
  const std::vector<std::string> expected = {
      "construct", "solve",  "solve-parallel", "greedy",
      "emz",       "c4",     "triple",         "lambda"};
  EXPECT_GE(reg.size(), 6u);
  for (const auto& name : expected) {
    const eng::Algorithm* algo = reg.find(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name, name);
    EXPECT_FALSE(algo->description.empty()) << name;
  }
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, UnknownNameIsNull) {
  EXPECT_EQ(eng::AlgorithmRegistry::global().find("frobnicate"), nullptr);
}

TEST(Registry, RejectsDuplicateAndAnonymous) {
  eng::AlgorithmRegistry reg;
  eng::Algorithm a{"x", "test", true,
                   [](const eng::CoverRequest&) {
                     return eng::AlgorithmOutcome{};
                   },
                   nullptr};
  reg.add(a);
  EXPECT_THROW(reg.add(a), std::invalid_argument);
  a.name.clear();
  EXPECT_THROW(reg.add(a), std::invalid_argument);
  a.name = "y";
  a.run = nullptr;
  EXPECT_THROW(reg.add(a), std::invalid_argument);
}

TEST(Registry, EveryBuiltinProducesACoverFor9) {
  eng::Engine engine({.use_cache = false});
  for (const auto& name : engine.registry().names()) {
    const auto resp = engine.run(make_req(name, 9));
    EXPECT_TRUE(resp.ok) << name << ": " << resp.error;
    EXPECT_TRUE(resp.found) << name;
    EXPECT_GT(resp.cover.size(), 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------------

TEST(Engine, UnknownAlgorithmIsAnErrorResponse) {
  eng::Engine engine;
  const auto resp = engine.run(make_req("no-such-algo", 9));
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown algorithm"), std::string::npos);
}

TEST(Engine, TooSmallNIsAnErrorResponse) {
  eng::Engine engine;
  EXPECT_FALSE(engine.run(make_req("construct", 2)).ok);
}

TEST(Engine, UnsupportedRequestShapeIsAnErrorResponse) {
  eng::Engine engine;
  auto req = make_req("construct", 9);
  req.lambda = 3;  // construct only understands plain K_n
  const auto resp = engine.run(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.error.empty());
}

TEST(Engine, LambdaAlgorithmValidatesAgainstLambdaDemand) {
  eng::Engine engine;
  auto req = make_req("lambda", 7);
  req.lambda = 2;
  const auto resp = engine.run(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.validated);
  EXPECT_TRUE(resp.valid);
  EXPECT_TRUE(ccov::extensions::validate_lambda_cover(resp.cover, 2));
}

TEST(Engine, C4BaselineIsInvalidUnderDrcByDesign) {
  // Any 3 distinct ring vertices are circularly ordered, so the classical
  // triangle covering is always DRC-feasible; the classical C4 covering
  // is the baseline that genuinely ignores the routing constraint.
  eng::Engine engine;
  const auto resp = engine.run(make_req("c4", 9));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.validated);
  EXPECT_FALSE(resp.valid);
}

// ---------------------------------------------------------------------------
// CoverCache
// ---------------------------------------------------------------------------

TEST(CoverCache, WarmSolveHitSkipsTheSearch) {
  eng::Engine engine;
  auto req = make_req("solve", 8);
  req.budget = cov::rho(8);
  const auto cold = engine.run(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(cold.found);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.nodes, 0u);

  const auto warm = engine.run(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.nodes, 0u);  // nothing was re-searched
  EXPECT_TRUE(cov::covers_isomorphic(cold.cover, warm.cover));

  const auto stats = engine.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CoverCache, CountsHitsAndMisses) {
  eng::CoverCache cache(8);
  eng::CoverRequest req = make_req("construct", 9);
  EXPECT_FALSE(cache.lookup(req).has_value());
  eng::CoverResponse resp;
  resp.ok = true;
  resp.found = true;
  resp.algorithm = "construct";
  resp.n = 9;
  resp.cover = cov::build_optimal_cover(9);
  cache.insert(req, resp);
  EXPECT_TRUE(cache.lookup(req).has_value());
  EXPECT_FALSE(cache.lookup(make_req("construct", 11)).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CoverCache, EvictsLeastRecentlyUsedAtCapacity) {
  // One shard: strict global LRU semantics (sharded caches only promise
  // per-shard LRU).
  eng::CoverCache cache(2, 1);
  auto mk_resp = [](std::uint32_t n) {
    eng::CoverResponse resp;
    resp.ok = true;
    resp.found = true;
    resp.n = n;
    resp.cover = cov::build_optimal_cover(n);
    return resp;
  };
  cache.insert(make_req("construct", 5), mk_resp(5));
  cache.insert(make_req("construct", 7), mk_resp(7));
  // Touch n=5 so n=7 is the LRU entry, then overflow.
  EXPECT_TRUE(cache.lookup(make_req("construct", 5)).has_value());
  cache.insert(make_req("construct", 9), mk_resp(9));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(make_req("construct", 5)).has_value());
  EXPECT_TRUE(cache.lookup(make_req("construct", 9)).has_value());
  EXPECT_FALSE(cache.lookup(make_req("construct", 7)).has_value());
}

TEST(CoverCache, FailedResponsesAreNotCached) {
  eng::CoverCache cache(4);
  eng::CoverResponse bad;
  bad.ok = false;
  cache.insert(make_req("construct", 9), bad);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CoverCache, DihedrallyEquivalentDemandsShareOneEntry) {
  // The same sparse demand, once as-is, once rotated by 2, once
  // reflected: all three canonicalize to one key.
  const std::uint32_t n = 9;
  const std::vector<ccov::graph::Edge> base = {{0, 3}, {1, 4}, {2, 7}};
  auto transformed = [&](bool reflect, std::uint32_t shift) {
    std::vector<ccov::graph::Edge> out;
    for (const auto& e : base) {
      auto map = [&](std::uint32_t v) {
        const std::uint32_t r = reflect ? (n - v) % n : v;
        return (r + shift) % n;
      };
      out.push_back({map(e.u), map(e.v)});
    }
    return out;
  };

  auto req_with = [&](std::vector<ccov::graph::Edge> demand) {
    auto req = make_req("greedy", n);
    req.demand = std::move(demand);
    return req;
  };

  const auto k0 = eng::canonical_request_key(req_with(base));
  const auto k1 = eng::canonical_request_key(req_with(transformed(false, 2)));
  const auto k2 = eng::canonical_request_key(req_with(transformed(true, 5)));
  EXPECT_EQ(k0.key, k1.key);
  EXPECT_EQ(k0.key, k2.key);

  eng::Engine engine;
  const auto cold = engine.run(req_with(base));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);

  const auto rotated = req_with(transformed(false, 2));
  const auto hit = engine.run(rotated);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(engine.cache().size(), 1u);
  // The cover handed back is in the *rotated request's* frame: it must
  // cover the rotated demand exactly.
  EXPECT_TRUE(cov::validate_cover_against(
                  hit.cover, eng::demand_graph(n, rotated.demand))
                  .ok);

  const auto reflected = req_with(transformed(true, 5));
  const auto hit2 = engine.run(reflected);
  ASSERT_TRUE(hit2.ok) << hit2.error;
  EXPECT_TRUE(hit2.cache_hit);
  EXPECT_TRUE(cov::validate_cover_against(
                  hit2.cover, eng::demand_graph(n, reflected.demand))
                  .ok);
  EXPECT_EQ(engine.cache().size(), 1u);
  EXPECT_EQ(engine.cache().stats().hits, 2u);
}

TEST(CoverCache, ShouldCachePolicy) {
  eng::CoverResponse resp;
  resp.ok = false;
  EXPECT_FALSE(eng::CoverCache::should_cache(resp));  // genuine error
  resp.ok = true;
  resp.found = true;
  EXPECT_TRUE(eng::CoverCache::should_cache(resp));  // positive result
  resp.found = false;
  resp.exhausted = true;
  EXPECT_TRUE(eng::CoverCache::should_cache(resp));  // infeasibility proof
  resp.exhausted = false;
  EXPECT_FALSE(eng::CoverCache::should_cache(resp));  // budget-starved
}

TEST(CoverCache, ExhaustedInfeasibilityProofsAreCached) {
  // One cycle below the optimum is infeasible; the exhausted search is a
  // deterministic proof and must be served from the cache on repeat.
  eng::Engine engine;
  auto req = make_req("solve", 7);
  req.budget = cov::rho(7) - 1;
  const auto cold = engine.run(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.found);
  EXPECT_TRUE(cold.exhausted);
  EXPECT_GT(cold.nodes, 0u);
  EXPECT_EQ(engine.cache().size(), 1u);

  const auto warm = engine.run(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.found);
  EXPECT_TRUE(warm.exhausted);
  EXPECT_EQ(warm.nodes, 0u);  // the proof was not re-searched
}

TEST(CoverCache, BudgetStarvedNegativesAreNotCached) {
  // A search cut off by the node budget (found = false, exhausted =
  // false) answers nothing and must be retried, not remembered.
  eng::Engine engine;
  auto req = make_req("solve", 9);
  req.budget = cov::rho(9);  // feasible, but far deeper than 3 nodes
  req.solver.max_nodes = 3;  // starve the search immediately
  const auto first = engine.run(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.found);
  EXPECT_FALSE(first.exhausted);
  EXPECT_EQ(engine.cache().size(), 0u);

  const auto second = engine.run(req);
  EXPECT_FALSE(second.cache_hit);  // re-searched, not served from cache
  EXPECT_GT(second.nodes, 0u);
}

TEST(CoverCache, ShardedHitsBackMapAcrossRandomDihedralElements) {
  // Property test for D_n correctness under sharding: random demand
  // graphs, random group elements — a hit through whichever shard the
  // canonical key lands in must return a cover in the *request's* frame
  // that covers the transformed demand.
  const std::uint32_t n = 11;
  ccov::util::Xoshiro256 rng(0xC0FFEEu);
  eng::Engine engine({.use_cache = true, .cache_capacity = 64,
                      .cache_shards = 8});
  ASSERT_EQ(engine.cache().shard_count(), 8u);

  int hits_checked = 0;
  for (int iter = 0; iter < 25; ++iter) {
    // Distinct normalized chords only: greedy covers each demand chord
    // once, so a duplicate (multiplicity-2) demand would fail validation
    // for reasons unrelated to the cache.
    std::vector<ccov::graph::Edge> base;
    const std::size_t chords = 3 + rng.below(4);
    while (base.size() < chords) {
      auto u = static_cast<std::uint32_t>(rng.below(n));
      auto v = static_cast<std::uint32_t>(rng.below(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const bool dup = std::any_of(
          base.begin(), base.end(),
          [&](const ccov::graph::Edge& e) { return e.u == u && e.v == v; });
      if (!dup) base.push_back({u, v});
    }
    auto req = make_req("greedy", n);
    req.demand = base;
    const auto cold = engine.run(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    ASSERT_TRUE(cold.found);

    const bool reflect = rng.below(2) != 0;
    const auto shift = static_cast<std::uint32_t>(rng.below(n));
    auto rotated = make_req("greedy", n);
    for (const auto& e : base) {
      auto map = [&](std::uint32_t v) {
        const std::uint32_t r = reflect ? (n - v) % n : v;
        return (r + shift) % n;
      };
      rotated.demand.push_back({map(e.u), map(e.v)});
    }
    const auto hit = engine.run(rotated);
    ASSERT_TRUE(hit.ok) << hit.error;
    ASSERT_TRUE(hit.cache_hit) << "D_n-equivalent request missed the cache";
    EXPECT_EQ(hit.nodes, 0u);
    EXPECT_TRUE(cov::validate_cover_against(
                    hit.cover, eng::demand_graph(n, rotated.demand))
                    .ok)
        << "hit cover does not back-map to the request frame";
    ++hits_checked;
  }
  EXPECT_EQ(hits_checked, 25);
  EXPECT_GE(engine.cache().stats().hits, 25u);
}

TEST(CoverCache, ConcurrentLookupsKeepAggregateStatsConsistent) {
  // Hammer all shards from several threads; the atomic aggregate
  // counters must account for every operation exactly once. Per-shard
  // capacity (128 / 8 = 16) covers all 16 keys even if the (platform-
  // dependent) hash piles every key onto one shard, so no insert can
  // evict and the arithmetic below is exact everywhere.
  eng::CoverCache cache(128, 8);
  std::vector<eng::CoverRequest> reqs;
  for (std::uint32_t n = 3; n <= 18; ++n) {
    eng::CoverRequest req = make_req("construct", n);
    eng::CoverResponse resp;
    resp.ok = true;
    resp.found = true;
    resp.n = n;
    resp.algorithm = "construct";
    resp.cover = cov::build_optimal_cover(n);
    cache.insert(req, resp);
    reqs.push_back(req);
  }
  ASSERT_EQ(cache.size(), 16u);
  const auto baseline = cache.stats();

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& req : reqs) EXPECT_TRUE(cache.lookup(req));
        EXPECT_FALSE(cache.lookup(make_req("construct", 99)));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits - baseline.hits, kThreads * kRounds * reqs.size());
  EXPECT_EQ(stats.misses - baseline.misses,
            static_cast<std::uint64_t>(kThreads * kRounds));
}

TEST(CoverCache, ApplyElementRoundTrips) {
  const auto cover = cov::build_optimal_cover(9);
  for (const bool reflect : {false, true}) {
    for (std::uint32_t shift = 0; shift < 9; ++shift) {
      const eng::DihedralElement g{reflect, shift};
      const auto there = eng::apply_element(cover, g);
      const auto back = eng::apply_inverse(there, g);
      EXPECT_TRUE(cov::covers_isomorphic(cover, there));
      // Round trip is the identity on the nose, not just up to D_n.
      EXPECT_EQ(cov::canonical_cover(back).cycles,
                cov::canonical_cover(cover).cycles);
      EXPECT_TRUE(cov::validate_cover(back).ok);
    }
  }
}

// ---------------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------------

TEST(BatchRunner, SweepIsByteIdenticalAcrossJobCounts) {
  // The acceptance sweep: construct for every n in 3..15 plus the exact
  // solver for the small sizes, with 1 worker, 4 workers and hardware
  // concurrency (jobs = 0). The deterministic rows must match byte for
  // byte.
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 3; n <= 15; ++n)
    requests.push_back(make_req("construct", n));
  for (std::uint32_t n = 3; n <= 9; ++n) {
    auto req = make_req("solve", n);
    req.budget = cov::rho(n);
    requests.push_back(req);
  }

  eng::Engine engine1;
  eng::BatchRunner serial(engine1, {.jobs = 1});
  const std::string rows1 = rows_of(serial.run(requests));

  eng::Engine engine4;
  eng::BatchRunner parallel(engine4, {.jobs = 4});
  const std::string rows4 = rows_of(parallel.run(requests));

  eng::Engine engine_hw;
  eng::BatchRunner hw(engine_hw, {.jobs = 0});
  const std::string rows_hw = rows_of(hw.run(requests));

  EXPECT_EQ(rows1, rows4);
  EXPECT_EQ(rows1, rows_hw);
  EXPECT_FALSE(rows1.empty());
}

TEST(BatchRunner, ReusesTheEngineSharedPoolAcrossRuns) {
  // run() must not construct a pool per call: the engine's shared pool
  // is created once and every batch fans out over it.
  eng::Engine engine;
  ccov::util::ThreadPool* pool = &engine.pool();
  EXPECT_EQ(pool, &engine.pool());

  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 3; n <= 12; ++n)
    requests.push_back(make_req("construct", n));
  eng::BatchRunner runner(engine, {.jobs = 4});
  for (int round = 0; round < 3; ++round) {
    const auto responses = runner.run(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (const auto& resp : responses) EXPECT_TRUE(resp.ok) << resp.error;
  }
  EXPECT_EQ(pool, &engine.pool());
}

TEST(BatchRunner, ConcurrentBatchesOnOneEngineStayIsolated) {
  // Two batches racing on one engine (one shared pool): each caller's
  // results must be index-aligned with its own requests — the TaskGroup
  // tokens keep the batches from waiting on (or failing for) each other.
  eng::Engine engine;
  auto worker = [&engine](const std::string& algo, std::uint32_t lo,
                          std::uint32_t hi) {
    std::vector<eng::CoverRequest> requests;
    for (std::uint32_t n = lo; n <= hi; ++n) {
      eng::CoverRequest req;
      req.algorithm = algo;
      req.n = n;
      requests.push_back(req);
    }
    eng::BatchRunner runner(engine, {.jobs = 4});
    const auto responses = runner.run(requests);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(responses[i].n, requests[i].n);
      EXPECT_EQ(responses[i].algorithm, algo);
      EXPECT_TRUE(responses[i].ok) << responses[i].error;
    }
  };
  std::thread a(worker, "construct", 3u, 24u);
  std::thread b(worker, "greedy", 3u, 24u);
  a.join();
  b.join();
}

TEST(BatchRunner, DuplicateRequestsStayByteIdenticalAcrossJobCounts) {
  // Serially the second duplicate hits the warm cache (nodes = 0); the
  // parallel path must not let both copies race past the cache and
  // report different node counts.
  std::vector<eng::CoverRequest> requests;
  for (int copy = 0; copy < 2; ++copy) {
    for (std::uint32_t n = 7; n <= 9; ++n) {
      auto req = make_req("solve", n);
      req.budget = cov::rho(n);
      requests.push_back(req);
    }
  }
  eng::Engine engine1;
  eng::BatchRunner serial(engine1, {.jobs = 1});
  const std::string rows1 = rows_of(serial.run(requests));

  eng::Engine engine4;
  eng::BatchRunner parallel(engine4, {.jobs = 4});
  const std::string rows4 = rows_of(parallel.run(requests));
  EXPECT_EQ(rows1, rows4);
}

TEST(BatchRunner, ResultsAreIndexAlignedWithRequests) {
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 15; n >= 3; --n)  // deliberately decreasing
    requests.push_back(make_req("greedy", n));
  eng::Engine engine;
  eng::BatchRunner runner(engine, {.jobs = 4});
  const auto responses = runner.run(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].n, requests[i].n) << i;
    EXPECT_EQ(responses[i].algorithm, "greedy") << i;
    EXPECT_TRUE(responses[i].ok) << responses[i].error;
  }
}

TEST(BatchRunner, BadRequestsDoNotPoisonTheBatch) {
  std::vector<eng::CoverRequest> requests = {
      make_req("construct", 9), make_req("no-such-algo", 9),
      make_req("construct", 2), make_req("construct", 11)};
  eng::Engine engine;
  eng::BatchRunner runner(engine, {.jobs = 2});
  const auto responses = runner.run(requests);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_FALSE(responses[2].ok);
  EXPECT_TRUE(responses[3].ok);
}

// ---------------------------------------------------------------------------
// Migrated bench tables: engine rows == bespoke-loop rows
// ---------------------------------------------------------------------------

TEST(MigratedTables, Theorem1RowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 3; n <= 21; n += 2)
    requests.push_back(make_req("construct", n));
  const auto responses = runner.run(requests);
  for (const auto& resp : responses) {
    const auto direct = cov::construct_odd_cover(resp.n);
    EXPECT_EQ(resp.cover.size(), direct.size()) << resp.n;
    EXPECT_EQ(cov::count_c3(resp.cover), cov::count_c3(direct)) << resp.n;
    EXPECT_EQ(cov::count_c4(resp.cover), cov::count_c4(direct)) << resp.n;
    EXPECT_EQ(resp.valid, cov::validate_cover(direct).ok) << resp.n;
  }
}

TEST(MigratedTables, Theorem2RowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 4; n <= 20; n += 2)
    requests.push_back(make_req("construct", n));
  const auto responses = runner.run(requests);
  for (const auto& resp : responses) {
    const auto direct = cov::construct_even_cover(resp.n);
    EXPECT_EQ(resp.cover.size(), direct.size()) << resp.n;
    EXPECT_EQ(cov::count_c3(resp.cover), cov::count_c3(direct)) << resp.n;
    EXPECT_EQ(cov::count_c4(resp.cover), cov::count_c4(direct)) << resp.n;
  }
}

TEST(MigratedTables, BaselineRowsMatchDirectCalls) {
  eng::Engine engine;
  eng::BatchRunner runner(engine);
  const std::vector<std::string> algos = {"construct", "greedy", "triple",
                                          "c4", "emz"};
  std::vector<eng::CoverRequest> requests;
  for (const auto& algo : algos) {
    auto req = make_req(algo, 11);
    req.validate = false;
    requests.push_back(req);
  }
  const auto responses = runner.run(requests);
  EXPECT_EQ(responses[0].cover.size(), cov::build_optimal_cover(11).size());
  EXPECT_EQ(responses[1].cover.size(), cov::greedy_cover(11).size());
  EXPECT_EQ(responses[2].cover.size(),
            ccov::baselines::greedy_triple_cover(11).size());
  EXPECT_EQ(responses[3].cover.size(),
            ccov::baselines::greedy_c4_cover(11).size());
  EXPECT_EQ(responses[4].cover.size(),
            ccov::baselines::emz_greedy_cover(11).size());
  EXPECT_EQ(ccov::baselines::emz_objective(responses[0].cover),
            ccov::baselines::emz_objective(cov::build_optimal_cover(11)));
}

// ---------------------------------------------------------------------------
// Snapshot persistence (store.hpp)
// ---------------------------------------------------------------------------

namespace {

/// A mixed workload: constructions, a positive exact search, a cached
/// infeasibility proof and a demand-graph greedy cover.
std::vector<eng::CoverRequest> snapshot_workload() {
  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 5; n <= 12; ++n)
    requests.push_back(make_req("construct", n));
  auto solve = make_req("solve", 8);
  solve.budget = cov::rho(8);
  requests.push_back(solve);
  auto infeasible = make_req("solve", 7);
  infeasible.budget = cov::rho(7) - 1;
  requests.push_back(infeasible);
  auto greedy = make_req("greedy", 9);
  greedy.demand = {{0, 3}, {1, 4}, {2, 7}};
  requests.push_back(greedy);
  return requests;
}

}  // namespace

TEST(Snapshot, SaveLoadSaveIsByteStable) {
  eng::Engine engine;
  for (const auto& req : snapshot_workload())
    ASSERT_TRUE(engine.run(req).ok);
  ASSERT_GT(engine.cache().size(), 0u);

  std::ostringstream first;
  eng::save_snapshot(first, engine.cache());

  eng::CoverCache loaded(256);
  std::istringstream in(first.str());
  EXPECT_EQ(eng::load_snapshot(in, loaded), engine.cache().size());
  EXPECT_EQ(loaded.size(), engine.cache().size());

  std::ostringstream second;
  eng::save_snapshot(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Snapshot, WarmStartedEngineServesByteIdenticalResponses) {
  const auto requests = snapshot_workload();
  eng::Engine cold;
  for (const auto& req : requests) ASSERT_TRUE(cold.run(req).ok);
  // Warm rows from the engine that did the work: every repeat is a hit.
  std::vector<eng::CoverResponse> warm_direct;
  for (const auto& req : requests) warm_direct.push_back(cold.run(req));

  std::ostringstream snap;
  eng::save_snapshot(snap, cold.cache());
  eng::Engine restored;
  std::istringstream in(snap.str());
  eng::load_snapshot(in, restored.cache());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto resp = restored.run(requests[i]);
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.cache_hit) << i;
    EXPECT_EQ(resp.nodes, 0u) << i;
    EXPECT_EQ(eng::deterministic_row(resp),
              eng::deterministic_row(warm_direct[i]))
        << i;
  }
}

TEST(Snapshot, RejectsCorruptStreams) {
  eng::Engine engine;
  ASSERT_TRUE(engine.run(make_req("construct", 9)).ok);
  ASSERT_TRUE(engine.run(make_req("construct", 11)).ok);
  std::ostringstream snap;
  eng::save_snapshot(snap, engine.cache());
  const std::string bytes = snap.str();

  eng::CoverCache cache(16);
  {
    std::istringstream bad("definitely not a snapshot");
    EXPECT_THROW(eng::load_snapshot(bad, cache), std::runtime_error);
  }
  {
    // Truncated inside the second of two entries: the first, fully
    // decodable entry must NOT leak into the destination cache.
    std::istringstream truncated(bytes.substr(0, bytes.size() - 7));
    EXPECT_THROW(eng::load_snapshot(truncated, cache), std::runtime_error);
  }
  {
    std::string future = bytes;
    future[8] = static_cast<char>(0xfe);  // version field
    std::istringstream unknown(future);
    EXPECT_THROW(eng::load_snapshot(unknown, cache), std::runtime_error);
  }
  {
    // An absurd cycle count must be rejected before any allocation
    // sized by it (clean runtime_error, not bad_alloc): overwrite the
    // cover's cycle-count field of the first entry with 0xFFFFFFFF.
    // Layout after the 20-byte header: key(string), flags u8,
    // algorithm(string), error(string), n u32, nodes u64, cover.n u32,
    // cycles u32.
    std::string huge = bytes;
    std::size_t off = 8 + 4 + 8;                     // magic+version+count
    auto u32_at = [&](std::size_t pos) {
      return static_cast<std::uint32_t>(
                 static_cast<unsigned char>(huge[pos])) |
             static_cast<std::uint32_t>(
                 static_cast<unsigned char>(huge[pos + 1]))
                 << 8 |
             static_cast<std::uint32_t>(
                 static_cast<unsigned char>(huge[pos + 2]))
                 << 16 |
             static_cast<std::uint32_t>(
                 static_cast<unsigned char>(huge[pos + 3]))
                 << 24;
    };
    off += 4 + u32_at(off);  // key
    off += 1;                // flags
    off += 4 + u32_at(off);  // algorithm
    off += 4 + u32_at(off);  // error
    off += 4 + 8 + 4;        // n, nodes, cover.n
    huge[off] = huge[off + 1] = huge[off + 2] = huge[off + 3] =
        static_cast<char>(0xff);
    std::istringstream absurd(huge);
    EXPECT_THROW(eng::load_snapshot(absurd, cache), std::runtime_error);
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Snapshot, RejectsImplausibleStringLengths) {
  // Fuzzer-found (fuzz_snapshot, pinned as
  // tests/fuzz_corpus/snapshot/crash-huge-string): a 24-byte stream
  // declaring a 4 GiB key sized a 4 GiB std::string before a single
  // payload byte was read. The loader must reject the length up front
  // with a clean runtime_error — never attempt the allocation.
  std::string bytes;
  bytes += std::string(eng::kSnapshotMagic, sizeof eng::kSnapshotMagic);
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes += static_cast<char>((v >> (8 * i)) & 0xff);
  };
  put_u32(eng::kSnapshotVersion);
  put_u32(1);  // entry count (u64, little-endian: low word then
  put_u32(0);  // high word)
  put_u32(0xFFFFFFFFu);  // key length: 4 GiB on a 24-byte stream
  eng::CoverCache cache(4);
  std::istringstream is(bytes);
  EXPECT_THROW(eng::load_snapshot(is, cache), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
}

namespace {

/// RAII guard arming one failpoint for the scope of a test block.
class FailPointGuard {
 public:
  FailPointGuard(const std::string& name, const std::string& spec)
      : name_(name) {
    std::string err;
    EXPECT_TRUE(ccov::util::failpoint::set(name_, spec, &err)) << err;
  }
  ~FailPointGuard() { ccov::util::failpoint::clear(name_); }

 private:
  std::string name_;
};

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

TEST(Snapshot, InterruptedSaveNeverCorruptsThePreviousSnapshot) {
  if (!ccov::util::failpoint::compiled())
    GTEST_SKIP() << "binary built without CCOV_FAILPOINTS=ON";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(testing::TempDir()) / "ccov_atomic_save_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "store.bin").string();

  // A good snapshot with one entry.
  eng::Engine engine;
  ASSERT_TRUE(engine.run(make_req("construct", 9)).ok);
  eng::save_snapshot_file(path, engine.cache());
  const std::string good_bytes = read_file_bytes(path);
  ASSERT_FALSE(good_bytes.empty());

  // A bigger store whose save dies at each stage of the atomic dance in
  // turn: open refused, write failed (ENOSPC), fsync failed (EIO),
  // rename failed — the last one firing *after* the temp file was fully
  // written. Whatever the stage, the target file must be untouched and
  // no temp debris may remain.
  ASSERT_TRUE(engine.run(make_req("construct", 11)).ok);
  for (const char* point : {"snapshot_open", "snapshot_write",
                            "snapshot_fsync", "snapshot_rename"}) {
    FailPointGuard guard(point, "error");
    EXPECT_THROW(eng::save_snapshot_file(path, engine.cache()),
                 std::runtime_error)
        << point;
    EXPECT_EQ(ccov::util::failpoint::hits(point), 1u);
    // The old snapshot survived byte for byte and still loads...
    EXPECT_EQ(read_file_bytes(path), good_bytes) << point;
    eng::CoverCache check(256);
    EXPECT_EQ(eng::load_snapshot_file(path, check), 1u) << point;
    // ...and the dead save's temp file was cleaned up.
    for (const auto& entry : fs::directory_iterator(dir))
      EXPECT_EQ(entry.path().string(), path)
          << "unexpected leftover: " << entry.path();
  }

  // With the fault gone, the same save completes and replaces the file.
  eng::save_snapshot_file(path, engine.cache());
  eng::CoverCache merged(256);
  EXPECT_EQ(eng::load_snapshot_file(path, merged), 2u);
  fs::remove_all(dir);
}

TEST(Snapshot, SaveToUnwritableDirectoryLeavesNoTrace) {
  namespace fs = std::filesystem;
  const std::string path = (fs::path(testing::TempDir()) /
                            "ccov_no_such_dir" / "deeper" / "store.bin")
                               .string();
  eng::Engine engine;
  ASSERT_TRUE(engine.run(make_req("construct", 9)).ok);
  EXPECT_THROW(eng::save_snapshot_file(path, engine.cache()),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// Serve protocol (serve.hpp)
// ---------------------------------------------------------------------------

TEST(Serve, ParsesComputeRequestsAndControlVerbs) {
  eng::ServeCommand cmd;
  std::string error;
  ASSERT_TRUE(eng::parse_serve_line(
      R"({"algo":"solve","n":8,"budget":10,"lambda":2,"validate":false,)"
      R"("max_nodes":1000,"demand":[[0,3],[1,4]]})",
      &cmd, &error))
      << error;
  EXPECT_TRUE(cmd.is_request());
  EXPECT_EQ(cmd.req.algorithm, "solve");
  EXPECT_EQ(cmd.req.n, 8u);
  EXPECT_EQ(cmd.req.budget, 10u);
  EXPECT_EQ(cmd.req.lambda, 2u);
  EXPECT_FALSE(cmd.req.validate);
  EXPECT_EQ(cmd.req.solver.max_nodes, 1000u);
  ASSERT_EQ(cmd.req.demand.size(), 2u);
  EXPECT_EQ(cmd.req.demand[1].u, 1u);
  EXPECT_EQ(cmd.req.demand[1].v, 4u);

  ASSERT_TRUE(eng::parse_serve_line(R"({"op":"stats"})", &cmd, &error))
      << error;
  ASSERT_FALSE(cmd.is_request());
  EXPECT_EQ(cmd.verb->name, "stats");
  ASSERT_TRUE(eng::parse_serve_line(R"({"op":"save"})", &cmd, &error));
  ASSERT_FALSE(cmd.is_request());
  EXPECT_EQ(cmd.verb->name, "save");
  ASSERT_TRUE(eng::parse_serve_line(R"({"op":"clear"})", &cmd, &error));
  ASSERT_FALSE(cmd.is_request());
  EXPECT_EQ(cmd.verb->name, "clear");
  ASSERT_TRUE(eng::parse_serve_line(R"({"op":"metrics"})", &cmd, &error));
  ASSERT_FALSE(cmd.is_request());
  EXPECT_EQ(cmd.verb->name, "metrics");
}

TEST(Serve, RegistryListsBuiltinVerbsSorted) {
  const auto& reg = eng::ServeVerbRegistry::global();
  EXPECT_GE(reg.size(), 4u);
  const std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"clear", "metrics", "save", "stats"}) {
    const eng::ServeVerb* verb = reg.find(expected);
    ASSERT_NE(verb, nullptr) << expected;
    EXPECT_EQ(verb->name, expected);
    EXPECT_FALSE(verb->description.empty());
  }
  EXPECT_EQ(reg.find("no-such-verb"), nullptr);
}

TEST(Serve, RegistryRejectsDuplicatesAndMalformedVerbs) {
  eng::ServeVerbRegistry reg;
  reg.add({"ping", "test verb",
           [](const eng::ServeVerbContext&) { return std::string("{}"); }});
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(
      reg.add({"ping", "again",
               [](const eng::ServeVerbContext&) { return std::string(); }}),
      std::invalid_argument);
  EXPECT_THROW(
      reg.add({"", "empty name",
               [](const eng::ServeVerbContext&) { return std::string(); }}),
      std::invalid_argument);
  EXPECT_THROW(reg.add({"norun", "missing handler", nullptr}),
               std::invalid_argument);
}

TEST(Serve, RejectsMalformedLines) {
  eng::ServeCommand cmd;
  std::string error;
  EXPECT_FALSE(eng::parse_serve_line("", &cmd, &error));
  EXPECT_FALSE(eng::parse_serve_line("not json", &cmd, &error));
  EXPECT_FALSE(eng::parse_serve_line(R"({"algo":"solve"})", &cmd, &error));
  EXPECT_NE(error.find("missing required field 'n'"), std::string::npos);
  EXPECT_FALSE(eng::parse_serve_line(R"({"n":9})", &cmd, &error));
  EXPECT_FALSE(
      eng::parse_serve_line(R"({"algo":"solve","n":-3})", &cmd, &error));
  EXPECT_FALSE(eng::parse_serve_line(R"({"algo":"solve","n":9,"bogus":1})",
                                     &cmd, &error));
  EXPECT_NE(error.find("unknown field"), std::string::npos);
  EXPECT_FALSE(eng::parse_serve_line(R"({"op":"frobnicate"})", &cmd, &error));
  // An unknown op tells the client what would have worked.
  EXPECT_NE(error.find("unknown control verb 'frobnicate'"),
            std::string::npos)
      << error;
  for (const char* valid : {"clear", "metrics", "save", "stats"})
    EXPECT_NE(error.find(valid), std::string::npos) << error;
  EXPECT_FALSE(eng::parse_serve_line(R"({"op":"stats","extra":1})", &cmd,
                                     &error));
  EXPECT_NE(error.find("control verbs take no other fields"),
            std::string::npos)
      << error;
  EXPECT_FALSE(eng::parse_serve_line(R"([1,2,3])", &cmd, &error));
  EXPECT_FALSE(
      eng::parse_serve_line(R"({"algo":"solve","n":9} trailing)", &cmd,
                            &error));
}

namespace {

std::string run_serve(const std::string& input, std::size_t jobs,
                      std::size_t batch) {
  eng::Engine engine;
  eng::ServeConfig opts;
  opts.jobs = jobs;
  opts.batch = batch;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(eng::serve_loop(in, out, engine, opts), 0);
  return out.str();
}

}  // namespace

TEST(Serve, LoopIsIndexAlignedAndByteIdenticalAcrossJobs) {
  const std::string input =
      R"({"algo":"construct","n":9})"
      "\n"
      R"({"algo":"solve","n":7})"
      "\n"
      R"({"algo":"greedy","n":9,"demand":[[0,3],[1,4],[2,7]]})"
      "\n"
      R"({"algo":"greedy","n":9,"demand":[[2,5],[3,6],[0,4]]})"
      "\n"  // the same demand rotated by 2: must hit the cache
      R"({"algo":"construct","n":9})"
      "\n"  // duplicate: must hit the cache
      "this line is not json\n"
      R"({"op":"stats"})"
      "\n"
      R"({"algo":"no-such-algo","n":9})"
      "\n";

  const std::string serial = run_serve(input, 1, 1);
  const std::string batched = run_serve(input, 4, 8);
  const std::string hw = run_serve(input, 0, 4);
  EXPECT_EQ(serial, batched);
  EXPECT_EQ(serial, hw);

  // One response line per input line, ids in input order.
  std::istringstream lines(serial);
  std::string line;
  std::uint64_t expect_id = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"id\":" + std::to_string(expect_id) + ",";
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
    ++expect_id;
  }
  EXPECT_EQ(expect_id, 8u);

  // The D_n-equivalent greedy repeat and the duplicate construct were
  // served from the cache without any search.
  EXPECT_NE(serial.find("\"id\":3,\"ok\":true,\"algo\":\"greedy\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"nodes\":0,\"cache_hit\":true"), std::string::npos);
  // The malformed line answered in-band, the unknown algorithm too.
  EXPECT_NE(serial.find("\"id\":5,\"ok\":false,\"error\":\"parse:"),
            std::string::npos);
  EXPECT_NE(serial.find("\"id\":6,\"op\":\"stats\",\"ok\":true"),
            std::string::npos);
  EXPECT_NE(serial.find("\"id\":7,\"ok\":false"), std::string::npos);
}

TEST(Serve, SaveVerbPersistsAndWarmStartsTheNextLoop) {
  const std::string path =
      testing::TempDir() + "/ccov_serve_snapshot_test.bin";
  std::filesystem::remove(path);

  eng::Engine first;
  eng::ServeConfig opts;
  opts.jobs = 1;
  opts.batch = 1;
  opts.cache_file = path;
  {
    std::istringstream in(
        "{\"algo\":\"solve\",\"n\":8}\n{\"op\":\"save\"}\n");
    std::ostringstream out;
    ASSERT_EQ(eng::serve_loop(in, out, first, opts), 0);
    EXPECT_NE(out.str().find("\"op\":\"save\",\"ok\":true"),
              std::string::npos);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  eng::Engine second;
  ASSERT_GT(eng::load_snapshot_file(path, second.cache()), 0u);
  {
    std::istringstream in("{\"algo\":\"solve\",\"n\":8}\n");
    std::ostringstream out;
    ASSERT_EQ(eng::serve_loop(in, out, second, opts), 0);
    EXPECT_NE(out.str().find("\"nodes\":0,\"cache_hit\":true"),
              std::string::npos)
        << out.str();
  }
  std::filesystem::remove(path);
}

TEST(Serve, SaveVerbWithoutCacheFileIsAnInBandError) {
  const std::string out = run_serve("{\"op\":\"save\"}\n", 1, 1);
  EXPECT_NE(out.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(out.find("no --cache-file"), std::string::npos);
}

namespace {

/// A ServeStream that delivers input one byte per read — the worst-case
/// framing a slow network or interactive client can produce.
class TrickleStream final : public eng::ServeStream {
 public:
  explicit TrickleStream(std::string input) : input_(std::move(input)) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    if (pos_ >= input_.size() || n == 0) return 0;
    buf[0] = input_[pos_++];
    return 1;
  }

  bool write_all(const char* data, std::size_t n) override {
    output_.append(data, n);
    return true;
  }

  const std::string& output() const { return output_; }

 private:
  std::string input_;
  std::size_t pos_ = 0;
  std::string output_;
};

}  // namespace

TEST(Serve, SessionIsByteIdenticalUnderOneBytePacketization) {
  const std::string input =
      "{\"algo\":\"construct\",\"n\":9}\r\n"
      "{\"algo\":\"greedy\",\"n\":9,\"demand\":[[0,3],[1,4]]}\n"
      "{\"op\":\"stats\"}\n";
  const std::string expected = run_serve(input, 1, 1);
  TrickleStream trickle(input);
  eng::Engine engine;
  ASSERT_EQ(eng::serve_session(trickle, engine, {}), 0);
  EXPECT_EQ(trickle.output(), expected);
}

TEST(Serve, StripsTrailingCarriageReturns) {
  // CRLF clients (telnet, Windows pipes) must get the same bytes back as
  // LF clients — the '\r' is framing, not payload.
  const std::string lf =
      "{\"algo\":\"construct\",\"n\":9}\n{\"op\":\"stats\"}\n";
  const std::string crlf =
      "{\"algo\":\"construct\",\"n\":9}\r\n{\"op\":\"stats\"}\r\n";
  EXPECT_EQ(run_serve(lf, 1, 1), run_serve(crlf, 1, 1));
}

TEST(Serve, OversizedLinesAreRejectedInBandAndSkipped) {
  eng::Engine engine;
  eng::ServeConfig opts;
  opts.max_line_bytes = 64;
  const std::string big(1000, 'x');
  std::istringstream in(big + "\n{\"algo\":\"construct\",\"n\":9}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, opts), 0);
  // The oversized line consumed id 0 and was answered in-band; the next
  // line still parsed and ran as id 1.
  EXPECT_NE(out.str().find(
                "{\"id\":0,\"ok\":false,\"error\":\"parse: line exceeds"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("{\"id\":1,\"ok\":true,\"algo\":\"construct\""),
            std::string::npos)
      << out.str();
}

TEST(Serve, OversizedFinalLineWithoutNewlineIsStillReported) {
  eng::Engine engine;
  eng::ServeConfig opts;
  opts.max_line_bytes = 64;
  std::istringstream in(std::string(1000, 'y'));  // no trailing newline
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, opts), 0);
  EXPECT_NE(out.str().find("\"error\":\"parse: line exceeds"),
            std::string::npos)
      << out.str();
}

TEST(Serve, ClearVerbEmptiesTheStore) {
  eng::Engine engine;
  eng::ServeConfig opts;
  std::istringstream in(
      "{\"algo\":\"construct\",\"n\":9}\n{\"op\":\"clear\"}\n{\"op\":"
      "\"stats\"}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, opts), 0);
  EXPECT_NE(out.str().find("\"op\":\"clear\",\"ok\":true"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"size\":0,"), std::string::npos);
  EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(Serve, MetricsVerbReportsEveryRegisteredSeries) {
  eng::Engine engine;
  std::istringstream in(
      "{\"algo\":\"construct\",\"n\":9}\nnot json\n{\"op\":\"metrics\"}\n");
  std::ostringstream out;
  ASSERT_EQ(eng::serve_loop(in, out, engine, {}), 0);
  // The verb's line carries a JSON object with one key per series,
  // reflecting exactly the preceding lines of this session.
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"id\":2,\"op\":\"metrics\",\"ok\":true,"
                      "\"metrics\":{"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"ccov_cache_misses_total\":1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"ccov_serve_requests_total\":1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"ccov_serve_errors_total\":1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"ccov_serve_sessions_total\":1"), std::string::npos)
      << text;
}

TEST(Serve, SessionsFeedTheEngineMetricsRegistry) {
  eng::Engine engine;
  const std::string input =
      "{\"algo\":\"solve\",\"n\":7}\n"
      "{\"algo\":\"solve\",\"n\":7}\n"
      "garbage\n"
      "{\"op\":\"stats\"}\n";
  std::istringstream in1(input);
  std::ostringstream out1;
  ASSERT_EQ(eng::serve_loop(in1, out1, engine, {}), 0);
  std::istringstream in2(input);
  std::ostringstream out2;
  ASSERT_EQ(eng::serve_loop(in2, out2, engine, {}), 0);

  const eng::MetricsRegistry& metrics = engine.metrics();
  EXPECT_EQ(metrics.value("ccov_serve_sessions_total"), 2);
  EXPECT_EQ(metrics.value("ccov_serve_sessions_active"), 0);
  EXPECT_EQ(metrics.value("ccov_serve_requests_total"), 4);
  EXPECT_EQ(metrics.value("ccov_serve_verbs_total"), 2);
  EXPECT_EQ(metrics.value("ccov_serve_errors_total"), 2);
  // Every enqueued flush job completed, so the depth gauge reconciled
  // back to zero.
  EXPECT_EQ(metrics.value("ccov_serve_pipeline_depth"), 0);
  // n=7 solves actually searched; the second session hit the cache.
  EXPECT_GT(metrics.value("ccov_solver_nodes_total"), 0);
  EXPECT_EQ(metrics.value("ccov_cache_hits_total"), 3);
}
