// Experiment P1 — survivability: loop-back protection vs alternatives.
//
// The paper's motivation: dividing the network into independently
// protected sub-networks allows fast automatic protection (ref [9]),
// an intermediate between dedicated protection and global restoration.
// This harness averages single-link failures and reports the shape:
// loop-back recovers in parallel, bounded time, small per-sub-network
// reconfiguration; restoration is slower (sequential signalling);
// whole-ring 1+1 switches massively more capacity.

#include <iostream>

#include "ccov/covering/construct.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/network.hpp"

int main() {
  using namespace ccov;
  using namespace ccov::protection;
  ccov::util::Table t({"n", "scheme", "affected", "switches",
                       "extra hops", "max detour", "recovery ms"});
  for (std::uint32_t n : {8u, 12u, 16u, 20u, 24u}) {
    const auto inst = wdm::Instance::all_to_all(n);
    const wdm::WdmRingNetwork net(n, covering::build_optimal_cover(n), inst);

    const auto lb = average_over_failures(
        n, [&](LinkFailure f) { return simulate_loopback(net, f); });
    const auto rs = average_over_failures(
        n, [&](LinkFailure f) { return simulate_restoration(n, inst, f); });
    const auto wr = average_over_failures(
        n, [&](LinkFailure f) { return simulate_whole_ring(n, inst, f); });

    t.add(n, "loop-back", lb.affected_requests, lb.switching_actions,
          lb.reroute_extra_hops, lb.max_detour_hops, lb.recovery_time_ms);
    t.add(n, "restoration", rs.affected_requests, rs.switching_actions,
          rs.reroute_extra_hops, rs.max_detour_hops, rs.recovery_time_ms);
    t.add(n, "1+1 ring", wr.affected_requests, wr.switching_actions,
          wr.reroute_extra_hops, wr.max_detour_hops, wr.recovery_time_ms);
  }
  t.print(std::cout,
          "Single-link failure recovery (mean over all failures)");
  std::cout << "\nShape check: loop-back recovery time stays near-constant "
               "in n (parallel per-sub-network switching), restoration "
               "grows with the affected demand, and 1+1 whole-ring needs "
               "the most switched capacity.\n";
  return 0;
}
