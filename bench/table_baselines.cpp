// Experiment B2 — DRC-optimal vs baselines.
//
// Compares the paper's covering against: the greedy DRC covering, the
// classical triangle covering C(n,3,2) (refs [6,7], no routing
// constraint) and the C4 covering lower bound (ref [2]). Shape: the
// DRC-optimal needs ~n^2/8 cycles, the classical triple covering ~n^2/6 —
// mixing C3/C4 under the DRC *beats* triangle-only coverings by a factor
// approaching 4/3, while pure-C4 coverings sit in between. Every cover is
// produced through the engine's BatchRunner: four requests per n
// (construct / greedy / triple / c4) fanned across all cores, rows
// assembled in deterministic order.

#include <iostream>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov;
  namespace eng = ccov::engine;

  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n = 5; n <= 29; n += 2) sizes.push_back(n);

  // Requests in algorithm-major blocks: responses[b * sizes.size() + i]
  // answers algorithm b for sizes[i].
  const std::vector<std::string> algos = {"construct", "greedy", "triple",
                                          "c4"};
  std::vector<eng::CoverRequest> requests;
  for (const auto& algo : algos) {
    for (const auto n : sizes) {
      eng::CoverRequest req;
      req.algorithm = algo;
      req.n = n;
      req.validate = false;  // the table reports counts, not validity
      requests.push_back(req);
    }
  }

  eng::Engine engine;
  eng::BatchRunner runner(engine);
  const auto responses = runner.run(requests);
  const auto block = [&](std::size_t b, std::size_t i) -> const auto& {
    return responses[b * sizes.size() + i];
  };

  ccov::util::Table t({"n", "DRC optimal*", "DRC greedy", "C(n,3,2)",
                       "triple greedy", "C4 cover LB", "C4 greedy",
                       "EMZ obj (opt)", "EMZ obj (greedy)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto n = sizes[i];
    const auto& opt = block(0, i).cover;
    const auto& greedy = block(1, i).cover;
    t.add(n, opt.size(), greedy.size(),
          baselines::triple_covering_number(n), block(2, i).cover.size(),
          baselines::c4_covering_lower_bound(n), block(3, i).cover.size(),
          baselines::emz_objective(opt), baselines::emz_objective(greedy));
  }
  t.print(std::cout,
          "Covering K_n: DRC cycles vs classical triangle/C4 coverings");
  std::cout << "\n(*) exact optimum for odd n and even n <= 12; valid "
               "rho+floor((p-1)/2) construction otherwise.\n"
            << "Shape check: DRC optimal ~ n^2/8 < C4 bound ~ n^2/8..n^2/7 "
               "< C(n,3,2) ~ n^2/6; the DRC constraint costs nothing in "
               "count vs unconstrained C4 coverings for odd n while also "
               "being deployable on the ring.\n";
  return 0;
}
