// Experiment B2 — DRC-optimal vs baselines.
//
// Compares the paper's covering against: the greedy DRC covering, the
// classical triangle covering C(n,3,2) (refs [6,7], no routing
// constraint) and the C4 covering lower bound (ref [2]). Shape: the
// DRC-optimal needs ~n^2/8 cycles, the classical triple covering ~n^2/6 —
// mixing C3/C4 under the DRC *beats* triangle-only coverings by a factor
// approaching 4/3, while pure-C4 coverings sit in between.

#include <iostream>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov;
  ccov::util::Table t({"n", "DRC optimal*", "DRC greedy", "C(n,3,2)",
                       "triple greedy", "C4 cover LB", "C4 greedy",
                       "EMZ obj (opt)", "EMZ obj (greedy)"});
  for (std::uint32_t n = 5; n <= 29; n += 2) {
    const auto opt = covering::build_optimal_cover(n);
    const auto greedy = covering::greedy_cover(n);
    t.add(n, opt.size(), greedy.size(),
          baselines::triple_covering_number(n),
          baselines::greedy_triple_cover(n).size(),
          baselines::c4_covering_lower_bound(n),
          baselines::greedy_c4_cover(n).size(),
          baselines::emz_objective(opt), baselines::emz_objective(greedy));
  }
  t.print(std::cout,
          "Covering K_n: DRC cycles vs classical triangle/C4 coverings");
  std::cout << "\n(*) exact optimum for odd n and even n <= 12; valid "
               "rho+floor((p-1)/2) construction otherwise.\n"
            << "Shape check: DRC optimal ~ n^2/8 < C4 bound ~ n^2/8..n^2/7 "
               "< C(n,3,2) ~ n^2/6; the DRC constraint costs nothing in "
               "count vs unconstrained C4 coverings for odd n while also "
               "being deployable on the ring.\n";
  return 0;
}
