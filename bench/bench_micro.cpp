// Experiment S1 — microbenchmarks (google-benchmark).
//
// Throughput of the library's kernels: construction, validation, DRC
// checking, routing and protection simulation. Not a paper table; included
// so performance regressions in the combinatorial core are visible.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/drc.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/engine/cache.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/wdm/network.hpp"

using namespace ccov;

static void BM_ConstructOdd(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(covering::construct_odd_cover(n));
  state.SetComplexityN(n);
}
BENCHMARK(BM_ConstructOdd)->Arg(21)->Arg(51)->Arg(101)->Arg(201)->Complexity();

static void BM_ConstructEven(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(covering::construct_even_cover(n));
}
BENCHMARK(BM_ConstructEven)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

static void BM_ValidateCover(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto cover = covering::build_optimal_cover(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(covering::validate_cover(cover));
}
BENCHMARK(BM_ValidateCover)->Arg(21)->Arg(51)->Arg(101);

static void BM_DrcCheck(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const ring::Ring r(n);
  const covering::Cycle c{0, static_cast<covering::Vertex>(n / 3),
                          static_cast<covering::Vertex>(n / 2),
                          static_cast<covering::Vertex>(2 * n / 3)};
  for (auto _ : state)
    benchmark::DoNotOptimize(covering::satisfies_drc(r, c));
}
BENCHMARK(BM_DrcCheck)->Arg(16)->Arg(256)->Arg(4096);

static void BM_DrcRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const ring::Ring r(n);
  const covering::Cycle c{0, static_cast<covering::Vertex>(n / 4),
                          static_cast<covering::Vertex>(n / 2),
                          static_cast<covering::Vertex>(3 * n / 4)};
  for (auto _ : state) benchmark::DoNotOptimize(covering::drc_route(r, c));
}
BENCHMARK(BM_DrcRoute)->Arg(64)->Arg(1024);

static void BM_GreedyCover(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(covering::greedy_cover(n));
  // items/s = chords covered per second (the greedy's unit of work).
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * (n - 1) / 2);
}
BENCHMARK(BM_GreedyCover)->Arg(10)->Arg(20)->Arg(30)->Arg(64)->Arg(128);

// The exact-search kernels. items/s reports branch nodes per second, so a
// regression that re-introduces per-node allocation or rescans shows up as
// a nodes/s collapse even if the node counts stay pinned. These are
// registered dynamically in main(): the heavy n=12 searches (~40M nodes)
// join only when --quick is absent, giving the CI smoke a fast subset.

static void BM_SolveMinimum(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  // solve_minimum does not expose node counts; its dominant cost is the
  // final infeasibility proof one below the construction size, whose
  // deterministic node count we measure once per argument (the benchmark
  // function itself reruns while the framework calibrates iterations).
  static std::map<std::uint32_t, std::uint64_t> probe_cache;
  auto it = probe_cache.find(n);
  if (it == probe_cache.end()) {
    const std::uint64_t probe_budget =
        covering::build_optimal_cover(n).size() - 1;
    it = probe_cache
             .emplace(n, covering::solve_with_budget(n, probe_budget).nodes)
             .first;
  }
  const std::uint64_t probe_nodes = it->second;
  for (auto _ : state) {
    benchmark::DoNotOptimize(covering::solve_minimum(n));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probe_nodes));
}

static void BM_SolveBudgetParallel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  // Full infeasibility proof at one below rho(n).
  const std::uint64_t budget = covering::rho(n) - 1;
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto res = covering::solve_with_budget_parallel(n, budget);
    benchmark::DoNotOptimize(res);
    nodes += res.nodes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}

static void register_solver_benchmarks(bool quick) {
  auto* solve_min =
      benchmark::RegisterBenchmark("BM_SolveMinimum", BM_SolveMinimum)
          ->Unit(benchmark::kMillisecond)
          ->Arg(7)
          ->Arg(8);
  auto* solve_par = benchmark::RegisterBenchmark("BM_SolveBudgetParallel",
                                                 BM_SolveBudgetParallel)
                        ->Unit(benchmark::kMillisecond)
                        ->UseRealTime()  // work happens on pool threads
                        ->Arg(8);
  if (!quick) {
    solve_min->Arg(12);
    solve_par->Arg(12);
  }
}

// Concurrent cover-cache lookups: the serve loop's hot path. The range
// argument is the shard count, so the run compares a single global lock
// (shards = 1) against the lock-striped layout under the same thread
// count. items/s = lookups per second across all threads.
static void BM_CoverCacheLookup(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  static std::mutex init_mu;
  static std::map<std::size_t, std::unique_ptr<engine::CoverCache>> caches;
  static std::vector<engine::CanonicalKey> keys;
  {
    // All benchmark threads enter concurrently; whichever arrives first
    // builds the cache for this shard count.
    std::lock_guard lk(init_mu);
    if (!caches.count(shards)) {
      // Per-shard capacity (256 / 8 = 32) holds all 32 keys even under a
      // fully skewed hash, so every lookup is a hit on every platform.
      auto cache = std::make_unique<engine::CoverCache>(256, shards);
      if (keys.empty()) {
        for (std::uint32_t n = 3; n <= 34; ++n) {
          engine::CoverRequest req;
          req.algorithm = "construct";
          req.n = n;
          keys.push_back(engine::canonical_request_key(req));
        }
      }
      for (std::size_t k = 0; k < keys.size(); ++k) {
        engine::CoverResponse resp;
        resp.ok = true;
        resp.found = true;
        resp.algorithm = "construct";
        resp.cover = covering::build_optimal_cover(
            static_cast<std::uint32_t>(3 + k));
        resp.n = resp.cover.n;
        cache->insert(keys[k], resp);
      }
      caches[shards] = std::move(cache);
    }
  }
  engine::CoverCache& cache = *caches.at(shards);
  std::size_t i = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i % keys.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverCacheLookup)->Arg(1)->Arg(8)->Threads(1)->Threads(4);

static void BM_LoopbackSimulation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto inst = wdm::Instance::all_to_all(n);
  const wdm::WdmRingNetwork net(n, covering::build_optimal_cover(n), inst);
  std::uint32_t e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protection::simulate_loopback(net, {e++ % n}));
  }
}
BENCHMARK(BM_LoopbackSimulation)->Arg(15)->Arg(31)->Arg(63);

static void BM_RhoFormula(benchmark::State& state) {
  std::uint32_t n = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(covering::rho(n));
    n = n == 1'000'000 ? 3 : n + 1;
  }
}
BENCHMARK(BM_RhoFormula);

// Custom main so CI smoke runs can pass `--quick`: it caps measurement time
// far below the default so the full suite finishes in seconds. The value's
// spelling is version-dependent (see bench/CMakeLists.txt).
#ifndef CCOV_QUICK_MIN_TIME
#define CCOV_QUICK_MIN_TIME "0.001s"
#endif

int main(int argc, char** argv) {
  std::vector<char*> args;
  static char quick_min_time[] = "--benchmark_min_time=" CCOV_QUICK_MIN_TIME;
  bool quick = false;
  bool has_min_time = false;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      continue;
    }
    if (arg.starts_with("--benchmark_min_time")) has_min_time = true;
    args.push_back(argv[i]);
  }
  if (quick && !has_min_time) args.push_back(quick_min_time);
  register_solver_benchmarks(quick);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
