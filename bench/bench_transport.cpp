// bench_transport — cross-transport latency benchmark for the serve
// protocol. Drives N identical single-line requests, one at a time,
// through four in-process front ends:
//
//   stdio   serve_session over a pipe pair (the stdio transport's wire)
//   tcp     ServeServer on 127.0.0.1, one keep-alive connection
//   http    HttpServer, POST /v1/batch per request on one keep-alive
//           connection (chunked responses parsed to completion)
//   shm     ShmServer + ShmClient over the shared-memory rings
//
// and reports p50/p99/p999 round-trip latency plus serial throughput
// per transport as JSON (default BENCH_transport.json). Before timing
// anything it replays a mixed request script through stdio and shm and
// exits nonzero unless the responses are byte-identical — the bench
// doubles as the cross-transport equivalence check.
//
// Flags: --requests N   timed round trips per transport (default 4000)
//        --warmup N     untimed leading round trips (default 200)
//        --quick        CI sizing (400 requests, 50 warmup)
//        --out FILE     output path (default BENCH_transport.json)
//        --ring BYTES   shm ring capacity (default ServeConfig's)

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/http.hpp"
#include "ccov/engine/net.hpp"
#include "ccov/engine/serve.hpp"
#include "ccov/engine/shm.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Transport drivers: send one JSONL request line, return one response line.
// ---------------------------------------------------------------------------

/// A blocking line client over one fd pair (equal fds for a socket).
/// Reads are buffered so a round trip costs one read syscall in the
/// common case, mirroring what a real co-located client would do.
class FdLineClient {
 public:
  FdLineClient(int rd, int wr) : rd_(rd), wr_(wr) {}

  bool send(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t w = ::write(wr_, line.data() + off, line.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!fill()) return false;
    }
  }

  /// Consume exactly `n` bytes into *out (appended).
  bool recv_exact(std::size_t n, std::string* out) {
    while (buf_.size() < n)
      if (!fill()) return false;
    out->append(buf_, 0, n);
    buf_.erase(0, n);
    return true;
  }

 private:
  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::read(rd_, chunk, sizeof chunk);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(r));
      return true;
    }
  }

  int rd_;
  int wr_;
  std::string buf_;
};

/// ServeStream over two plain fds — the stdio transport's wire shape
/// (pipe in, pipe out) without dragging iostreams into the timing.
class PipeStream final : public ccov::engine::ServeStream {
 public:
  PipeStream(int rd, int wr) : rd_(rd), wr_(wr) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    for (;;) {
      const ssize_t r = ::read(rd_, buf, n);
      if (r < 0 && errno == EINTR) continue;
      return r < 0 ? -1 : static_cast<std::ptrdiff_t>(r);
    }
  }

  bool write_all(const char* data, std::size_t n) override {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(wr_, data + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

 private:
  int rd_;
  int wr_;
};

/// serve_session over a pipe pair on a background thread.
class StdioTransport {
 public:
  StdioTransport(ccov::engine::Engine& engine,
                 const ccov::engine::ServeConfig& config) {
    int req[2], resp[2];
    if (::pipe(req) != 0 || ::pipe(resp) != 0)
      throw std::runtime_error("pipe failed");
    req_wr_ = req[1];
    resp_rd_ = resp[0];
    server_ = std::thread([&engine, &config, rd = req[0], wr = resp[1]] {
      PipeStream io(rd, wr);
      ccov::engine::serve_session(io, engine, config);
      ::close(rd);
      ::close(wr);
    });
    client_ = std::make_unique<FdLineClient>(resp_rd_, req_wr_);
  }

  ~StdioTransport() {
    ::close(req_wr_);  // EOF ends the session
    server_.join();
    ::close(resp_rd_);
  }

  bool round_trip(const std::string& line, std::string* out) {
    return client_->send(line) && client_->recv_line(out);
  }

 private:
  int req_wr_ = -1;
  int resp_rd_ = -1;
  std::thread server_;
  std::unique_ptr<FdLineClient> client_;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("connect failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// ServeServer on an ephemeral loopback port, one keep-alive connection.
class TcpTransport {
 public:
  TcpTransport(ccov::engine::Engine& engine,
               const ccov::engine::ServeConfig& config)
      : server_(engine, config) {
    thread_ = std::thread([this] { server_.run(); });
    fd_ = connect_loopback(server_.port());
    client_ = std::make_unique<FdLineClient>(fd_, fd_);
  }

  ~TcpTransport() {
    ::close(fd_);
    server_.shutdown();
    thread_.join();
  }

  bool round_trip(const std::string& line, std::string* out) {
    return client_->send(line) && client_->recv_line(out);
  }

 private:
  ccov::engine::net::ServeServer server_;
  std::thread thread_;
  int fd_ = -1;
  std::unique_ptr<FdLineClient> client_;
};

/// HttpServer with one POST /v1/batch per request on a keep-alive
/// connection; a round trip parses the chunked response to completion.
class HttpTransport {
 public:
  HttpTransport(ccov::engine::Engine& engine,
                const ccov::engine::ServeConfig& config)
      : server_(engine, config) {
    thread_ = std::thread([this] { server_.run(); });
    fd_ = connect_loopback(server_.port());
    client_ = std::make_unique<FdLineClient>(fd_, fd_);
  }

  ~HttpTransport() {
    ::close(fd_);
    server_.shutdown();
    thread_.join();
  }

  bool round_trip(const std::string& line, std::string* out) {
    std::string req = "POST /v1/batch HTTP/1.1\r\nHost: bench\r\n";
    req += "Content-Type: application/x-ndjson\r\nContent-Length: ";
    req += std::to_string(line.size());
    req += "\r\n\r\n";
    req += line;
    if (!client_->send(req)) return false;

    // Status line + headers end at the first empty line.
    for (;;) {
      std::string h;
      if (!client_->recv_line(&h)) return false;
      if (!h.empty() && h.back() == '\r') h.pop_back();
      if (h.empty()) break;
    }
    // Chunked body until the terminating 0-chunk; the payload is the
    // serve-protocol response line, newline included.
    std::string body;
    for (;;) {
      std::string size_line;
      if (!client_->recv_line(&size_line)) return false;
      if (!size_line.empty() && size_line.back() == '\r') size_line.pop_back();
      const std::size_t n = std::strtoull(size_line.c_str(), nullptr, 16);
      std::string crlf;
      if (n == 0) {
        if (!client_->recv_line(&crlf)) return false;
        break;
      }
      if (!client_->recv_exact(n, &body)) return false;
      if (!client_->recv_line(&crlf)) return false;  // chunk-ending CRLF
    }
    if (!body.empty() && body.back() == '\n') body.pop_back();
    *out = body;
    return true;
  }

 private:
  ccov::engine::net::HttpServer server_;
  std::thread thread_;
  int fd_ = -1;
  std::unique_ptr<FdLineClient> client_;
};

/// ShmServer on a thread + ShmClient over the rings.
class ShmTransport {
 public:
  ShmTransport(ccov::engine::Engine& engine,
               const ccov::engine::ServeConfig& config)
      : server_(engine, config) {
    thread_ = std::thread([this] { server_.run(); });
    std::string error;
    for (int i = 0; i < 200 && !client_.connect(server_.name(), &error); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (!client_.connected())
      throw std::runtime_error("shm connect: " + error);
  }

  ~ShmTransport() {
    client_.close();
    server_.shutdown();
    thread_.join();
  }

  bool round_trip(const std::string& line, std::string* out) {
    return client_.send(line.data(), line.size()) && client_.read_line(out);
  }

 private:
  ccov::engine::shm::ShmServer server_;
  std::thread thread_;
  ccov::engine::shm::ShmClient client_;
};

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Stats {
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t mean_ns = 0;
  std::int64_t requests_per_s = 0;
  std::size_t requests = 0;
};

std::int64_t percentile(const std::vector<std::int64_t>& sorted, int per_mille) {
  const std::size_t idx = std::min(
      sorted.size() - 1, sorted.size() * static_cast<std::size_t>(per_mille) /
                             1000);
  return sorted[idx];
}

template <typename Transport>
Stats measure(Transport& t, const std::string& line, std::size_t warmup,
              std::size_t requests) {
  std::string resp;
  for (std::size_t i = 0; i < warmup; ++i)
    if (!t.round_trip(line, &resp))
      throw std::runtime_error("transport failed during warmup");

  std::vector<std::int64_t> lat;
  lat.reserve(requests);
  std::int64_t total_ns = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto t0 = Clock::now();
    if (!t.round_trip(line, &resp))
      throw std::runtime_error("transport failed mid-measurement");
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count();
    lat.push_back(ns);
    total_ns += ns;
  }
  std::sort(lat.begin(), lat.end());

  Stats s;
  s.requests = requests;
  s.p50_ns = percentile(lat, 500);
  s.p99_ns = percentile(lat, 990);
  s.p999_ns = percentile(lat, 999);
  s.mean_ns = total_ns / static_cast<std::int64_t>(requests);
  s.requests_per_s =
      total_ns > 0 ? static_cast<std::int64_t>(requests) * 1'000'000'000 /
                         total_ns
                   : 0;
  return s;
}

// ---------------------------------------------------------------------------
// Byte-identity check: stdio vs shm over a mixed script.
// ---------------------------------------------------------------------------

const char* const kScript[] = {
    R"({"algo":"construct","n":7})",
    R"({"algo":"construct","n":9,"validate":true})",
    R"({"algo":"construct","n":12})",
    R"(this is not json)",
    R"({"algo":"no-such-algorithm","n":5})",
    R"({"algo":"construct","n":7})",  // cache hit second time around
};

template <typename Transport>
std::vector<std::string> run_script(Transport& t) {
  std::vector<std::string> out;
  std::string resp;
  for (const char* req : kScript) {
    if (!t.round_trip(std::string(req) + "\n", &resp))
      throw std::runtime_error("transport failed during identity script");
    out.push_back(resp);
  }
  return out;
}

bool check_identity(const ccov::engine::ServeConfig& config) {
  // A fresh engine per transport: both scripts must see the same cold
  // cache, or the cache_hit field would differ for legitimate reasons.
  std::vector<std::string> via_stdio, via_shm;
  {
    ccov::engine::Engine engine{ccov::engine::EngineOptions{}};
    StdioTransport t(engine, config);
    via_stdio = run_script(t);
  }
  {
    ccov::engine::Engine engine{ccov::engine::EngineOptions{}};
    ShmTransport t(engine, config);
    via_shm = run_script(t);
  }
  if (via_stdio == via_shm) return true;
  std::cerr << "FAIL: shm responses are not byte-identical to stdio\n";
  for (std::size_t i = 0; i < via_stdio.size(); ++i) {
    if (via_stdio[i] != via_shm[i])
      std::cerr << "  line " << i << ":\n    stdio: " << via_stdio[i]
                << "\n    shm:   " << via_shm[i] << "\n";
  }
  return false;
}

void append_stats(ccov::util::json::JsonWriter& w, const char* name,
                  const Stats& s) {
  w.key(name)
      .begin_object()
      .key("p50_ns")
      .value(s.p50_ns)
      .key("p99_ns")
      .value(s.p99_ns)
      .key("p999_ns")
      .value(s.p999_ns)
      .key("mean_ns")
      .value(s.mean_ns)
      .key("requests_per_s")
      .value(s.requests_per_s)
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  ccov::util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const std::size_t requests = static_cast<std::size_t>(
      cli.get_int("requests", quick ? 400 : 4000));
  const std::size_t warmup =
      static_cast<std::size_t>(cli.get_int("warmup", quick ? 50 : 200));
  const std::string out_path = cli.get("out", "BENCH_transport.json");

  ccov::engine::ServeConfig config;
  config.shm_name =
      "ccov_bench_" + std::to_string(static_cast<unsigned>(::getpid()));
  config.shm_ring_bytes = static_cast<std::size_t>(
      cli.get_int("ring", static_cast<std::int64_t>(config.shm_ring_bytes)));

  ccov::engine::EngineOptions eopts;
  ccov::engine::Engine engine(eopts);

  if (!check_identity(config)) return 1;
  std::cerr << "identity: shm responses byte-identical to stdio ("
            << std::size(kScript) << " lines)\n";

  // One cached request line: after the first warmup iteration every
  // transport serves the same cache hit, so the measurement isolates
  // transport cost rather than solver cost.
  const std::string line = R"({"algo":"construct","n":11})" "\n";

  Stats stdio_s, tcp_s, http_s, shm_s;
  {
    StdioTransport t(engine, config);
    stdio_s = measure(t, line, warmup, requests);
  }
  {
    TcpTransport t(engine, config);
    tcp_s = measure(t, line, warmup, requests);
  }
  {
    HttpTransport t(engine, config);
    http_s = measure(t, line, warmup, requests);
  }
  {
    ShmTransport t(engine, config);
    shm_s = measure(t, line, warmup, requests);
  }

  const auto report = [](const char* name, const Stats& s) {
    std::cerr << "  " << name << ": p50 " << s.p50_ns / 1000.0 << " us, p99 "
              << s.p99_ns / 1000.0 << " us, p999 " << s.p999_ns / 1000.0
              << " us, " << s.requests_per_s << " req/s\n";
  };
  std::cerr << "transport latency (" << requests << " round trips each):\n";
  report("stdio", stdio_s);
  report("tcp  ", tcp_s);
  report("http ", http_s);
  report("shm  ", shm_s);

  // The x1000 fixed-point ratio keeps the writer integer-only.
  const std::int64_t speedup_milli =
      shm_s.p50_ns > 0 ? tcp_s.p50_ns * 1000 / shm_s.p50_ns : 0;
  std::cerr << "shm p50 is " << speedup_milli / 1000.0
            << "x lower than tcp loopback\n";

  ccov::util::json::JsonWriter w;
  w.begin_object()
      .key("bench")
      .value_string("transport")
      .key("requests")
      .value(static_cast<std::int64_t>(requests))
      .key("warmup")
      .value(static_cast<std::int64_t>(warmup))
      .key("quick")
      .value(quick)
      .key("request_line")
      .value_string(R"({"algo":"construct","n":11})")
      .key("ring_bytes")
      .value(static_cast<std::int64_t>(config.shm_ring_bytes))
      .key("byte_identical_shm_vs_stdio")
      .value(true)
      .key("transports")
      .begin_object();
  append_stats(w, "stdio", stdio_s);
  append_stats(w, "tcp", tcp_s);
  append_stats(w, "http", http_s);
  append_stats(w, "shm", shm_s);
  w.end_object()
      .key("shm_vs_tcp_p50_speedup_milli")
      .value(speedup_milli)
      .end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
