// Experiment C1 — the cost function (paper section on cost, refs [3,4]).
//
// The paper argues that on a ring, minimizing the NUMBER of sub-networks
// minimizes the network cost (ADMs + wavelengths + transit + regeneration)
// and reduces management complexity. This harness evaluates the
// parameterized cost model on the optimal covering vs the greedy covering
// vs the EMZ-objective view (sum of ring sizes, ref [3]).

#include <iostream>

#include "ccov/baselines/emz.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/cost.hpp"
#include "ccov/wdm/network.hpp"

int main() {
  using namespace ccov;
  const wdm::CostModel model;  // defaults: adm 1.0, wl 1.0, transit 0.1,
                               // regen 0.05
  ccov::util::Table t({"n", "cover", "subnets", "wavelengths", "ADMs",
                       "transit", "EMZ obj", "total cost"});
  for (std::uint32_t n = 7; n <= 25; n += 2) {
    const auto inst = wdm::Instance::all_to_all(n);
    for (const char* kind : {"optimal", "greedy"}) {
      const auto cover = kind == std::string("optimal")
                             ? covering::build_optimal_cover(n)
                             : covering::greedy_cover(n);
      wdm::WdmRingNetwork net(n, cover, inst);
      const auto b = wdm::evaluate_cost(net, model);
      t.add(n, kind, b.subnetworks, b.wavelengths, b.adms, b.transit,
            baselines::emz_objective(cover), b.total);
    }
  }
  t.print(std::cout, "WDM ring cost model (ADM/wavelength/transit/regen)");
  std::cout << "\nShape check: fewer sub-networks => lower total cost at "
               "every n (the paper's ring cost claim); the EMZ objective "
               "(sum of sizes, ref [3]) tracks the ADM column.\n";
  return 0;
}
