// Experiment X1 — the lambda*K_n extension ("we are now investigating
// cases with other communication instances such as lambda*K_n").
//
// Reports the scaled lower bound vs the lambda-copies construction: exact
// for odd n (capacity scales linearly), within lambda-1 for even n (the
// parity obstruction applies only once, not per copy).

#include <iostream>

#include "ccov/extensions/lambda_cover.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::extensions;
  ccov::util::Table t(
      {"n", "lambda", "lower bound", "construction", "gap", "valid"});
  for (std::uint32_t n : {7u, 8u, 9u, 10u, 11u, 12u}) {
    for (std::uint32_t lam : {1u, 2u, 3u, 4u}) {
      const auto cover = build_lambda_cover(n, lam);
      const auto lb = rho_lambda_lower_bound(n, lam);
      t.add(n, lam, lb, cover.size(), cover.size() - lb,
            validate_lambda_cover(cover, lam) ? "yes" : "NO");
    }
  }
  t.print(std::cout, "DRC-coverings of lambda*K_n over C_n");
  std::cout << "\nShape check: gap = 0 for odd n at every lambda; for even "
               "n the gap is lambda-1 (one parity unit per extra copy is "
               "recoverable in principle, left as the paper leaves it: "
               "future work).\n";
  return 0;
}
