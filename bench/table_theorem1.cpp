// Experiment T1 — Theorem 1 reproduction (odd n).
//
// The paper: for n = 2p+1, rho(n) = p(p+1)/2, achieved by a covering with
// p C3 and p(p-1)/2 C4. This harness regenerates the claim: formula vs
// inductive construction vs exact solver (small n), with the validator
// certifying every covering and the capacity bound certifying optimality.
// All covers are produced through the engine's BatchRunner (one request
// per construction / solve), which fans the work across every core while
// keeping the rows in deterministic order.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::covering;
  namespace eng = ccov::engine;

  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n = 3; n <= 41; n += 2) sizes.push_back(n);

  // One construct request per n, then one solve request per small n; the
  // solve block starts at sizes.size().
  std::vector<eng::CoverRequest> requests;
  for (const auto n : sizes) {
    eng::CoverRequest req;
    req.algorithm = "construct";
    req.n = n;
    requests.push_back(req);
  }
  std::vector<std::uint32_t> solve_sizes;
  for (const auto n : sizes) {
    if (n > 9) continue;
    eng::CoverRequest req;
    req.algorithm = "solve";
    req.n = n;
    req.budget = rho(n);
    req.validate = false;
    requests.push_back(req);
    solve_sizes.push_back(n);
  }

  eng::Engine engine;
  eng::BatchRunner runner(engine);
  const auto responses = runner.run(requests);

  ccov::util::Table t({"n", "p", "rho(n) formula", "construction", "C3",
                       "C3 thm", "C4", "C4 thm", "capacity LB", "solver",
                       "valid"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto n = sizes[i];
    const auto& resp = responses[i];
    const auto comp = theorem_composition(n);
    std::string solver = "-";
    for (std::size_t j = 0; j < solve_sizes.size(); ++j) {
      if (solve_sizes[j] != n) continue;
      const auto& sres = responses[sizes.size() + j];
      solver = sres.found ? std::to_string(sres.cover.size()) : "fail";
    }
    t.add(n, (n - 1) / 2, rho(n), resp.cover.size(), count_c3(resp.cover),
          comp.c3, count_c4(resp.cover), comp.c4, capacity_lower_bound(n),
          solver, resp.valid ? "yes" : "NO");
  }
  t.print(std::cout,
          "Theorem 1: DRC-covering of K_n over C_n, odd n (paper: rho = "
          "p(p+1)/2 with p C3 + p(p-1)/2 C4)");
  std::cout << "\nShape check: construction == formula == capacity lower "
               "bound for every odd n; compositions match the theorem "
               "exactly.\n";
  return 0;
}
