// Experiment T1 — Theorem 1 reproduction (odd n).
//
// The paper: for n = 2p+1, rho(n) = p(p+1)/2, achieved by a covering with
// p C3 and p(p-1)/2 C4. This harness regenerates the claim: formula vs
// inductive construction vs exact solver (small n), with the validator
// certifying every covering and the capacity bound certifying optimality.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::covering;
  ccov::util::Table t({"n", "p", "rho(n) formula", "construction", "C3",
                       "C3 thm", "C4", "C4 thm", "capacity LB", "solver",
                       "valid"});
  for (std::uint32_t n = 3; n <= 41; n += 2) {
    const auto cover = construct_odd_cover(n);
    const auto comp = theorem_composition(n);
    const auto rep = validate_cover(cover);
    std::string solver = "-";
    if (n <= 9) {
      const auto res = solve_with_budget(n, rho(n));
      solver = res.found ? std::to_string(res.cover.size()) : "fail";
    }
    t.add(n, (n - 1) / 2, rho(n), cover.size(), count_c3(cover), comp.c3,
          count_c4(cover), comp.c4, capacity_lower_bound(n), solver,
          rep.ok ? "yes" : "NO");
  }
  t.print(std::cout,
          "Theorem 1: DRC-covering of K_n over C_n, odd n (paper: rho = "
          "p(p+1)/2 with p C3 + p(p-1)/2 C4)");
  std::cout << "\nShape check: construction == formula == capacity lower "
               "bound for every odd n; compositions match the theorem "
               "exactly.\n";
  return 0;
}
