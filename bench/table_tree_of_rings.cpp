// Experiment X2 — the trees-of-rings extension ("We also consider other
// network topologies, for example, trees of rings...").
//
// All-to-all requests are routed through the unique ring sequence; each
// ring covers its induced demand independently (the paper's scheme applied
// per ring). Reports covering sizes vs per-ring load lower bounds.

#include <iostream>

#include "ccov/extensions/tree_of_rings.hpp"
#include "ccov/graph/generators.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov;
  ccov::util::Table t({"rings", "ring size", "nodes", "requests",
                       "cycles used", "load LB", "ratio"});
  for (std::uint32_t rings : {1u, 2u, 3u, 4u}) {
    for (std::uint32_t size : {5u, 7u, 9u}) {
      const auto g = graph::tree_of_rings_chain(rings, size);
      const auto res = extensions::cover_all_to_all(g);
      const double ratio =
          res.lower_bound
              ? static_cast<double>(res.total_cycles) /
                    static_cast<double>(res.lower_bound)
              : 1.0;
      t.add(rings, size, g.num_vertices(), res.total_demand_edges,
            res.total_cycles, res.lower_bound, ratio);
    }
  }
  t.print(std::cout, "All-to-all DRC covering on chains of rings");
  std::cout << "\nShape check: the greedy per-ring covering stays within a "
               "small constant factor of the per-ring load lower bound; "
               "articulation rings carry the transit demand.\n";
  return 0;
}
