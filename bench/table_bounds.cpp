// Experiment B1 — lower bounds vs rho(n).
//
// Regenerates the two lower-bound arguments that certify the theorems:
// capacity (tight for odd n) and the even-n parity refinement (+1 when p
// is even). The table shows where each bound binds.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/ring/routing.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::covering;
  ccov::util::Table t({"n", "total minor load L(n)", "capacity LB",
                       "parity LB", "rho(n)", "capacity tight",
                       "parity gain"});
  for (std::uint32_t n = 3; n <= 32; ++n) {
    const auto cap = capacity_lower_bound(n);
    const auto par = parity_lower_bound(n);
    t.add(n, ccov::ring::all_to_all_min_load(n), cap, par, rho(n),
          cap == rho(n) ? "yes" : "no", par - cap);
  }
  t.print(std::cout, "Lower bounds for DRC-coverings of K_n over C_n");
  std::cout << "\nShape check: the capacity bound is tight exactly for odd "
               "n; the parity refinement adds exactly 1 for n = 2p with p "
               "even, reaching rho(n) for every n.\n";
  return 0;
}
