// Experiment P2 — node ("equipment") failures, the second failure class
// the paper's survivability scheme addresses.
//
// Mean over all single node failures: traffic terminating at the failed
// node is lost (no scheme can save it); transit traffic is looped back by
// each sub-network independently. Smaller cycles lose less per failure —
// the quantitative face of "it will be interesting to get very small
// cycles as subnetworks".

#include <iostream>

#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/protection/node_failure.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/network.hpp"

int main() {
  using namespace ccov;
  using namespace ccov::protection;
  ccov::util::Table t({"n", "cover", "cycles", "mean lost", "mean rerouted",
                       "mean switches", "mean recovery ms"});
  for (std::uint32_t n : {8u, 12u, 16u, 20u}) {
    const auto inst = wdm::Instance::all_to_all(n);
    for (const char* kind : {"optimal", "greedy"}) {
      const auto cover = kind == std::string("optimal")
                             ? covering::build_optimal_cover(n)
                             : covering::greedy_cover(n);
      const wdm::WdmRingNetwork net(n, cover, inst);
      const auto avg = average_over_node_failures(net);
      t.add(n, kind, cover.size(), avg.lost_requests, avg.rerouted_requests,
            avg.switching_actions, avg.recovery_time_ms);
    }
  }
  t.print(std::cout, "Node failure recovery (mean over all nodes)");
  std::cout << "\nShape check: lost traffic per failure = 2 * (cycles "
               "containing the node) = 2 * sum(sizes)/n — small-cycle "
               "covers lose the unavoidable minimum while keeping "
               "switching local.\n";
  return 0;
}
