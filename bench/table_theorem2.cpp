// Experiment T2 — Theorem 2 reproduction (even n).
//
// The paper: for n = 2p (p >= 3), rho(n) = ceil((p^2+1)/2); for n = 4q the
// covering has 4 C3 + (2q^2-3) C4, for n = 4q+2 it has 2 C3 + (2q^2+2q-1)
// C4. This library certifies those values exactly for even n <= 12
// (construction meeting the parity lower bound; the n = 10 base was found
// by exhaustive search). For larger even n the general construction is
// valid but uses floor((p-1)/2) extra cycles (see EXPERIMENTS.md). Covers
// come through the engine's BatchRunner: one "construct" request per n,
// validated by the engine, rows in deterministic order.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::covering;
  namespace eng = ccov::engine;

  std::vector<eng::CoverRequest> requests;
  for (std::uint32_t n = 4; n <= 40; n += 2) {
    eng::CoverRequest req;
    req.algorithm = "construct";
    req.n = n;
    requests.push_back(req);
  }

  eng::Engine engine;
  eng::BatchRunner runner(engine);
  const auto responses = runner.run(requests);

  ccov::util::Table t({"n", "p", "rho(n) formula", "construction", "gap",
                       "C3", "C3 thm", "C4", "C4 thm", "parity LB",
                       "valid"});
  for (const auto& resp : responses) {
    const auto n = resp.n;
    std::string c3t = "-", c4t = "-";
    if (n >= 6) {
      const auto comp = theorem_composition(n);
      c3t = std::to_string(comp.c3);
      c4t = std::to_string(comp.c4);
    }
    t.add(n, n / 2, rho(n), resp.cover.size(), resp.cover.size() - rho(n),
          count_c3(resp.cover), c3t, count_c4(resp.cover), c4t,
          parity_lower_bound(n), resp.valid ? "yes" : "NO");
  }
  t.print(std::cout,
          "Theorem 2: DRC-covering of K_n over C_n, even n (paper: rho = "
          "ceil((p^2+1)/2))");
  std::cout
      << "\nShape check: gap = 0 with theorem compositions for n <= 12 "
         "(optimal, certified by the parity lower bound and, for n <= 10, "
         "exhaustive search); for n >= 14 the general construction is "
         "valid with gap floor((p-1)/2) — rho(n) remains the certified "
         "lower bound.\n";
  return 0;
}
