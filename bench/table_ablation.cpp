// Experiment A1 — ablations of the design choices DESIGN.md calls out.
//
//  (a) Solver capacity pruning: the "each DRC cycle tiles the ring exactly
//      once" insight is the paper's core; turning the derived prune off
//      shows how much of the search it removes.
//  (b) Parallel root fan-out: same proof, wall-clock scaling.
//  (c) Cycle-size cap: searching C3..C5 instead of C3..C4 never improves
//      the optimum (the theorems say C3/C4 suffice) but grows the branch
//      factor.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/util/table.hpp"
#include "ccov/util/timer.hpp"

int main() {
  using namespace ccov::covering;
  ccov::util::Table t({"n", "budget", "variant", "found", "proof", "nodes",
                       "ms"});
  for (std::uint32_t n : {6u, 7u, 8u}) {
    const std::uint64_t budget = rho(n) - 1;  // infeasible: full proofs

    {
      SolverOptions o;
      ccov::util::Timer timer;
      const auto r = solve_with_budget(n, budget, o);
      t.add(n, budget, "capacity prune ON", r.found ? "yes" : "no",
            r.exhausted ? "yes" : "no", r.nodes, timer.millis());
    }
    {
      SolverOptions o;
      o.use_capacity_prune = false;
      o.max_nodes = 20'000'000;
      ccov::util::Timer timer;
      const auto r = solve_with_budget(n, budget, o);
      t.add(n, budget, "capacity prune OFF", r.found ? "yes" : "no",
            r.exhausted ? "yes" : "no", r.nodes, timer.millis());
    }
    {
      SolverOptions o;
      ccov::util::Timer timer;
      const auto r = solve_with_budget_parallel(n, budget, o);
      t.add(n, budget, "parallel roots", r.found ? "yes" : "no",
            r.exhausted ? "yes" : "no", r.nodes, timer.millis());
    }
    {
      SolverOptions o;
      o.max_cycle_len = 5;
      ccov::util::Timer timer;
      const auto r = solve_with_budget(n, budget, o);
      t.add(n, budget, "sizes C3..C5", r.found ? "yes" : "no",
            r.exhausted ? "yes" : "no", r.nodes, timer.millis());
    }
  }
  t.print(std::cout,
          "Ablation: exhaustive infeasibility proofs at budget rho(n)-1");
  std::cout << "\nShape check: the capacity prune (the paper's tiling "
               "insight) cuts the explored nodes by orders of magnitude "
               "and is what makes the exhaustive certification of Theorem "
               "2's small cases tractable; allowing C5s only inflates the "
               "search.\n";
  return 0;
}
