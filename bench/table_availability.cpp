// Experiment P3 — availability: the survivability claim in steady state.
//
// Five-nines arithmetic for the paper's scheme: per-request availability
// with loop-back protection vs the same routing unprotected, under
// realistic fibre/switch MTBF/MTTR. The downtime-reduction column is the
// quantitative version of "fast automatic protection in case of failure".

#include <cmath>
#include <iostream>

#include "ccov/covering/construct.hpp"
#include "ccov/protection/availability.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/network.hpp"

int main() {
  using namespace ccov;
  using namespace ccov::protection;
  const ComponentModel m;
  ccov::util::Table t({"n", "requests", "mean avail (prot)",
                       "worst avail (prot)", "mean avail (unprot)",
                       "downtime cut", "nines (prot)"});
  for (std::uint32_t n : {8u, 12u, 16u, 24u, 32u}) {
    const wdm::WdmRingNetwork net(n, covering::build_optimal_cover(n),
                                  wdm::Instance::all_to_all(n));
    const auto rep = analyze_availability(net, m);
    const double nines = -std::log10(1.0 - rep.mean_protected);
    t.add(n, rep.requests, rep.mean_protected, rep.min_protected,
          rep.mean_unprotected, rep.downtime_reduction, nines);
  }
  t.print(std::cout,
          "Steady-state availability (link MTBF 50kh/MTTR 12h, node MTBF "
          "100kh/MTTR 6h)");
  std::cout << "\nShape check: loop-back protection removes the working-"
               "path series terms from the downtime budget, leaving the "
               "endpoint nodes dominant — an order-of-magnitude-plus "
               "downtime cut that is flat in n.\n";
  return 0;
}
