// Experiment E1 — the paper's in-text example.
//
// "Let G be C4 = (1,2,3,4,1) and I be K4. One covering is given by the two
// C4's (1,2,3,4,1) and (1,3,4,2,1) but there does not exist an edge
// disjoint routing for the cycle (1,3,4,2,1) [...] On the other hand, the
// covering given by the C4 (1,2,3,4,1) and the two C3's (1,2,4,1) and
// (1,3,4,1) satisfies the edge disjoint routing property."

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/cover.hpp"
#include "ccov/covering/drc.hpp"
#include "ccov/util/table.hpp"

int main() {
  using namespace ccov::covering;
  const ccov::ring::Ring r(4);

  ccov::util::Table t({"cycle (1-indexed as in paper)", "DRC satisfied"});
  const std::vector<std::pair<std::string, Cycle>> cycles = {
      {"(1,2,3,4,1)", {0, 1, 2, 3}},
      {"(1,3,4,2,1)", {0, 2, 3, 1}},
      {"(1,2,4,1)", {0, 1, 3}},
      {"(1,3,4,1)", {0, 2, 3}},
  };
  for (const auto& [name, c] : cycles)
    t.add(name, satisfies_drc(r, c) ? "yes" : "no");
  t.print(std::cout, "Paper example: DRC on C_4 / K_4");

  const RingCover bad{4, {{0, 1, 2, 3}, {0, 2, 3, 1}}};
  const RingCover good{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}};
  std::cout << "\ncovering {(1,2,3,4,1), (1,3,4,2,1)}: "
            << (validate_cover(bad).ok ? "valid" : "INVALID (as the paper "
                                                   "states)")
            << "\ncovering {(1,2,3,4,1), (1,2,4,1), (1,3,4,1)}: "
            << (validate_cover(good).ok ? "valid (as the paper states)"
                                        : "INVALID")
            << "\nrho(4) = " << rho(4) << " (the paper's covering is optimal)"
            << std::endl;
  return 0;
}
