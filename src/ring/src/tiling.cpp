#include "ccov/ring/tiling.hpp"

#include <algorithm>

namespace ccov::ring {

std::vector<std::uint32_t> edge_load(const Ring& r,
                                     const std::vector<Arc>& arcs) {
  // Difference-array sweep: O(arcs + n) instead of O(arcs * len).
  const std::uint32_t n = r.size();
  std::vector<std::uint32_t> load(n, 0);
  std::vector<std::int32_t> diff(n + 1, 0);
  for (const Arc& a : arcs) {
    if (a.len == 0) continue;
    if (a.start + a.len <= n) {
      diff[a.start] += 1;
      diff[a.start + a.len] -= 1;
    } else {  // wraps
      diff[a.start] += 1;
      diff[n] -= 1;
      diff[0] += 1;
      diff[a.start + a.len - n] -= 1;
    }
  }
  std::int32_t run = 0;
  for (std::uint32_t e = 0; e < n; ++e) {
    run += diff[e];
    load[e] = static_cast<std::uint32_t>(run);
  }
  return load;
}

bool is_exact_tiling(const Ring& r, const std::vector<Arc>& arcs) {
  if (total_length(arcs) != r.size()) return false;
  const auto load = edge_load(r, arcs);
  return std::all_of(load.begin(), load.end(),
                     [](std::uint32_t c) { return c == 1; });
}

std::uint32_t max_load(const Ring& r, const std::vector<Arc>& arcs) {
  const auto load = edge_load(r, arcs);
  return load.empty() ? 0 : *std::max_element(load.begin(), load.end());
}

std::uint64_t total_length(const std::vector<Arc>& arcs) {
  std::uint64_t s = 0;
  for (const Arc& a : arcs) s += a.len;
  return s;
}

}  // namespace ccov::ring
