#include "ccov/ring/routing.hpp"

namespace ccov::ring {

std::vector<Arc> route_minor(const Ring& r, const std::vector<Chord>& chords) {
  std::vector<Arc> arcs;
  arcs.reserve(chords.size());
  for (const auto& [u, v] : chords) arcs.push_back(minor_arc(r, u, v));
  return arcs;
}

std::uint64_t all_to_all_min_load(std::uint32_t n) {
  const std::uint64_t N = n;
  if (n % 2 == 1) {
    const std::uint64_t p = (N - 1) / 2;
    return N * p * (p + 1) / 2;
  }
  const std::uint64_t p = N / 2;
  return N * p * (p - 1) / 2 + p * p;
}

std::vector<std::uint64_t> all_to_all_edge_load(std::uint32_t n) {
  const Ring r(n);
  std::vector<std::uint64_t> load(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Arc a = minor_arc(r, u, v);
      Vertex e = a.start;
      for (std::uint32_t i = 0; i < a.len; ++i) {
        load[e] += 1;
        e = r.succ(e);
      }
    }
  }
  return load;
}

}  // namespace ccov::ring
