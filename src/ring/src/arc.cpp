#include "ccov/ring/arc.hpp"

#include <algorithm>
#include <cassert>

namespace ccov::ring {

bool arc_covers_edge(const Ring& r, const Arc& a, std::uint32_t e) {
  assert(e < r.size());
  // Edge e is covered iff e lies in [start, start+len) mod n.
  return r.cw_dist(a.start, static_cast<Vertex>(e)) < a.len;
}

Arc minor_arc(const Ring& r, Vertex u, Vertex v) {
  assert(u != v);
  const std::uint32_t d = r.cw_dist(u, v);
  const std::uint32_t n = r.size();
  if (d < n - d) return Arc{u, d};
  if (d > n - d) return Arc{v, n - d};
  return Arc{std::min(u, v), d};  // antipodal tie: deterministic pick
}

Arc complement(const Ring& r, const Arc& a) {
  assert(a.len >= 1 && a.len <= r.size());
  return Arc{a.end(r), r.size() - a.len};
}

bool arcs_overlap(const Ring& r, const Arc& a, const Arc& b) {
  // a covers edges [a.start, a.start+a.len); test whether b's start lies in
  // it, or a's start lies in b's span.
  return r.cw_dist(a.start, b.start) < a.len ||
         r.cw_dist(b.start, a.start) < b.len;
}

std::vector<std::uint32_t> arc_edges(const Ring& r, const Arc& a) {
  std::vector<std::uint32_t> out;
  out.reserve(a.len);
  Vertex e = a.start;
  for (std::uint32_t i = 0; i < a.len; ++i) {
    out.push_back(e);
    e = r.succ(e);
  }
  return out;
}

}  // namespace ccov::ring
