#pragma once
/// \file routing.hpp
/// Routing sets of requests (chords) on the ring and measuring the induced
/// load. Used by the WDM cost model, the protection simulator, and the
/// capacity lower bound of the covering core.

#include <cstdint>
#include <utility>
#include <vector>

#include "ccov/ring/arc.hpp"
#include "ccov/ring/tiling.hpp"

namespace ccov::ring {

using Chord = std::pair<Vertex, Vertex>;

/// Route every chord on its minor arc (the load-optimal oblivious routing).
std::vector<Arc> route_minor(const Ring& r, const std::vector<Chord>& chords);

/// Total minor-arc load of the all-to-all instance K_n on C_n:
///   L(n) = sum over chords of ring-distance.
/// Closed forms: n = 2p+1 -> n*p*(p+1)/2 ; n = 2p -> n*p*(p-1)/2 + p^2.
std::uint64_t all_to_all_min_load(std::uint32_t n);

/// Load vector of the minor routing of K_n (each entry is the number of
/// requests crossing that ring edge). Uniform by symmetry; exposed for
/// tests and the capacity-bound derivation.
std::vector<std::uint64_t> all_to_all_edge_load(std::uint32_t n);

}  // namespace ccov::ring
