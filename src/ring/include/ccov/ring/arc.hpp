#pragma once
/// \file arc.hpp
/// Directed arcs on a ring: the elementary routing object. A request routed
/// on C_n occupies one of the two arcs between its endpoints; the DRC theory
/// of the paper is entirely a statement about how arcs tile the ring.

#include <cstdint>
#include <vector>

#include "ccov/ring/ring.hpp"

namespace ccov::ring {

/// Clockwise arc starting at vertex `start`, spanning `len` ring edges
/// (edges start, start+1, ..., start+len-1 mod n). 1 <= len <= n.
struct Arc {
  Vertex start = 0;
  std::uint32_t len = 0;

  constexpr Vertex end(const Ring& r) const { return r.advance(start, len); }

  friend constexpr bool operator==(const Arc&, const Arc&) = default;
};

/// True when the arc covers ring edge e (edge between e and e+1).
bool arc_covers_edge(const Ring& r, const Arc& a, std::uint32_t e);

/// The minor (shorter-side) arc for chord {u, v}; for antipodal chords the
/// clockwise arc from min(u, v) is returned.
Arc minor_arc(const Ring& r, Vertex u, Vertex v);

/// The complementary arc (the other side of the same chord).
Arc complement(const Ring& r, const Arc& a);

/// True when arcs a and b share at least one ring edge.
bool arcs_overlap(const Ring& r, const Arc& a, const Arc& b);

/// List of ring edges covered by the arc, in traversal order.
std::vector<std::uint32_t> arc_edges(const Ring& r, const Arc& a);

}  // namespace ccov::ring
