#pragma once
/// \file tiling.hpp
/// Exact tilings of the ring by arcs. Section 2.2 of DESIGN.md: a cycle
/// admits a DRC routing iff its routing arcs tile the ring exactly once
/// (winding number 1), so tilings are the combinatorial heart of the paper.

#include <cstdint>
#include <vector>

#include "ccov/ring/arc.hpp"

namespace ccov::ring {

/// True when the arcs cover every ring edge exactly once. Order-insensitive.
bool is_exact_tiling(const Ring& r, const std::vector<Arc>& arcs);

/// Per-ring-edge coverage counts induced by a set of arcs.
std::vector<std::uint32_t> edge_load(const Ring& r, const std::vector<Arc>& arcs);

/// Maximum entry of edge_load (the congestion of the arc set).
std::uint32_t max_load(const Ring& r, const std::vector<Arc>& arcs);

/// Sum of arc lengths.
std::uint64_t total_length(const std::vector<Arc>& arcs);

}  // namespace ccov::ring
