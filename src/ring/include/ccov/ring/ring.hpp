#pragma once
/// \file ring.hpp
/// The physical topology of the paper: an undirected ring (cycle) C_n.
/// Vertices are 0..n-1 in clockwise order; ring edge e is the edge between
/// vertex e and vertex e+1 (mod n).

#include <cassert>
#include <cstdint>

#include "ccov/util/ints.hpp"

namespace ccov::ring {

using Vertex = std::uint32_t;

class Ring {
 public:
  /// A ring needs at least 3 vertices to be a simple cycle.
  explicit constexpr Ring(std::uint32_t n) : n_(n) { assert(n >= 3); }

  constexpr std::uint32_t size() const { return n_; }

  constexpr Vertex succ(Vertex v) const { return v + 1 == n_ ? 0 : v + 1; }
  constexpr Vertex pred(Vertex v) const { return v == 0 ? n_ - 1 : v - 1; }

  /// Clockwise distance from u to v (0 if equal, in [0, n)).
  constexpr std::uint32_t cw_dist(Vertex u, Vertex v) const {
    assert(u < n_ && v < n_);
    return v >= u ? v - u : n_ - (u - v);
  }

  /// Ring (graph) distance = length of the shorter of the two arcs.
  constexpr std::uint32_t dist(Vertex u, Vertex v) const {
    const std::uint32_t d = cw_dist(u, v);
    return d <= n_ - d ? d : n_ - d;
  }

  /// True when the two arcs between u and v have equal length (only for
  /// even n, antipodal pairs). These chords are where Theorem 2's slack
  /// lives: either side is a valid minor routing.
  constexpr bool antipodal(Vertex u, Vertex v) const {
    return n_ % 2 == 0 && cw_dist(u, v) == n_ / 2;
  }

  /// Advance v by k positions clockwise.
  constexpr Vertex advance(Vertex v, std::uint32_t k) const {
    return static_cast<Vertex>((static_cast<std::uint64_t>(v) + k) % n_);
  }

  friend constexpr bool operator==(const Ring& a, const Ring& b) {
    return a.n_ == b.n_;
  }

 private:
  std::uint32_t n_;
};

}  // namespace ccov::ring
