#pragma once
/// \file cost.hpp
/// The paper's "complex cost function": ADM count per node, wavelengths in
/// transit per optical node, and signal regeneration/amplification. On a
/// ring, minimizing the number of sub-networks minimizes this cost (the
/// claim this module lets the benchmarks quantify); refs [3] and [4]
/// minimize different terms of the same function.

#include <cstdint>

#include "ccov/wdm/network.hpp"

namespace ccov::wdm {

struct CostModel {
  double adm_cost = 1.0;        ///< per add/drop multiplexer port
  double wavelength_cost = 1.0; ///< per wavelength provisioned on the ring
  double transit_cost = 0.1;    ///< per wavelength passing through a node
  double regen_cost = 0.05;     ///< per km-equivalent of lit fibre (arc hop)
};

struct CostBreakdown {
  std::uint64_t subnetworks = 0;
  std::uint64_t adms = 0;
  std::uint64_t wavelengths = 0;
  std::uint64_t transit = 0;
  std::uint64_t lit_hops = 0;  ///< total routed arc length (working+spare)
  double total = 0.0;
};

/// Evaluate the model on a deployed network.
CostBreakdown evaluate_cost(const WdmRingNetwork& net, const CostModel& model);

}  // namespace ccov::wdm
