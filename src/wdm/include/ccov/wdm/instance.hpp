#pragma once
/// \file instance.hpp
/// Communication instances (the logical graph I of the paper). An instance
/// is a symmetric demand multigraph; the paper's main case is the total
/// exchange (all-to-all) instance K_n, with lambda*K_n and arbitrary
/// instances as extensions.

#include <cstdint>

#include "ccov/graph/graph.hpp"

namespace ccov::wdm {

using graph::Graph;
using graph::Vertex;

/// Symmetric demand set on n nodes.
class Instance {
 public:
  explicit Instance(Graph demands) : demands_(std::move(demands)) {}

  /// Total exchange: every pair of nodes communicates (the paper's I = K_n).
  static Instance all_to_all(std::uint32_t n);

  /// lambda parallel requests per pair (the paper's lambda*K_n extension).
  static Instance uniform(std::uint32_t n, std::uint32_t lambda);

  const Graph& demands() const { return demands_; }
  std::uint32_t nodes() const { return demands_.num_vertices(); }
  std::size_t num_requests() const { return demands_.num_edges(); }

 private:
  Graph demands_;
};

}  // namespace ccov::wdm
