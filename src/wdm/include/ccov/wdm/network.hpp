#pragma once
/// \file network.hpp
/// The WDM ring network: physical ring + a DRC covering deployed as
/// independent protected sub-networks, one wavelength pair per cycle
/// (working + spare), as described in the paper's survivability scheme.

#include <cstdint>
#include <optional>
#include <vector>

#include "ccov/covering/cover.hpp"
#include "ccov/covering/drc.hpp"
#include "ccov/ring/ring.hpp"
#include "ccov/wdm/instance.hpp"

namespace ccov::wdm {

/// One deployed sub-network I_k: a DRC cycle, its routing (arcs tiling the
/// ring) and its wavelength index.
struct Subnetwork {
  covering::Cycle cycle;
  std::vector<ring::Arc> routing;  ///< one arc per request, in cycle order
  std::uint32_t wavelength = 0;    ///< working wavelength (spare = +1 by
                                   ///< convention)
};

/// A survivable WDM ring built from a DRC covering. Construction fails
/// (throws std::invalid_argument) if any cycle violates the DRC or the
/// covering misses a request of the instance.
class WdmRingNetwork {
 public:
  WdmRingNetwork(std::uint32_t n, const covering::RingCover& cover,
                 const Instance& instance);

  std::uint32_t nodes() const { return ring_.size(); }
  const ring::Ring& topology() const { return ring_; }
  const std::vector<Subnetwork>& subnetworks() const { return subs_; }

  /// Number of wavelengths used (2 per sub-network: working + spare).
  std::uint32_t wavelengths() const {
    return static_cast<std::uint32_t>(2 * subs_.size());
  }

  /// ADMs: each sub-network terminates traffic at each of its nodes.
  std::uint64_t adm_count() const;

  /// Optical transit (pass-through) count: nodes a wavelength crosses
  /// without add/drop. On a ring every sub-network's routing tiles the
  /// whole ring, so each cycle transits n - |cycle| nodes.
  std::uint64_t transit_count() const;

  /// The sub-network whose routing carries the request {u, v}, if any.
  std::optional<std::size_t> serving_subnetwork(Vertex u, Vertex v) const;

 private:
  ring::Ring ring_;
  std::vector<Subnetwork> subs_;
};

}  // namespace ccov::wdm
