#include "ccov/wdm/network.hpp"

#include <stdexcept>

namespace ccov::wdm {

WdmRingNetwork::WdmRingNetwork(std::uint32_t n,
                               const covering::RingCover& cover,
                               const Instance& instance)
    : ring_(n) {
  if (cover.n != n)
    throw std::invalid_argument("WdmRingNetwork: cover size mismatch");
  const auto report = covering::validate_cover_against(cover, instance.demands());
  if (!report.ok)
    throw std::invalid_argument("WdmRingNetwork: invalid covering: " +
                                report.error);
  std::uint32_t lambda = 0;
  for (const auto& cyc : cover.cycles) {
    auto routing = covering::drc_route(ring_, cyc);
    if (!routing)  // unreachable after validation; defensive
      throw std::invalid_argument("WdmRingNetwork: cycle violates DRC");
    subs_.push_back(Subnetwork{cyc, std::move(*routing), lambda});
    lambda += 2;  // working + spare per sub-network
  }
}

std::uint64_t WdmRingNetwork::adm_count() const {
  std::uint64_t adms = 0;
  for (const auto& s : subs_) adms += s.cycle.size();
  return adms;
}

std::uint64_t WdmRingNetwork::transit_count() const {
  std::uint64_t transit = 0;
  for (const auto& s : subs_) transit += ring_.size() - s.cycle.size();
  return transit;
}

std::optional<std::size_t> WdmRingNetwork::serving_subnetwork(
    Vertex u, Vertex v) const {
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    const auto& c = subs_[k].cycle;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const Vertex a = c[i];
      const Vertex b = c[(i + 1) % c.size()];
      if ((a == u && b == v) || (a == v && b == u)) return k;
    }
  }
  return std::nullopt;
}

}  // namespace ccov::wdm
