#include "ccov/wdm/cost.hpp"

namespace ccov::wdm {

CostBreakdown evaluate_cost(const WdmRingNetwork& net, const CostModel& model) {
  CostBreakdown b;
  b.subnetworks = net.subnetworks().size();
  b.adms = net.adm_count();
  b.wavelengths = net.wavelengths();
  b.transit = net.transit_count();
  // Each sub-network lights the full ring on its working wavelength (the
  // routing tiles the ring) and reserves the full ring on the spare.
  b.lit_hops = static_cast<std::uint64_t>(2 * net.nodes()) * b.subnetworks;
  b.total = model.adm_cost * static_cast<double>(b.adms) +
            model.wavelength_cost * static_cast<double>(b.wavelengths) +
            model.transit_cost * static_cast<double>(b.transit) +
            model.regen_cost * static_cast<double>(b.lit_hops);
  return b;
}

}  // namespace ccov::wdm
