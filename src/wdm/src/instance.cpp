#include "ccov/wdm/instance.hpp"

#include "ccov/graph/generators.hpp"

namespace ccov::wdm {

Instance Instance::all_to_all(std::uint32_t n) {
  return Instance(graph::complete_graph(n));
}

Instance Instance::uniform(std::uint32_t n, std::uint32_t lambda) {
  return Instance(graph::complete_multigraph(n, lambda));
}

}  // namespace ccov::wdm
