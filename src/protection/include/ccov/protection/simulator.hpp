#pragma once
/// \file simulator.hpp
/// Survivability simulation: the paper's motivation. Three schemes are
/// modelled on a single-link failure:
///
/// * **loop-back protection** (the paper's scheme, ref [9]): each cycle
///   sub-network reroutes the one affected request onto the other half of
///   its own cycle using the pre-assigned spare capacity — local, fast,
///   per-sub-network.
/// * **1+1 whole-ring protection**: the whole instance is protected as one
///   ring-sized sub-network per wavelength (the trivial covering).
/// * **path restoration**: affected requests are rerouted on the surviving
///   path (the other side of the ring), requiring global signalling and
///   free capacity discovery.
///
/// The simulator reproduces the *shape* claims: loop-back touches every
/// sub-network but performs exactly one local switch pair each; smaller
/// cycles mean cheaper reconfiguration per sub-network and fewer extra
/// hops than whole-ring schemes.

#include <cstdint>
#include <vector>

#include "ccov/wdm/network.hpp"

namespace ccov::protection {

/// A single failed fibre link (ring edge e = {e, e+1}).
struct LinkFailure {
  std::uint32_t edge = 0;
};

struct RecoveryReport {
  std::uint64_t affected_requests = 0;   ///< requests crossing the failure
  std::uint64_t switching_actions = 0;   ///< ADM/OXC reconfigurations
  std::uint64_t reroute_extra_hops = 0;  ///< added hop count over all reroutes
  std::uint64_t max_detour_hops = 0;     ///< worst single-request detour
  double recovery_time_ms = 0.0;         ///< model: detect + per-switch +
                                         ///< propagation over detour length
};

struct TimingModel {
  double detect_ms = 1.0;       ///< failure detection
  double per_switch_ms = 0.5;   ///< per protection switch action
  double per_hop_ms = 0.05;     ///< propagation/configuration per hop
};

/// Loop-back protection on a cycle-cover network. Every sub-network's
/// routing tiles the ring, so each sub-network reroutes exactly the one
/// request whose arc crosses the failed link.
RecoveryReport simulate_loopback(const wdm::WdmRingNetwork& net,
                                 LinkFailure f, const TimingModel& t = {});

/// Path restoration baseline: each affected request of the instance is
/// rerouted on the complement arc; switching happens per request at both
/// endpoints plus global signalling proportional to the ring size.
RecoveryReport simulate_restoration(std::uint32_t n,
                                    const wdm::Instance& instance,
                                    LinkFailure f, const TimingModel& t = {});

/// 1+1 whole-ring baseline: the instance is carried on ceil(load) ring
/// wavelengths, each protected by a full counter-rotating spare ring; a
/// failure switches every wavelength at the two nodes adjacent to the cut.
RecoveryReport simulate_whole_ring(std::uint32_t n,
                                   const wdm::Instance& instance,
                                   LinkFailure f, const TimingModel& t = {});

/// Mean report over all n single-link failures.
template <typename Fn>
RecoveryReport average_over_failures(std::uint32_t n, Fn&& one) {
  RecoveryReport acc;
  for (std::uint32_t e = 0; e < n; ++e) {
    const RecoveryReport r = one(LinkFailure{e});
    acc.affected_requests += r.affected_requests;
    acc.switching_actions += r.switching_actions;
    acc.reroute_extra_hops += r.reroute_extra_hops;
    acc.max_detour_hops = std::max(acc.max_detour_hops, r.max_detour_hops);
    acc.recovery_time_ms += r.recovery_time_ms;
  }
  acc.affected_requests /= n;
  acc.switching_actions /= n;
  acc.reroute_extra_hops /= n;
  acc.recovery_time_ms /= n;
  return acc;
}

}  // namespace ccov::protection
