#pragma once
/// \file node_failure.hpp
/// Node (optical switch / "equipment") failures — the paper's survivability
/// scheme covers "equipment or link failure". A node failure removes both
/// incident fibre links AND terminates every request at that node.
///
/// Per sub-network on a single node failure:
///  * if the failed node is NOT a vertex of the cycle, its two incident
///    ring links both fail; the sub-network loops back the (single) arc
///    that crossed the node — same mechanics as a link failure;
///  * if the failed node IS a cycle vertex, its two incident requests are
///    lost (no protection can restore traffic to dead equipment); the
///    remaining requests of the cycle are re-routed on the surviving path.

#include <cstdint>

#include "ccov/protection/simulator.hpp"

namespace ccov::protection {

struct NodeFailure {
  std::uint32_t node = 0;
};

struct NodeRecoveryReport {
  std::uint64_t lost_requests = 0;       ///< requests terminating at the node
  std::uint64_t rerouted_requests = 0;   ///< transit requests restored
  std::uint64_t switching_actions = 0;
  std::uint64_t reroute_extra_hops = 0;
  double recovery_time_ms = 0.0;
};

/// Loop-back recovery of a cycle-cover network on a node failure.
NodeRecoveryReport simulate_node_failure(const wdm::WdmRingNetwork& net,
                                         NodeFailure f,
                                         const TimingModel& t = {});

/// Mean over all n node failures.
NodeRecoveryReport average_over_node_failures(const wdm::WdmRingNetwork& net,
                                              const TimingModel& t = {});

}  // namespace ccov::protection
