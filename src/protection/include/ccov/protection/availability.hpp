#pragma once
/// \file availability.hpp
/// Steady-state availability analysis of the cycle-cover design. Each
/// fibre link and optical node is an independent repairable component with
/// availability a = MTBF / (MTBF + MTTR). A request routed on an arc is UP
/// when either its working path or its loop-back protection path (the
/// cycle complement) is fully up — a series/parallel model:
///
///   A_protected(r) = a_u * a_v * (1 - (1 - A_work)(1 - A_prot))
///
/// where a_u, a_v are the endpoint node availabilities (no protection can
/// survive the death of a request's own endpoint), A_work is the product
/// of availabilities of the links and transit nodes on the working arc,
/// and A_prot the same for the complement arc.
///
/// Without protection the request is up only when the working path is:
///   A_unprotected(r) = a_u * a_v * A_work.
///
/// The difference quantifies the paper's survivability claim per request.

#include <cstdint>
#include <vector>

#include "ccov/wdm/network.hpp"

namespace ccov::protection {

struct ComponentModel {
  double link_mtbf_h = 50'000.0;  ///< mean time between fibre cuts (hours)
  double link_mttr_h = 12.0;      ///< fibre repair time
  double node_mtbf_h = 100'000.0; ///< optical switch failures
  double node_mttr_h = 6.0;

  double link_availability() const {
    return link_mtbf_h / (link_mtbf_h + link_mttr_h);
  }
  double node_availability() const {
    return node_mtbf_h / (node_mtbf_h + node_mttr_h);
  }
};

struct AvailabilityReport {
  double min_protected = 1.0;     ///< worst request availability, protected
  double mean_protected = 1.0;
  double min_unprotected = 1.0;   ///< same requests without loop-back
  double mean_unprotected = 1.0;
  /// Mean downtime reduction factor: unprotected downtime / protected.
  double downtime_reduction = 1.0;
  std::size_t requests = 0;
};

/// Availability of a single request routed on `arc` of ring `r`, with and
/// without loop-back protection on the complement arc.
double request_availability_protected(const ring::Ring& r,
                                      const ring::Arc& arc,
                                      const ComponentModel& m);
double request_availability_unprotected(const ring::Ring& r,
                                        const ring::Arc& arc,
                                        const ComponentModel& m);

/// Aggregate report over every request of the deployed network.
AvailabilityReport analyze_availability(const wdm::WdmRingNetwork& net,
                                        const ComponentModel& m = {});

}  // namespace ccov::protection
