#include "ccov/protection/simulator.hpp"

#include <algorithm>

#include "ccov/ring/routing.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::protection {

RecoveryReport simulate_loopback(const wdm::WdmRingNetwork& net,
                                 LinkFailure f, const TimingModel& t) {
  const ring::Ring& r = net.topology();
  RecoveryReport rep;
  double worst_sub_time = 0.0;
  for (const auto& sub : net.subnetworks()) {
    // Exactly one routed arc of this sub-network crosses the failed edge
    // (the routing tiles the ring); it loops back on the cycle complement.
    for (const ring::Arc& a : sub.routing) {
      if (!ring::arc_covers_edge(r, a, f.edge)) continue;
      rep.affected_requests += 1;
      rep.switching_actions += 2;  // loop-back at the two cycle end ADMs
      const std::uint64_t detour = r.size() - a.len;  // other cycle half
      const std::uint64_t extra = detour - a.len;
      rep.reroute_extra_hops += extra;
      rep.max_detour_hops = std::max(rep.max_detour_hops, detour);
      // Sub-networks recover in parallel; total time is the slowest one.
      worst_sub_time = std::max(
          worst_sub_time, t.detect_ms + 2 * t.per_switch_ms +
                              t.per_hop_ms * static_cast<double>(detour));
      break;
    }
  }
  rep.recovery_time_ms = worst_sub_time;
  return rep;
}

RecoveryReport simulate_restoration(std::uint32_t n,
                                    const wdm::Instance& instance,
                                    LinkFailure f, const TimingModel& t) {
  const ring::Ring r(n);
  RecoveryReport rep;
  std::uint64_t total_detour = 0;
  for (const auto& e : instance.demands().edges()) {
    const ring::Arc a = ring::minor_arc(r, e.u, e.v);
    if (!ring::arc_covers_edge(r, a, f.edge)) continue;
    rep.affected_requests += 1;
    rep.switching_actions += 2;  // re-provision at both endpoints
    const std::uint64_t detour = r.size() - a.len;
    rep.reroute_extra_hops += detour - a.len;
    rep.max_detour_hops = std::max(rep.max_detour_hops, detour);
    total_detour += detour;
  }
  // Restoration is sequential per request (signalling over the control
  // plane), unlike pre-planned protection.
  rep.recovery_time_ms =
      t.detect_ms +
      static_cast<double>(rep.switching_actions) * t.per_switch_ms +
      t.per_hop_ms * static_cast<double>(total_detour);
  return rep;
}

RecoveryReport simulate_whole_ring(std::uint32_t n,
                                   const wdm::Instance& instance,
                                   LinkFailure f, const TimingModel& t) {
  const ring::Ring r(n);
  RecoveryReport rep;
  // Wavelength count = max minor-routing load of the instance.
  std::vector<std::uint64_t> load(n, 0);
  for (const auto& e : instance.demands().edges()) {
    const ring::Arc a = ring::minor_arc(r, e.u, e.v);
    auto arc_edges = ring::arc_edges(r, a);
    for (auto edge : arc_edges) load[edge] += 1;
    if (ring::arc_covers_edge(r, a, f.edge)) {
      rep.affected_requests += 1;
      const std::uint64_t detour = r.size() - a.len;
      rep.reroute_extra_hops += detour - a.len;
      rep.max_detour_hops = std::max(rep.max_detour_hops, detour);
    }
  }
  const std::uint64_t wavelengths =
      *std::max_element(load.begin(), load.end());
  // Every wavelength ring switches at the two nodes adjacent to the cut.
  rep.switching_actions = 2 * wavelengths;
  rep.recovery_time_ms = t.detect_ms + 2 * t.per_switch_ms +
                         t.per_hop_ms * static_cast<double>(r.size());
  return rep;
}

}  // namespace ccov::protection
