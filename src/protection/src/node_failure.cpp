#include "ccov/protection/node_failure.hpp"

#include <algorithm>

namespace ccov::protection {

NodeRecoveryReport simulate_node_failure(const wdm::WdmRingNetwork& net,
                                         NodeFailure f,
                                         const TimingModel& t) {
  const ring::Ring& r = net.topology();
  NodeRecoveryReport rep;
  double worst_sub_time = 0.0;

  for (const auto& sub : net.subnetworks()) {
    const bool is_vertex =
        std::find(sub.cycle.begin(), sub.cycle.end(),
                  static_cast<ring::Vertex>(f.node)) != sub.cycle.end();
    if (is_vertex) {
      // The node terminates two requests of this cycle; they are lost.
      rep.lost_requests += 2;
      // The rest of the cycle survives on the arcs not incident to the
      // failed node; reconfiguring the two neighbouring ADMs isolates it.
      rep.switching_actions += 2;
      worst_sub_time =
          std::max(worst_sub_time, t.detect_ms + 2 * t.per_switch_ms);
      continue;
    }
    // Transit failure: both ring links at the node fail. The node sits
    // under exactly one routed arc of this sub-network (the routing tiles
    // the ring), and that arc loses both its links through the node; the
    // request loops back on the cycle complement, exactly as for a link
    // failure.
    const std::uint32_t e_left = f.node == 0 ? r.size() - 1 : f.node - 1;
    for (const ring::Arc& a : sub.routing) {
      if (!ring::arc_covers_edge(r, a, e_left) &&
          !ring::arc_covers_edge(r, a, f.node))
        continue;
      rep.rerouted_requests += 1;
      rep.switching_actions += 2;
      const std::uint64_t detour = r.size() - a.len;
      rep.reroute_extra_hops += detour - a.len;
      worst_sub_time = std::max(
          worst_sub_time, t.detect_ms + 2 * t.per_switch_ms +
                              t.per_hop_ms * static_cast<double>(detour));
      break;  // one arc crosses the node per sub-network
    }
  }
  rep.recovery_time_ms = worst_sub_time;
  return rep;
}

NodeRecoveryReport average_over_node_failures(const wdm::WdmRingNetwork& net,
                                              const TimingModel& t) {
  const std::uint32_t n = net.nodes();
  NodeRecoveryReport acc;
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto r = simulate_node_failure(net, NodeFailure{v}, t);
    acc.lost_requests += r.lost_requests;
    acc.rerouted_requests += r.rerouted_requests;
    acc.switching_actions += r.switching_actions;
    acc.reroute_extra_hops += r.reroute_extra_hops;
    acc.recovery_time_ms += r.recovery_time_ms;
  }
  acc.lost_requests /= n;
  acc.rerouted_requests /= n;
  acc.switching_actions /= n;
  acc.reroute_extra_hops /= n;
  acc.recovery_time_ms /= static_cast<double>(n);
  return acc;
}

}  // namespace ccov::protection
