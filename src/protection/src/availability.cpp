#include "ccov/protection/availability.hpp"

#include <algorithm>
#include <cmath>

namespace ccov::protection {

namespace {

/// Availability of a path of `links` fibre spans and `transit` pass-through
/// nodes (endpoints are accounted for separately by the caller).
double path_availability(std::uint32_t links, std::uint32_t transit,
                         const ComponentModel& m) {
  return std::pow(m.link_availability(), links) *
         std::pow(m.node_availability(), transit);
}

}  // namespace

double request_availability_protected(const ring::Ring& r,
                                      const ring::Arc& arc,
                                      const ComponentModel& m) {
  const double a_end = m.node_availability() * m.node_availability();
  const double work =
      path_availability(arc.len, arc.len >= 1 ? arc.len - 1 : 0, m);
  const std::uint32_t prot_len = r.size() - arc.len;
  const double prot =
      path_availability(prot_len, prot_len >= 1 ? prot_len - 1 : 0, m);
  return a_end * (1.0 - (1.0 - work) * (1.0 - prot));
}

double request_availability_unprotected(const ring::Ring& r,
                                        const ring::Arc& arc,
                                        const ComponentModel& m) {
  (void)r;
  const double a_end = m.node_availability() * m.node_availability();
  return a_end * path_availability(arc.len,
                                   arc.len >= 1 ? arc.len - 1 : 0, m);
}

AvailabilityReport analyze_availability(const wdm::WdmRingNetwork& net,
                                        const ComponentModel& m) {
  const ring::Ring& r = net.topology();
  AvailabilityReport rep;
  double sum_p = 0.0, sum_u = 0.0;
  double down_p = 0.0, down_u = 0.0;
  for (const auto& sub : net.subnetworks()) {
    for (const ring::Arc& a : sub.routing) {
      const double ap = request_availability_protected(r, a, m);
      const double au = request_availability_unprotected(r, a, m);
      rep.min_protected = std::min(rep.min_protected, ap);
      rep.min_unprotected = std::min(rep.min_unprotected, au);
      sum_p += ap;
      sum_u += au;
      down_p += 1.0 - ap;
      down_u += 1.0 - au;
      rep.requests += 1;
    }
  }
  if (rep.requests > 0) {
    rep.mean_protected = sum_p / static_cast<double>(rep.requests);
    rep.mean_unprotected = sum_u / static_cast<double>(rep.requests);
    rep.downtime_reduction = down_p > 0.0 ? down_u / down_p : 1.0;
  }
  return rep;
}

}  // namespace ccov::protection
