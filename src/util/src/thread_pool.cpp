#include "ccov/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace ccov::util {

void TaskGroup::wait() {
  State& s = *state_;
  std::exception_ptr err;
  {
    MutexLock lk(s.mu);
    while (s.pending != 0) s.cv.wait(s.mu);
    err = std::exchange(s.first_error, nullptr);
  }
  // Rethrow outside the lock: the handler may submit follow-up work.
  if (err) std::rethrow_exception(err);
}

std::size_t TaskGroup::pending() const {
  MutexLock lk(state_->mu);
  return state_->pending;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(default_group_.state_, std::move(task));
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> task) {
  enqueue(group.state_, std::move(task));
}

void ThreadPool::enqueue(std::shared_ptr<TaskGroup::State> group,
                         std::function<void()> task) {
  {
    MutexLock lk(group->mu);
    ++group->pending;
  }
  {
    MutexLock lk(mu_);
    queue_.push(Item{std::move(task), std::move(group)});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  {
    MutexLock lk(mu_);
    while (in_flight_ != 0) cv_idle_.wait(mu_);
  }
  // Rethrow (and clear) only the default group's error: an explicit
  // TaskGroup's failure belongs to the batch that submitted it.
  auto& state = *default_group_.state_;
  std::exception_ptr err;
  {
    MutexLock lk(state.mu);
    err = std::exchange(state.first_error, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_task_.wait(mu_);
      if (queue_.empty()) return;  // stop_ must be set
      item = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      item.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      MutexLock lk(item.group->mu);
      if (err && !item.group->first_error) item.group->first_error = err;
      if (--item.group->pending == 0) item.group->cv.notify_all();
    }
    {
      MutexLock lk(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t span = end - begin;
  const std::size_t chunks = std::min(span, pool.size() * 4);
  const std::size_t step = (span + chunks - 1) / chunks;
  TaskGroup group;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    pool.submit(group, [lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

}  // namespace ccov::util
