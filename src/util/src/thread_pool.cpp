#include "ccov/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace ccov::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be set
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      if (err && !first_error_) first_error_ = err;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t span = end - begin;
  const std::size_t chunks = std::min(span, pool.size() * 4);
  const std::size_t step = (span + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace ccov::util
