#include "ccov/util/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "ccov/util/thread_annotations.hpp"

namespace ccov::util::failpoint {

namespace {

using util::Mutex;
using util::MutexLock;

enum class Mode { kOff, kError, kDelay, kCrash };

struct Point {
  Mode mode = Mode::kOff;
  int delay_ms = 0;
  /// Firings left before the point goes quiet; -1 = unlimited.
  long long remaining = -1;
  std::uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Point> points CCOV_GUARDED_BY(mu);
  /// Lock-free fast-path guard: should_fail touches the mutex only
  /// while at least one point is armed.
  std::atomic<int> armed{0};
};

bool parse_spec(const std::string& spec, Point* out, std::string* error);

/// Split `name=spec;name=spec` and hand each parsed (name, Point) pair
/// to `apply`. Shared by configure (arms each entry), validate (no-op
/// apply) and the env bootstrap, so the three can never drift on
/// syntax. Returns false on the first malformed entry.
template <typename Apply>
bool parse_config(const std::string& config, std::string* error,
                  Apply&& apply) {
  std::size_t pos = 0;
  while (pos <= config.size()) {
    std::size_t semi = config.find(';', pos);
    if (semi == std::string::npos) semi = config.size();
    const std::string entry = config.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error) *error = "failpoint: bad entry '" + entry + "'";
      return false;
    }
    Point p;
    if (!parse_spec(entry.substr(eq + 1), &p, error)) return false;
    apply(entry.substr(0, eq), p);
  }
  return true;
}

bool configure_locked(Registry& reg, const std::string& config,
                      std::string* error);

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    // One-shot env bootstrap: CCOV_FAILPOINTS="name=spec;name=spec".
    // A malformed env entry is deliberately fatal-silent (ignored past
    // the bad segment) — fault injection must never take down a
    // production binary that happens to inherit a stale variable.
    if (const char* env = std::getenv("CCOV_FAILPOINTS")) {
      std::string err;
      (void)configure_locked(*reg, env, &err);
    }
    return reg;
  }();
  return *r;
}

bool parse_spec(const std::string& spec, Point* out, std::string* error) {
  std::string body = spec;
  long long count = -1;
  if (auto star = body.rfind('*'); star != std::string::npos) {
    const std::string n = body.substr(star + 1);
    body = body.substr(0, star);
    char* end = nullptr;
    count = std::strtoll(n.c_str(), &end, 10);
    if (n.empty() || *end != '\0' || count < 0) {
      if (error) *error = "failpoint: bad count in spec '" + spec + "'";
      return false;
    }
  }
  Point p;
  p.remaining = count;
  if (body == "off") {
    p.mode = Mode::kOff;
  } else if (body == "error") {
    p.mode = Mode::kError;
  } else if (body == "crash") {
    p.mode = Mode::kCrash;
    if (count < 0) p.remaining = 1;  // crash-once by default
  } else if (body.rfind("delay:", 0) == 0) {
    const std::string ms = body.substr(6);
    char* end = nullptr;
    const long long v = std::strtoll(ms.c_str(), &end, 10);
    if (ms.empty() || *end != '\0' || v < 0 || v > 60'000) {
      if (error) *error = "failpoint: bad delay in spec '" + spec + "'";
      return false;
    }
    p.mode = Mode::kDelay;
    p.delay_ms = static_cast<int>(v);
  } else {
    if (error) *error = "failpoint: unknown spec '" + spec + "'";
    return false;
  }
  *out = p;
  return true;
}

void set_locked(Registry& reg, const std::string& name, const Point& p)
    CCOV_REQUIRES(reg.mu) {
  auto it = reg.points.find(name);
  const bool was_armed =
      it != reg.points.end() && it->second.mode != Mode::kOff;
  const bool now_armed = p.mode != Mode::kOff;
  if (it == reg.points.end()) {
    if (!now_armed) return;
    reg.points.emplace(name, p);
  } else {
    it->second = p;
  }
  if (now_armed && !was_armed)
    reg.armed.fetch_add(1, std::memory_order_relaxed);
  else if (!now_armed && was_armed)
    reg.armed.fetch_sub(1, std::memory_order_relaxed);
}

bool configure_locked(Registry& reg, const std::string& config,
                      std::string* error) {
  return parse_config(config, error,
                      [&reg](const std::string& name, const Point& p) {
                        MutexLock lock(reg.mu);
                        set_locked(reg, name, p);
                      });
}

}  // namespace

bool compiled() {
#if defined(CCOV_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

bool set(const std::string& name, const std::string& spec,
         std::string* error) {
  Point p;
  if (!parse_spec(spec, &p, error)) return false;
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  set_locked(reg, name, p);
  return true;
}

void clear(const std::string& name) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  set_locked(reg, name, Point{});
  reg.points.erase(name);
}

void clear_all() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  for (auto& [name, p] : reg.points) {
    if (p.mode != Mode::kOff) reg.armed.fetch_sub(1, std::memory_order_relaxed);
    p = Point{};
  }
  reg.points.clear();
}

bool configure(const std::string& config, std::string* error) {
  return configure_locked(registry(), config, error);
}

bool validate(const std::string& config, std::string* error) {
  return parse_config(config, error, [](const std::string&, const Point&) {});
}

std::uint64_t hits(const std::string& name) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> names() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, p] : reg.points)
    if (p.mode != Mode::kOff && p.remaining != 0) out.push_back(name);
  return out;
}

bool should_fail(const char* name) {
  Registry& reg = registry();
  if (reg.armed.load(std::memory_order_relaxed) == 0) return false;
  Mode mode;
  int delay_ms;
  {
    MutexLock lock(reg.mu);
    auto it = reg.points.find(name);
    if (it == reg.points.end()) return false;
    Point& p = it->second;
    if (p.mode == Mode::kOff || p.remaining == 0) return false;
    if (p.remaining > 0) --p.remaining;
    ++p.hits;
    mode = p.mode;
    delay_ms = p.delay_ms;
  }
  // Side effects happen outside the lock: a delay must not serialize
  // unrelated seams, and abort under a held mutex deadlocks atexit
  // paths under sanitizers.
  switch (mode) {
    case Mode::kError:
      return true;
    case Mode::kDelay:
      if (delay_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
    case Mode::kCrash:
      std::abort();
    case Mode::kOff:
      break;
  }
  return false;
}

}  // namespace ccov::util::failpoint
