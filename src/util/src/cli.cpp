#include "ccov/util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace ccov::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(std::move(a));
      continue;
    }
    a.erase(0, 2);
    auto eq = a.find('=');
    if (eq != std::string::npos) {
      const std::string key = a.substr(0, eq);
      const std::string value = a.substr(eq + 1);
      flags_[key] = value;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      const std::string value = argv[i + 1];
      ++i;
      flags_[a] = value;
    } else {
      flags_[a] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("--" + name + ": invalid integer '" + s + "'");
  if (errno == ERANGE)
    throw std::out_of_range("--" + name + ": integer out of range '" + s +
                            "'");
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("--" + name + ": invalid number '" + s + "'");
  if (errno == ERANGE)
    throw std::out_of_range("--" + name + ": number out of range '" + s +
                            "'");
  return v;
}

}  // namespace ccov::util
