#include "ccov/util/csv.hpp"

#include <stdexcept>

namespace ccov::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string r = "\"";
  for (char ch : s) {
    if (ch == '"') r += '"';
    r += ch;
  }
  r += '"';
  return r;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace ccov::util
