#include "ccov/util/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ccov::util::json {

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

bool Reader::parse(Value* out, std::string* error) {
  skip_ws();
  if (!value(out, error)) return false;
  skip_ws();
  if (p_ != end_) {
    *error = "trailing characters after JSON value";
    return false;
  }
  return true;
}

void Reader::skip_ws() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
}

bool Reader::literal(const char* word, std::string* error) {
  for (const char* w = word; *w; ++w, ++p_) {
    if (p_ == end_ || *p_ != *w) {
      *error = std::string("expected '") + word + "'";
      return false;
    }
  }
  return true;
}

bool Reader::value(Value* out, std::string* error) {
  if (p_ == end_) {
    *error = "unexpected end of input";
    return false;
  }
  switch (*p_) {
    case '{':
    case '[': {
      if (depth_ >= kMaxDepth) {
        *error = "nesting deeper than " + std::to_string(kMaxDepth) +
                 " levels";
        return false;
      }
      ++depth_;
      const bool ok =
          *p_ == '{' ? object(out, error) : array(out, error);
      --depth_;
      return ok;
    }
    case '"':
      out->type = Value::Type::kString;
      return string(&out->string, error);
    case 't':
      out->type = Value::Type::kBool;
      out->boolean = true;
      return literal("true", error);
    case 'f':
      out->type = Value::Type::kBool;
      out->boolean = false;
      return literal("false", error);
    case 'n':
      out->type = Value::Type::kNull;
      return literal("null", error);
    default:
      return number(out, error);
  }
}

bool Reader::object(Value* out, std::string* error) {
  out->type = Value::Type::kObject;
  // Protocol objects are small (a request carries 2-6 fields): one
  // up-front slab beats the 1-2-4 growth copies on every parse.
  out->object.reserve(4);
  ++p_;  // '{'
  skip_ws();
  if (p_ != end_ && *p_ == '}') {
    ++p_;
    return true;
  }
  for (;;) {
    skip_ws();
    std::string key;
    if (p_ == end_ || *p_ != '"' || !string(&key, error)) {
      if (error->empty()) *error = "expected object key";
      return false;
    }
    skip_ws();
    if (p_ == end_ || *p_ != ':') {
      *error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++p_;
    skip_ws();
    Value val;
    if (!value(&val, error)) return false;
    out->object.emplace_back(std::move(key), std::move(val));
    skip_ws();
    if (p_ != end_ && *p_ == ',') {
      ++p_;
      continue;
    }
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    *error = "expected ',' or '}' in object";
    return false;
  }
}

bool Reader::array(Value* out, std::string* error) {
  out->type = Value::Type::kArray;
  ++p_;  // '['
  skip_ws();
  if (p_ != end_ && *p_ == ']') {
    ++p_;
    return true;
  }
  for (;;) {
    skip_ws();
    Value val;
    if (!value(&val, error)) return false;
    out->array.push_back(std::move(val));
    skip_ws();
    if (p_ != end_ && *p_ == ',') {
      ++p_;
      continue;
    }
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    *error = "expected ',' or ']' in array";
    return false;
  }
}

bool Reader::string(std::string* out, std::string* error) {
  ++p_;  // '"'
  out->clear();
  while (p_ != end_ && *p_ != '"') {
    char c = *p_++;
    if (c == '\\') {
      if (p_ == end_) break;
      const char esc = *p_++;
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        default:
          *error = "unsupported escape sequence";
          return false;
      }
    }
    out->push_back(c);
  }
  if (p_ == end_) {
    *error = "unterminated string";
    return false;
  }
  ++p_;  // closing '"'
  return true;
}

bool Reader::number(Value* out, std::string* error) {
  const char* start = p_;
  if (p_ != end_ && *p_ == '-') ++p_;
  while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
  if (p_ == start || (*start == '-' && p_ == start + 1)) {
    *error = "invalid number";
    return false;
  }
  if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
    *error = "non-integer numbers are not part of the serve protocol";
    return false;
  }
  errno = 0;
  out->type = Value::Type::kInt;
  out->integer = std::strtoll(std::string(start, p_).c_str(), nullptr, 10);
  if (errno == ERANGE) {
    *error = "integer out of range";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void append_escaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_escaped(&out, s);
  return out;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_.push_back('{');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_.push_back('[');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
  out_.push_back('"');
  out_ += k;
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  // to_chars into a stack buffer: responses render dozens of integers
  // per line, and a std::to_string temporary each would dominate the
  // serve hot path. Bytes are identical either way.
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 20 digits always fit an int64
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value_string(std::string_view v) {
  comma_for_value();
  append_escaped(&out_, v);
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view v) {
  comma_for_value();
  out_ += v;
  return *this;
}

}  // namespace ccov::util::json
