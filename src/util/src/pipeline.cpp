#include "ccov/util/pipeline.hpp"

#include "ccov/util/failpoint.hpp"

#include <algorithm>
#include <utility>

namespace ccov::util {

OrderedPipeline::OrderedPipeline(std::size_t depth)
    : depth_(std::max<std::size_t>(1, depth)), worker_([this] { run(); }) {}

OrderedPipeline::~OrderedPipeline() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

bool OrderedPipeline::enqueue(std::function<bool()> job) {
  // Fault-injection seam, delay-only: stalling a submit back-pressures
  // the parser thread exactly like a slow worker would. Submits are
  // never "failed" — ordering guarantees would be meaningless if jobs
  // could vanish — so an error spec is deliberately ignored.
  (void)CCOV_FAILPOINT("pipeline_submit");
  MutexLock lk(mu_);
  while (!dead_ && outstanding() >= depth_) space_cv_.wait(mu_);
  if (dead_) return false;
  queue_.push_back(std::move(job));
  work_cv_.notify_all();
  return true;
}

bool OrderedPipeline::drain() {
  MutexLock lk(mu_);
  while (!dead_ && (!queue_.empty() || running_)) space_cv_.wait(mu_);
  return !dead_;
}

void OrderedPipeline::run() {
  // Two scoped critical sections per iteration instead of one lock
  // juggled with unlock()/lock() around the job: the thread-safety
  // analysis can prove each section, and the job provably runs
  // unlocked. Lock hand-off points are identical to the old code.
  for (;;) {
    std::function<bool()> job;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ with nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      running_ = true;
    }
    bool ok = false;
    try {
      ok = job();
    } catch (...) {
      ok = false;
    }
    {
      MutexLock lk(mu_);
      running_ = false;
      if (!ok) {
        dead_ = true;
        queue_.clear();
      }
    }
    space_cv_.notify_all();
  }
}

}  // namespace ccov::util
