#include "ccov/util/pipeline.hpp"

#include "ccov/util/failpoint.hpp"

#include <algorithm>
#include <utility>

namespace ccov::util {

OrderedPipeline::OrderedPipeline(std::size_t depth)
    : depth_(std::max<std::size_t>(1, depth)), worker_([this] { run(); }) {}

OrderedPipeline::~OrderedPipeline() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

bool OrderedPipeline::enqueue(std::function<bool()> job) {
  // Fault-injection seam, delay-only: stalling a submit back-pressures
  // the parser thread exactly like a slow worker would. Submits are
  // never "failed" — ordering guarantees would be meaningless if jobs
  // could vanish — so an error spec is deliberately ignored.
  (void)CCOV_FAILPOINT("pipeline_submit");
  std::unique_lock<std::mutex> lk(mu_);
  space_cv_.wait(lk, [&] { return dead_ || outstanding() < depth_; });
  if (dead_) return false;
  queue_.push_back(std::move(job));
  work_cv_.notify_all();
  return true;
}

bool OrderedPipeline::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  space_cv_.wait(lk, [&] { return dead_ || (queue_.empty() && !running_); });
  return !dead_;
}

void OrderedPipeline::run() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ with nothing left to do
    std::function<bool()> job = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lk.unlock();
    bool ok = false;
    try {
      ok = job();
    } catch (...) {
      ok = false;
    }
    lk.lock();
    running_ = false;
    if (!ok) {
      dead_ = true;
      queue_.clear();
    }
    space_cv_.notify_all();
  }
}

}  // namespace ccov::util
