#include "ccov/util/shm_ring.hpp"

#include "ccov/util/failpoint.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#else
#include <chrono>
#include <thread>
#endif

namespace ccov::util {

namespace {

#if defined(__x86_64__) || defined(__i386__)
inline void cpu_relax() { __builtin_ia32_pause(); }
#elif defined(__aarch64__)
inline void cpu_relax() { asm volatile("yield" ::: "memory"); }
#else
inline void cpu_relax() {}
#endif

/// Busy-spinning only ever helps when the peer can make progress on
/// another core; on a single-CPU machine it just burns the peer's
/// timeslice before every escalation.
bool spin_helps() {
  static const bool multicore = std::thread::hardware_concurrency() > 1;
  return multicore;
}

#if defined(__linux__)
// Cross-process futexes: deliberately *not* FUTEX_PRIVATE_FLAG — the
// two sides of a ring may live in different processes mapping the same
// shared segment.
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                int timeout_ms) {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
    tsp = &ts;
  }
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
            expected, tsp, nullptr, 0);
}

void futex_wake(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}
#else
// Portable fallback: a short sleep-poll. Correctness never depends on
// the wait primitive — only wake-up latency does.
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                int timeout_ms) {
  (void)timeout_ms;
  if (word->load(std::memory_order_acquire) == expected)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
}

void futex_wake(std::atomic<std::uint32_t>*) {}
#endif

/// Sleep on `seq` until it moves past `expected`, a waiter-advertised
/// wake arrives, or the timeout elapses. The seq-before-recheck order
/// in the callers makes lost wake-ups impossible: either the sleeper
/// sees the new seq (futex returns EAGAIN immediately), or the
/// publisher sees data_waiters/space_waiters != 0 and wakes.
void wait_on(std::atomic<std::uint32_t>* seq, std::atomic<std::uint32_t>* w,
             std::uint32_t expected, int timeout_ms) {
  w->fetch_add(1, std::memory_order_seq_cst);
  if (seq->load(std::memory_order_seq_cst) == expected)
    futex_wait(seq, expected, timeout_ms);
  w->fetch_sub(1, std::memory_order_seq_cst);
}

/// Publish on `seq` and wake sleepers if any advertised themselves.
/// The seq_cst bump orders the cursor store before the waiters load
/// (StoreLoad), pairing with the seq_cst waiter increment in wait_on.
void publish(std::atomic<std::uint32_t>* seq, std::atomic<std::uint32_t>* w) {
  seq->fetch_add(1, std::memory_order_seq_cst);
  if (w->load(std::memory_order_seq_cst) != 0) futex_wake(seq);
}

}  // namespace

bool ShmByteRing::valid_capacity(std::size_t capacity) {
  return capacity >= 64 && capacity <= (1u << 30) &&
         (capacity & (capacity - 1)) == 0;
}

std::size_t ShmByteRing::region_bytes(std::size_t capacity) {
  return sizeof(Control) + capacity;
}

ShmByteRing ShmByteRing::init(void* mem, std::size_t capacity) {
  if (!mem || !valid_capacity(capacity)) return {};
  auto* ctrl = new (mem) Control();
  ctrl->capacity = static_cast<std::uint32_t>(capacity);
  ctrl->head.store(0, std::memory_order_relaxed);
  ctrl->tail.store(0, std::memory_order_relaxed);
  ctrl->data_seq.store(0, std::memory_order_relaxed);
  ctrl->data_waiters.store(0, std::memory_order_relaxed);
  ctrl->space_seq.store(0, std::memory_order_relaxed);
  ctrl->space_waiters.store(0, std::memory_order_release);
  return {ctrl, static_cast<char*>(mem) + sizeof(Control)};
}

ShmByteRing ShmByteRing::attach(void* mem, std::size_t expected_capacity) {
  if (!mem || !valid_capacity(expected_capacity)) return {};
  auto* ctrl = static_cast<Control*>(mem);
  if (ctrl->capacity != expected_capacity) return {};
  return {ctrl, static_cast<char*>(mem) + sizeof(Control)};
}

std::size_t ShmByteRing::readable() const {
  const std::uint64_t head = ctrl_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = ctrl_->tail.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(head - tail);
}

std::size_t ShmByteRing::writable() const {
  const std::uint64_t head = ctrl_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
  return ctrl_->capacity - static_cast<std::size_t>(head - tail);
}

std::size_t ShmByteRing::try_write(const char* data, std::size_t n) {
  Control* c = ctrl_;
  const std::size_t cap = c->capacity;
  // The producer owns head (relaxed); the acquire on tail makes the
  // consumer's finished reads happen-before our overwrite of the space.
  const std::uint64_t head = c->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = c->tail.load(std::memory_order_acquire);
  const std::size_t free = cap - static_cast<std::size_t>(head - tail);
  const std::size_t m = std::min(n, free);
  if (m == 0) return 0;
  const std::size_t at = static_cast<std::size_t>(head) & (cap - 1);
  const std::size_t first = std::min(m, cap - at);
  std::memcpy(data_ + at, data, first);
  if (m > first) std::memcpy(data_, data + first, m - first);
  // Release-publish the bytes, then signal: a consumer that observes
  // the new head also observes the copied data.
  c->head.store(head + m, std::memory_order_release);
  publish(&c->data_seq, &c->data_waiters);
  return m;
}

std::size_t ShmByteRing::try_read(char* buf, std::size_t n) {
  Control* c = ctrl_;
  const std::size_t cap = c->capacity;
  const std::uint64_t tail = c->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = c->head.load(std::memory_order_acquire);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t m = std::min(n, avail);
  if (m == 0) return 0;
  const std::size_t at = static_cast<std::size_t>(tail) & (cap - 1);
  const std::size_t first = std::min(m, cap - at);
  std::memcpy(buf, data_ + at, first);
  if (m > first) std::memcpy(buf + first, data_, m - first);
  c->tail.store(tail + m, std::memory_order_release);
  publish(&c->space_seq, &c->space_waiters);
  return m;
}

bool ShmByteRing::wait_readable(int timeout_ms) {
  // Fault-injection seam, delay-only: a delay here widens the
  // sleep/publish race windows chaos tests probe. "Failing" a wait has
  // no meaning, so an error spec is deliberately ignored.
  (void)CCOV_FAILPOINT("futex_wait");
  Control* c = ctrl_;
  if (spin_helps()) {
    for (int i = 0; i < kSpinIterations; ++i) {
      if (readable() > 0) return true;
      cpu_relax();
    }
  }
  // Yield phase: hand the core to the (runnable) peer — on one CPU
  // this is the whole ping-pong; on many it covers the window where
  // the peer was preempted mid-publish.
  for (int i = 0; i < kYieldIterations; ++i) {
    if (readable() > 0) return true;
    std::this_thread::yield();
  }
  const std::uint32_t seq = c->data_seq.load(std::memory_order_seq_cst);
  if (readable() > 0) return true;
  wait_on(&c->data_seq, &c->data_waiters, seq, timeout_ms);
  return readable() > 0;
}

bool ShmByteRing::wait_writable(int timeout_ms) {
  (void)CCOV_FAILPOINT("futex_wait");  // delay-only, as in wait_readable
  Control* c = ctrl_;
  if (spin_helps()) {
    for (int i = 0; i < kSpinIterations; ++i) {
      if (writable() > 0) return true;
      cpu_relax();
    }
  }
  for (int i = 0; i < kYieldIterations; ++i) {
    if (writable() > 0) return true;
    std::this_thread::yield();
  }
  const std::uint32_t seq = c->space_seq.load(std::memory_order_seq_cst);
  if (writable() > 0) return true;
  wait_on(&c->space_seq, &c->space_waiters, seq, timeout_ms);
  return writable() > 0;
}

void ShmByteRing::wake_all() {
  Control* c = ctrl_;
  c->data_seq.fetch_add(1, std::memory_order_seq_cst);
  c->space_seq.fetch_add(1, std::memory_order_seq_cst);
  futex_wake(&c->data_seq);
  futex_wake(&c->space_seq);
}

void ShmByteRing::reset() {
  ctrl_->head.store(0, std::memory_order_relaxed);
  ctrl_->tail.store(0, std::memory_order_release);
  wake_all();
}

}  // namespace ccov::util
