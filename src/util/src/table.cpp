#include "ccov/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ccov::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header row");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

namespace {

std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        // RFC 8259: every control character below 0x20 must be escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      os << json_string(headers_[c]) << ": " << json_string(rows_[r][c]);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t k = row[c].size(); k < width[c]; ++k) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  if (!title.empty()) os << "== " << title << " ==\n";
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t k = 0; k < width[c] + 2; ++k) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace ccov::util
