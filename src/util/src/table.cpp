#include "ccov/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ccov::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header row");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t k = row[c].size(); k < width[c]; ++k) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  if (!title.empty()) os << "== " << title << " ==\n";
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t k = 0; k < width[c] + 2; ++k) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace ccov::util
