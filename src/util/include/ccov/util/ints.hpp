#pragma once
/// \file ints.hpp
/// Small integer helpers used throughout the library.

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace ccov::util {

/// Ceiling division for non-negative integers: ceil(a / b).
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  assert(b > 0);
  return static_cast<T>((a + b - 1) / b);
}

/// Mathematical (always non-negative) modulus: result in [0, m).
template <typename T>
constexpr T mod_pos(T a, T m) {
  static_assert(std::is_integral_v<T>);
  assert(m > 0);
  T r = static_cast<T>(a % m);
  return r < 0 ? static_cast<T>(r + m) : r;
}

/// Greatest common divisor (non-negative inputs).
template <typename T>
constexpr T gcd_of(T a, T b) {
  while (b != 0) {
    T t = static_cast<T>(a % b);
    a = b;
    b = t;
  }
  return a;
}

/// n choose 2, without overflow for n up to ~2^32 when T = uint64_t.
template <typename T>
constexpr T choose2(T n) {
  return n < 2 ? T{0} : static_cast<T>(n * (n - 1) / 2);
}

}  // namespace ccov::util
