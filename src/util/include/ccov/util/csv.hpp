#pragma once
/// \file csv.hpp
/// Minimal CSV writer: experiment harnesses can dump machine-readable rows
/// next to the human-readable tables (used to plot the "figures").

#include <fstream>
#include <string>
#include <vector>

namespace ccov::util {

class CsvWriter {
 public:
  /// Opens \p path for writing and emits the header line.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  template <typename... Ts>
  void write(const Ts&... vals) {
    write_row({cell(vals)...});
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  template <typename T>
  static std::string cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace ccov::util
