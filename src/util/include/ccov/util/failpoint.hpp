#pragma once
/// \file failpoint.hpp
/// FailPoint: a tiny fault-injection registry. Production seams ask
/// `CCOV_FAILPOINT("name")` at the moment they could fail for real —
/// a socket read, an fsync, a rename — and tests (or the
/// CCOV_FAILPOINTS environment variable) arm those names with a
/// behaviour:
///
///   off        never fires (the default for unknown names)
///   error      the seam fails: CCOV_FAILPOINT evaluates true
///   delay:MS   sleep MS milliseconds, then proceed normally
///   crash      abort the process (fires once, then disarms)
///
/// Any spec may carry a `*N` suffix to fire only on the first N
/// evaluations ("error*2" fails twice then goes quiet); `crash`
/// defaults to `*1`. Multiple points are configured at once with the
/// env syntax `CCOV_FAILPOINTS="snapshot_fsync=error;net_read=delay:5"`,
/// parsed on first use.
///
/// Cost model: the macro compiles to the literal `(false)` unless the
/// build sets -DCCOV_FAILPOINTS_ENABLED (CMake option CCOV_FAILPOINTS),
/// so release binaries carry no branch at the seams. The registry and
/// test API below are compiled unconditionally — tests probe
/// `failpoint::compiled()` and skip seam-dependent assertions when the
/// macro is inert.
///
/// Seams are free to ignore a `true` return when "fail" makes no sense
/// for them (the futex-wait and pipeline-submit seams honour only
/// delay mode); each seam documents its interpretation.

#include <cstdint>
#include <string>
#include <vector>

namespace ccov::util::failpoint {

/// True when the binary was configured with -DCCOV_FAILPOINTS=ON,
/// i.e. the CCOV_FAILPOINT macro at the seams is live.
bool compiled();

/// Arm one failpoint. `spec` is off | error | delay:MS | crash, with
/// an optional *N count suffix. Returns false (and sets *error) on a
/// malformed spec; the point keeps its previous state.
bool set(const std::string& name, const std::string& spec,
         std::string* error = nullptr);

/// Disarm one point / every point. Hit counts reset too.
void clear(const std::string& name);
void clear_all();

/// Parse a full `name=spec;name=spec` configuration string (the
/// CCOV_FAILPOINTS env format). Empty segments are ignored. Returns
/// false on the first malformed entry; earlier entries stay armed.
bool configure(const std::string& config, std::string* error = nullptr);

/// Parse-only check of a `name=spec;name=spec` configuration string:
/// arms nothing, touches no registry state. Returns false (and sets
/// *error to a one-line diagnostic) on the first malformed entry.
/// Servers call this at startup to fail fast on a mistyped
/// CCOV_FAILPOINTS instead of silently ignoring it — the env bootstrap
/// itself stays silent so a stale variable can never take down a
/// production binary that does not opt into validation.
bool validate(const std::string& config, std::string* error = nullptr);

/// Times `name` fired (performed its action) since it was last set.
std::uint64_t hits(const std::string& name);

/// Names currently armed (any mode other than off/expired counts).
std::vector<std::string> names();

/// Evaluate the point: performs delay/crash side effects and returns
/// true when the seam should fail (error mode). Unknown or exhausted
/// names return false without side effects. This is what the
/// CCOV_FAILPOINT macro expands to in instrumented builds; tests may
/// also call it directly regardless of how the binary was compiled.
bool should_fail(const char* name);

}  // namespace ccov::util::failpoint

#if defined(CCOV_FAILPOINTS_ENABLED)
#define CCOV_FAILPOINT(name) (::ccov::util::failpoint::should_fail(name))
#else
#define CCOV_FAILPOINT(name) (false)
#endif
