#pragma once
/// \file pipeline.hpp
/// OrderedPipeline: a single worker thread that executes jobs strictly
/// in submission order, with a bounded amount of read-ahead. The
/// producer keeps going while the worker runs — enqueue only blocks
/// once `depth` jobs are outstanding — which is exactly the
/// double-buffering the serve loop uses to parse the next batch while
/// the current one solves. A job returns false to poison the pipeline
/// (e.g. the peer hung up): queued jobs are dropped and every later
/// enqueue/drain reports dead, so the producer can stop cleanly.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>

#include "ccov/util/thread_annotations.hpp"

namespace ccov::util {

class OrderedPipeline {
 public:
  /// \p depth outstanding jobs (running + queued) before enqueue
  /// blocks; 2 = classic double buffering (one running, one ready).
  explicit OrderedPipeline(std::size_t depth = 2);

  /// Drains nothing: remaining queued jobs still execute (in order)
  /// before the worker exits, unless the pipeline died.
  ~OrderedPipeline();

  OrderedPipeline(const OrderedPipeline&) = delete;
  OrderedPipeline& operator=(const OrderedPipeline&) = delete;

  /// Queue a job behind the in-flight ones, blocking while the buffer
  /// is full. Returns false once the pipeline is dead (a job returned
  /// false or threw); the job is then not queued.
  bool enqueue(std::function<bool()> job);

  /// Block until every queued job has run. Returns false if the
  /// pipeline died.
  bool drain();

 private:
  std::size_t outstanding() const CCOV_REQUIRES(mu_) {
    return queue_.size() + (running_ ? 1 : 0);
  }

  void run();

  const std::size_t depth_;
  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any space_cv_;
  std::deque<std::function<bool()>> queue_ CCOV_GUARDED_BY(mu_);
  bool running_ CCOV_GUARDED_BY(mu_) = false;
  bool dead_ CCOV_GUARDED_BY(mu_) = false;
  bool stop_ CCOV_GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace ccov::util
