#pragma once
/// \file timer.hpp
/// Monotonic wall-clock stopwatch for coarse measurements in table harnesses
/// (google-benchmark is used for the statistically careful measurements),
/// plus the two cooperative-interruption primitives the serve stack
/// threads into the solver hot loop: a steady_clock Deadline and an
/// atomic CancelToken.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ccov::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Wall-clock budget for one piece of work. Default-constructed is
/// "unset": never expires, costs one bool test to check. Copyable —
/// a deadline is a value, fixed at the moment the work was accepted
/// (queue wait counts against it, which is what makes load shedding
/// possible downstream).
class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline `ms` milliseconds from now. ms <= 0 yields an unset
  /// deadline (the protocol's deadline_ms=0 means "no deadline").
  static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.at_ = clock::now() + std::chrono::milliseconds(ms);
      d.set_ = true;
    }
    return d;
  }

  static Deadline at(clock::time_point tp) {
    Deadline d;
    d.at_ = tp;
    d.set_ = true;
    return d;
  }

  bool set() const { return set_; }

  /// True when a set deadline has passed; an unset deadline never
  /// expires. The clock read happens only when set.
  bool expired() const { return set_ && clock::now() >= at_; }

  /// Milliseconds until expiry (<= 0 when expired). Meaningless on an
  /// unset deadline; callers check set() first.
  std::int64_t remaining_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(at_ -
                                                                 clock::now())
        .count();
  }

 private:
  clock::time_point at_{};
  bool set_ = false;
};

/// One-way cancellation flag, safe to set from a signal handler (the
/// store is a lock-free atomic). The solver polls it every few
/// thousand nodes; serve installs one per server so SIGTERM bounds
/// shutdown latency regardless of how deep a search is.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Async-signal-safe.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Tests re-arm a shared token between cases; production never does.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace ccov::util
