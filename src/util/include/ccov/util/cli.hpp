#pragma once
/// \file cli.hpp
/// Tiny flag parser (--name=value / --name value / --flag) shared by the
/// example and table executables.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccov::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  /// Numeric accessors parse strictly: a present flag whose value is not
  /// a full valid number throws std::invalid_argument, and one outside
  /// the representable range throws std::out_of_range — callers report a
  /// one-line error instead of silently reading 0 from garbage.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ccov::util
