#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool with a parallel_for helper. Benchmark
/// sweeps and property tests over many ring sizes use it to exploit all
/// cores; the combinatorial kernels themselves stay single-threaded and
/// deterministic.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccov::util {

class ThreadPool {
 public:
  /// \p threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (they are run detached from any
  /// future; exceptions would terminate).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool, blocking until done.
/// Indices are chunked to limit queue overhead.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ccov::util
