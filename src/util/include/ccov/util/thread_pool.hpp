#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool with a parallel_for helper. Benchmark
/// sweeps and property tests over many ring sizes use it to exploit all
/// cores; the combinatorial kernels themselves stay single-threaded and
/// deterministic.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccov::util {

class ThreadPool {
 public:
  /// \p threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. A task that throws does not terminate the process:
  /// the first exception is captured and rethrown from the next
  /// wait_idle() on the submitting side.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the
  /// first exception any of them raised (if one did). The pool stays
  /// usable afterwards — the stored exception is cleared on rethrow.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Run fn(i) for i in [begin, end) across the pool, blocking until done.
/// Indices are chunked to limit queue overhead. An exception thrown by
/// fn propagates to the caller (remaining chunks still run to
/// completion; only the first exception is rethrown).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ccov::util
