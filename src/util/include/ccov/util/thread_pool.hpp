#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool with a parallel_for helper. Benchmark
/// sweeps, property tests and the engine's BatchRunner share one pool to
/// exploit all cores; the combinatorial kernels themselves stay
/// single-threaded and deterministic.
///
/// Concurrent callers are isolated through TaskGroup completion tokens:
/// each batch waits only for its own tasks and observes only its own
/// exceptions, so a long-running serve loop can fan independent batches
/// across one shared pool without cross-talk.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "ccov/util/thread_annotations.hpp"

namespace ccov::util {

class ThreadPool;

/// Completion token for one batch of tasks. Submit tasks against a group
/// with ThreadPool::submit(group, task); group.wait() then blocks until
/// exactly those tasks finished and rethrows the first exception *this
/// batch* raised — never another caller's. A TaskGroup may be reused for
/// further batches after wait() returns.
class TaskGroup {
 public:
  TaskGroup() : state_(std::make_shared<State>()) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Block until every task submitted against this group has finished,
  /// then rethrow the first exception one of them raised (if any). The
  /// stored exception is cleared on rethrow, so the group stays usable.
  void wait();

  /// Tasks submitted against this group that have not yet completed.
  std::size_t pending() const;

 private:
  friend class ThreadPool;
  struct State {
    Mutex mu;
    std::condition_variable_any cv;
    std::size_t pending CCOV_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error CCOV_GUARDED_BY(mu);
  };
  std::shared_ptr<State> state_;
};

class ThreadPool {
 public:
  /// \p threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task against the pool's default group. A task that throws
  /// does not terminate the process: the first exception is captured and
  /// rethrown from the next wait_idle().
  void submit(std::function<void()> task);

  /// Enqueue a task against \p group; completion and exceptions are
  /// routed to that group alone (see TaskGroup::wait).
  void submit(TaskGroup& group, std::function<void()> task);

  /// Block until every submitted task (all groups) has finished, then
  /// rethrow the first exception raised by a *default-group* task, if
  /// one did. Batches that want isolation from other callers should use
  /// an explicit TaskGroup instead. The pool stays usable afterwards —
  /// the stored exception is cleared on rethrow.
  void wait_idle();

 private:
  struct Item {
    std::function<void()> fn;
    std::shared_ptr<TaskGroup::State> group;
  };

  void enqueue(std::shared_ptr<TaskGroup::State> group,
               std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<Item> queue_ CCOV_GUARDED_BY(mu_);
  std::condition_variable_any cv_task_;
  std::condition_variable_any cv_idle_;
  std::size_t in_flight_ CCOV_GUARDED_BY(mu_) = 0;
  bool stop_ CCOV_GUARDED_BY(mu_) = false;
  TaskGroup default_group_;
};

/// Run fn(i) for i in [begin, end) across the pool, blocking until done.
/// Indices are chunked to limit queue overhead. An exception thrown by
/// fn propagates to the caller (remaining chunks still run to
/// completion; only the first exception is rethrown). Uses a private
/// TaskGroup, so concurrent parallel_for calls on one shared pool
/// neither wait on each other nor observe each other's exceptions.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ccov::util
