#pragma once
/// \file table.hpp
/// Aligned console table printer. Every experiment harness in bench/ emits
/// its rows through this class so the reproduced "paper tables" share one
/// consistent format.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccov::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  /// Render with column alignment, a header rule and an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Emit the header plus every row as RFC-4180-style CSV (cells holding
  /// commas, quotes or newlines are quoted). Machine-readable companion
  /// to print(); `ccov sweep --format csv` goes through here.
  void write_csv(std::ostream& os) const;

  /// Emit the rows as a JSON array of objects keyed by the headers. All
  /// values are emitted as JSON strings, keeping the output byte-stable
  /// regardless of how a cell was formatted.
  void write_json(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }
  static std::string format_double(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccov::util
