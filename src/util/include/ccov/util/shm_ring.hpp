#pragma once
/// \file shm_ring.hpp
/// ShmByteRing: a lock-free single-producer/single-consumer byte ring
/// designed to live inside a shared-memory segment (but equally usable
/// over any plain buffer — the tests hammer it across two threads).
///
/// Layout and protocol:
///
///  - a standard-layout Control block at the front of the region holds
///    the capacity plus the producer/consumer cursors; the data buffer
///    follows immediately. Head and tail are *monotonic byte counts*
///    (never wrapped), each alone on its own cache line so publishing
///    one side never invalidates the other side's line.
///  - capacity is a power of two, so `cursor & (capacity - 1)` is the
///    buffer offset and `head - tail` is the fill level, correct across
///    wrap-around.
///  - the hot path is wait-free and syscall-free: try_write/try_read
///    are one acquire load of the remote cursor, a copy (at most two
///    memcpy for the wrap), and one release store of the own cursor.
///  - blocking is cooperative and off the hot path, escalating in
///    three phases: a brief busy spin (skipped outright on a single
///    CPU, where spinning only steals the peer's timeslice), a bounded
///    run of sched-yields (on one CPU a yield hands the core straight
///    to the runnable peer — the fastest possible ping-pong), then a
///    futex sleep (Linux; a short nanosleep poll elsewhere) keyed to a
///    per-direction sequence word. Producers bump the sequence on
///    every publish and issue the (cold) wake syscall only when a
///    waiter advertised itself, so a streaming steady state never
///    enters the kernel.
///
/// One process (or thread) must own the producer role and one the
/// consumer role; the two may come from different processes mapping
/// the same region, which is exactly how the engine's shared-memory
/// transport uses a pair of these.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ccov::util {

/// View over one SPSC byte ring in a caller-provided memory region.
/// Copyable — copies alias the same ring; the region must outlive
/// every view. A default-constructed or failed-attach view is !valid().
class ShmByteRing {
 public:
  /// Cursor/sequence block at the front of a ring region. Standard
  /// layout and lock-free atomics only: the whole point is that two
  /// processes map this block.
  struct Control {
    std::uint32_t capacity = 0;  ///< data bytes; immutable after init
    /// Producer cursor: total bytes ever written (monotonic).
    alignas(64) std::atomic<std::uint64_t> head;
    /// Consumer cursor: total bytes ever read (monotonic).
    alignas(64) std::atomic<std::uint64_t> tail;
    /// Bumped by the producer on every publish; the consumer's futex
    /// word. data_waiters is nonzero while a consumer may be sleeping.
    alignas(64) std::atomic<std::uint32_t> data_seq;
    std::atomic<std::uint32_t> data_waiters;
    /// Bumped by the consumer on every consume; the producer's futex
    /// word (backpressure: the ring was full and drained).
    alignas(64) std::atomic<std::uint32_t> space_seq;
    std::atomic<std::uint32_t> space_waiters;
  };

  /// Busy-spin iterations before a blocking wait escalates (multicore
  /// only — on one CPU spinning just delays the peer).
  static constexpr int kSpinIterations = 512;
  /// sched-yield iterations between the spin and the futex sleep.
  static constexpr int kYieldIterations = 32;

  ShmByteRing() = default;

  /// True when `capacity` can back a ring: a power of two >= 64.
  static bool valid_capacity(std::size_t capacity);

  /// Bytes of raw memory a ring of `capacity` data bytes needs.
  static std::size_t region_bytes(std::size_t capacity);

  /// Construct a fresh ring over `mem` (at least region_bytes(capacity)
  /// bytes, suitably aligned for Control). Returns an invalid view when
  /// the capacity is rejected by valid_capacity.
  static ShmByteRing init(void* mem, std::size_t capacity);

  /// Attach to a ring someone else initialized. Validates the stored
  /// capacity against the expected one — a torn or foreign region
  /// yields an invalid view instead of undefined behaviour.
  static ShmByteRing attach(void* mem, std::size_t expected_capacity);

  bool valid() const { return ctrl_ != nullptr; }
  std::size_t capacity() const { return ctrl_ ? ctrl_->capacity : 0; }

  /// Bytes ready to read (consumer view; producer may add more at any
  /// moment, never remove).
  std::size_t readable() const;

  /// Free space (producer view; consumer may free more at any moment).
  std::size_t writable() const;

  /// Copy up to `n` bytes in. Returns the number accepted (0 when
  /// full); publishes with release and wakes a sleeping consumer.
  std::size_t try_write(const char* data, std::size_t n);

  /// Copy up to `n` bytes out. Returns the number delivered (0 when
  /// empty); frees the space with release and wakes a sleeping producer.
  std::size_t try_read(char* buf, std::size_t n);

  /// Block until data is readable or ~timeout_ms elapsed (-1 = no
  /// deadline). Returns readable() > 0 — a false return is a timeout,
  /// after which callers re-check their own exit conditions (shutdown,
  /// peer death) and call again. Spurious early returns are allowed.
  bool wait_readable(int timeout_ms);

  /// Blocking counterpart for a full ring (backpressure).
  bool wait_writable(int timeout_ms);

  /// Wake every sleeper on both directions without transferring bytes —
  /// teardown uses this so a blocked peer re-checks shutdown promptly.
  void wake_all();

  /// Empty the ring for a new session, keeping the capacity. Every
  /// store is atomic — unlike a fresh init(), this may overlap a
  /// concurrent wake_all() (a shutdown racing a session recycle)
  /// without a data race. The caller must ensure no live peer is still
  /// moving bytes; stale sleepers see a sequence bump, wake, and
  /// re-check their own session state.
  void reset();

 private:
  ShmByteRing(Control* ctrl, char* data) : ctrl_(ctrl), data_(data) {}

  Control* ctrl_ = nullptr;
  char* data_ = nullptr;
};

}  // namespace ccov::util
