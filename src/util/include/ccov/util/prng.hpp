#pragma once
/// \file prng.hpp
/// Deterministic, fast pseudo-random number generation (SplitMix64 seeding +
/// xoshiro256**). Used by randomized tests, workload generators and the
/// failure simulator so that every experiment is reproducible from a seed.

#include <array>
#include <cstdint>
#include <limits>

namespace ccov::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator so it can drive <random> adaptors.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Rejection-free approximation is fine for our workloads; use 128-bit
    // multiply to avoid modulo bias at the scales we care about.
    const auto x = (*this)();
    __extension__ using uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<uint128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ccov::util
