#pragma once
/// \file thread_annotations.hpp
/// Clang thread-safety annotations for compile-time race detection,
/// plus the annotated Mutex/MutexLock pair every lock-owning class in
/// the codebase uses. Under Clang with -Wthread-safety (CI builds the
/// whole tree with -Wthread-safety -Werror) the analysis proves, per
/// translation unit, that every CCOV_GUARDED_BY member is only touched
/// with its mutex held and that every CCOV_REQUIRES function is only
/// called under the right lock. Under GCC/MSVC the macros expand to
/// nothing and Mutex is an ordinary std::mutex wrapper.
///
/// Conventions (see README "Static analysis & fuzzing"):
///  - every mutex-protected member carries CCOV_GUARDED_BY(mu);
///  - helpers called with the lock already held carry CCOV_REQUIRES(mu)
///    instead of re-locking;
///  - condition waits go through std::condition_variable_any waiting on
///    the Mutex directly (`cv.wait(mu_)` inside a while loop) — the
///    analysis treats the mutex as continuously held across the wait,
///    which is exactly the invariant the surrounding code relies on;
///  - lock-free classes (ShmByteRing, the shm segment header) use
///    atomics only and need no capability annotations.

#include <mutex>

#if defined(__clang__)
#define CCOV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CCOV_THREAD_ANNOTATION(x)
#endif

// NOLINTBEGIN(bugprone-macro-parentheses): attribute arguments are
// capability expressions, not values — parenthesizing them is invalid.

/// Class attribute: instances are lockable capabilities ("mutex").
#define CCOV_CAPABILITY(x) CCOV_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII objects that acquire in the constructor and
/// release in the destructor (std::lock_guard shape).
#define CCOV_SCOPED_CAPABILITY CCOV_THREAD_ANNOTATION(scoped_lockable)

/// Member attribute: reads/writes require holding the given mutex.
#define CCOV_GUARDED_BY(x) CCOV_THREAD_ANNOTATION(guarded_by(x))

/// Member attribute: the pointee is guarded (the pointer itself is not).
#define CCOV_PT_GUARDED_BY(x) CCOV_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: callable only with the given mutexes held.
#define CCOV_REQUIRES(...) \
  CCOV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: acquires the given mutexes (held on return).
#define CCOV_ACQUIRE(...) \
  CCOV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the given mutexes (held on entry).
#define CCOV_RELEASE(...) \
  CCOV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the mutex when returning `ret`.
#define CCOV_TRY_ACQUIRE(ret, ...) \
  CCOV_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function attribute: callable only with the given mutexes NOT held
/// (deadlock prevention for self-locking entry points).
#define CCOV_EXCLUDES(...) CCOV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the given capability.
#define CCOV_RETURN_CAPABILITY(x) CCOV_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot see (constructors/destructors with no concurrency).
#define CCOV_NO_THREAD_SAFETY_ANALYSIS \
  CCOV_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

namespace ccov::util {

/// std::mutex with the capability annotations Clang's analysis needs
/// (libstdc++'s std::mutex carries none, so locking it is invisible to
/// -Wthread-safety). BasicLockable, so std::condition_variable_any can
/// wait on it directly.
class CCOV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CCOV_ACQUIRE() { mu_.lock(); }
  void unlock() CCOV_RELEASE() { mu_.unlock(); }
  bool try_lock() CCOV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex — std::lock_guard with scoped-capability
/// annotations. The std one cannot be annotated, and the analysis must
/// see the acquire/release to track the critical section.
class CCOV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCOV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CCOV_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ccov::util
