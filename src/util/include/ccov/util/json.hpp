#pragma once
/// \file json.hpp
/// The minimal JSON layer shared by the serve protocol and the HTTP
/// front end: a Reader for exactly the subset the protocols accept
/// (objects, arrays, strings with escapes, integer numbers, booleans,
/// null — no floats), and a Writer that renders compact one-line JSON
/// with deterministic, byte-stable output. The serve response lines are
/// golden-tested against this writer, so its byte behaviour (no
/// whitespace, \uXXXX for control characters, no \b/\f shorthands) is
/// part of the wire contract.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccov::util::json {

/// A parsed JSON value. Objects preserve key order (the protocols care
/// about "op" detection and deterministic error messages, not lookup
/// speed).
struct Value {
  enum class Type { kNull, kBool, kInt, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
};

/// Parse one complete JSON document. Errors are reported by message,
/// never by exception; trailing non-whitespace is an error. Nesting is
/// bounded (kMaxDepth) so adversarial input like "[[[[..." reports an
/// error instead of exhausting the call stack — the reader sits on
/// untrusted protocol bytes.
class Reader {
 public:
  /// Deepest accepted object/array nesting. Protocol documents are 2-3
  /// levels deep; 64 leaves generous headroom while keeping recursion
  /// trivially within any thread's stack.
  static constexpr int kMaxDepth = 64;

  explicit Reader(const std::string& text)
      : p_(text.data()), end_(p_ + text.size()) {}

  bool parse(Value* out, std::string* error);

 private:
  void skip_ws();
  bool literal(const char* word, std::string* error);
  bool value(Value* out, std::string* error);
  bool object(Value* out, std::string* error);
  bool array(Value* out, std::string* error);
  bool string(std::string* out, std::string* error);
  bool number(Value* out, std::string* error);

  const char* p_;
  const char* end_;
  int depth_ = 0;
};

/// Append `s` to `out` as a quoted JSON string: '"' and '\\' escaped,
/// \n \r \t shorthands, every other control character as \u00XX.
void append_escaped(std::string* out, std::string_view s);

/// `s` rendered as a quoted JSON string.
std::string escaped(std::string_view s);

/// Compact single-line JSON writer with automatic comma placement.
/// Produces exactly the bytes of the hand-rolled renderers it replaced:
/// no whitespace anywhere, keys in call order.
///
///   JsonWriter w;
///   w.begin_object().key("id").value(7).key("ok").value(true)
///    .key("algo").value_string("solve").end_object();
///   w.str() == R"({"id":7,"ok":true,"algo":"solve"})"
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the separating ',' (if needed) and `"k":`. Keys are written
  /// verbatim — callers pass literal identifiers, not untrusted text.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Quoted and escaped.
  JsonWriter& value_string(std::string_view v);
  /// Pre-rendered JSON spliced in verbatim (still comma-managed).
  JsonWriter& value_raw(std::string_view v);

  /// Pre-size the output buffer — a renderer that knows roughly how big
  /// the document will be skips the geometric-growth reallocations.
  void reserve(std::size_t n) { out_.reserve(n); }

  /// Drop the buffered text and any open-container state, keeping the
  /// buffer's capacity — a hot loop reuses one writer allocation-free.
  void clear() {
    out_.clear();
    has_element_.clear();
    after_key_ = false;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  /// Called before any value/begin in an array context.
  void comma_for_value();

  std::string out_;
  /// One flag per open container: true once it holds an element, so the
  /// next key()/array value knows to lead with ','.
  std::vector<bool> has_element_;
  /// True immediately after key() — the next value is an object member,
  /// not an array element, so it must not emit its own comma.
  bool after_key_ = false;
};

}  // namespace ccov::util::json
