#pragma once
/// \file emz.hpp
/// The Eilam-Moran-Zaks objective (paper ref [3]): same ring survivability
/// conditions, but minimizing the SUM OF RING SIZES (total vertices over
/// all sub-networks) instead of the number of sub-networks. This module
/// evaluates that objective on any cover and provides a greedy heuristic
/// targeting it, letting the benchmarks contrast the two cost models
/// (which coincide asymptotically on K_n because optimal covers use only
/// C3/C4, but diverge on sparse instances).

#include <cstdint>

#include "ccov/covering/cover.hpp"
#include "ccov/graph/graph.hpp"

namespace ccov::baselines {

/// Sum of cycle sizes (the EMZ cost).
std::uint64_t emz_objective(const covering::RingCover& cover);

/// Lower bound on the EMZ cost for covering a demand graph on C_n: every
/// demand edge must appear as a cycle edge, a size-k cycle supplies k
/// edges, and a DRC cycle's arcs tile the ring, so
///   sum sizes >= max(#demands distributed, size-3 floor per cycle ...).
/// We use: ceil(total_minor_load / n) cycles minimum, each of size >= 3,
/// plus the edge-count bound (sum sizes >= #demand edges when no edge is
/// covered twice is not valid for coverings; we use the load bound).
std::uint64_t emz_lower_bound(std::uint32_t n);

/// Greedy cover of K_n minimizing size-cost: prefers cycles maximizing
/// fresh-edges-per-vertex (triangles and quads tie at 1.0 when fully
/// fresh, so this behaves like the count-greedy but never pads).
covering::RingCover emz_greedy_cover(std::uint32_t n);

}  // namespace ccov::baselines
