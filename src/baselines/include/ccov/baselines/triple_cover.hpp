#pragma once
/// \file triple_cover.hpp
/// Classical covering of K_n by triangles WITHOUT the disjoint routing
/// constraint (paper refs [6] Mills-Mullin, [7] Stanton-Rogers). The paper
/// quotes the covering number C(n,3,2) = ceil(n/3 * ceil((n-1)/2)); this
/// module provides that closed form (Fort-Hedlund) plus a greedy
/// construction, so the benchmark tables can show what the DRC costs.

#include <cstdint>
#include <vector>

#include "ccov/covering/cover.hpp"

namespace ccov::baselines {

/// Fort-Hedlund covering number C(n,3,2): the minimum number of triples
/// covering every pair of an n-set, n >= 3.
std::uint64_t triple_covering_number(std::uint32_t n);

/// Greedy triangle covering of K_n (ignores routing entirely). Returned
/// cycles generally violate the DRC — that is the point of the baseline.
std::vector<covering::Cycle> greedy_triple_cover(std::uint32_t n);

/// How many cycles of a covering satisfy the DRC on C_n (used to report
/// how un-deployable the classical covering is on a ring).
std::size_t count_drc_feasible(std::uint32_t n,
                               const std::vector<covering::Cycle>& cycles);

}  // namespace ccov::baselines
