#pragma once
/// \file c4_cover.hpp
/// Coverings of K_n by 4-cycles without the DRC (paper ref [2], Bermond's
/// thesis, which determined the minimum number of C4s covering K_n).
/// We provide the degree/counting lower bound and a greedy construction.

#include <cstdint>
#include <vector>

#include "ccov/covering/cover.hpp"

namespace ccov::baselines {

/// Counting lower bound for covering K_n by C4s: each C4 covers 4 edges
/// and gives each of its 4 vertices 2 incident covered edges, so
///   LB = max(ceil(n(n-1)/8), ceil(n * ceil((n-1)/2) / 4)).
std::uint64_t c4_covering_lower_bound(std::uint32_t n);

/// Greedy covering of K_n by C4s (a trailing triangle may be needed when
/// fewer than 4 fresh-edge vertices remain; it is counted like a cycle).
std::vector<covering::Cycle> greedy_c4_cover(std::uint32_t n);

}  // namespace ccov::baselines
