#include "ccov/baselines/c4_cover.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "ccov/util/ints.hpp"

namespace ccov::baselines {

std::uint64_t c4_covering_lower_bound(std::uint32_t n) {
  if (n < 4) throw std::invalid_argument("c4_covering_lower_bound: n >= 4");
  const std::uint64_t N = n;
  const std::uint64_t edges_bound = util::ceil_div<std::uint64_t>(N * (N - 1), 8);
  const std::uint64_t per_vertex = util::ceil_div<std::uint64_t>(N - 1, 2);
  const std::uint64_t vertex_bound = util::ceil_div<std::uint64_t>(N * per_vertex, 4);
  return std::max(edges_bound, vertex_bound);
}

std::vector<covering::Cycle> greedy_c4_cover(std::uint32_t n) {
  using covering::Vertex;
  std::set<std::pair<Vertex, Vertex>> uncovered;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) uncovered.insert({a, b});
  auto has = [&](Vertex u, Vertex v) {
    return uncovered.count({std::min(u, v), std::max(u, v)}) > 0;
  };
  auto erase = [&](Vertex u, Vertex v) {
    uncovered.erase({std::min(u, v), std::max(u, v)});
  };

  std::vector<covering::Cycle> out;
  while (!uncovered.empty()) {
    const auto [a, b] = *uncovered.begin();
    // Choose c, d maximizing fresh edges of the 4-cycle (a, b, c, d).
    Vertex bc = 0, bd = 0;
    int best = -1;
    for (Vertex c = 0; c < n; ++c) {
      if (c == a || c == b) continue;
      for (Vertex d = 0; d < n; ++d) {
        if (d == a || d == b || d == c) continue;
        const int fresh = 1 + (has(b, c) ? 1 : 0) + (has(c, d) ? 1 : 0) +
                          (has(d, a) ? 1 : 0);
        if (fresh > best) {
          best = fresh;
          bc = c;
          bd = d;
        }
      }
    }
    covering::Cycle quad{a, b, bc, bd};
    erase(a, b);
    erase(b, bc);
    erase(bc, bd);
    erase(bd, a);
    out.push_back(std::move(quad));
  }
  return out;
}

}  // namespace ccov::baselines
