#include "ccov/baselines/emz.hpp"

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/greedy.hpp"

namespace ccov::baselines {

std::uint64_t emz_objective(const covering::RingCover& cover) {
  std::uint64_t total = 0;
  for (const auto& c : cover.cycles) total += c.size();
  return total;
}

std::uint64_t emz_lower_bound(std::uint32_t n) {
  // At least rho-lower-bound cycles are needed and each has >= 3 vertices.
  return 3 * covering::parity_lower_bound(n);
}

covering::RingCover emz_greedy_cover(std::uint32_t n) {
  // The count-greedy already prefers high fresh-edge cycles; since C3/C4
  // have the same best-case edges-per-vertex ratio, reuse it. Kept as a
  // distinct entry point so the benchmark reports the EMZ objective on a
  // heuristic tuned for it (and so future size-specific tweaks have a
  // home).
  return covering::greedy_cover(n);
}

}  // namespace ccov::baselines
