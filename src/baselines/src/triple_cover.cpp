#include "ccov/baselines/triple_cover.hpp"

#include <set>
#include <stdexcept>

#include "ccov/covering/drc.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::baselines {

std::uint64_t triple_covering_number(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("triple_covering_number: n >= 3");
  const std::uint64_t N = n;
  const std::uint64_t per_vertex = util::ceil_div<std::uint64_t>(N - 1, 2);
  return util::ceil_div<std::uint64_t>(N * per_vertex, 3);
}

std::vector<covering::Cycle> greedy_triple_cover(std::uint32_t n) {
  using covering::Vertex;
  std::set<std::pair<Vertex, Vertex>> uncovered;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) uncovered.insert({a, b});

  std::vector<covering::Cycle> out;
  while (!uncovered.empty()) {
    const auto [a, b] = *uncovered.begin();
    // Pick the third vertex completing the most uncovered pairs.
    Vertex best = (a + 1) % n;
    int best_fresh = -1;
    for (Vertex w = 0; w < n; ++w) {
      if (w == a || w == b) continue;
      int fresh = 1;  // (a, b) itself
      if (uncovered.count({std::min(a, w), std::max(a, w)})) ++fresh;
      if (uncovered.count({std::min(b, w), std::max(b, w)})) ++fresh;
      if (fresh > best_fresh) {
        best_fresh = fresh;
        best = w;
      }
    }
    covering::Cycle tri{a, b, best};
    for (std::size_t i = 0; i < 3; ++i) {
      Vertex u = tri[i], v = tri[(i + 1) % 3];
      if (u > v) std::swap(u, v);
      uncovered.erase({u, v});
    }
    out.push_back(std::move(tri));
  }
  return out;
}

std::size_t count_drc_feasible(std::uint32_t n,
                               const std::vector<covering::Cycle>& cycles) {
  const ring::Ring r(n);
  std::size_t ok = 0;
  for (const auto& c : cycles)
    if (covering::satisfies_drc(r, c)) ++ok;
  return ok;
}

}  // namespace ccov::baselines
