#pragma once
/// \file http.hpp
/// HTTP/1.1 front end for the serve protocol (POSIX only, like net.hpp).
/// An HttpServer accepts keep-alive connections (pipelined requests
/// included) and routes:
///
///   POST /v1/batch   JSONL request lines in the body -> the exact
///                    serve-protocol response lines, streamed back with
///                    chunked transfer encoding as each batch flushes.
///                    The body runs through the same serve_session as
///                    stdio and TCP, so the JSONL payload is
///                    byte-identical across transports.
///   GET  /metrics    Engine metrics in Prometheus text exposition
///                    format (one scrape = one render of the registry).
///   GET  /healthz    "ok" — a liveness probe.
///
/// Request bodies require Content-Length (411 otherwise; chunked request
/// bodies are answered 501) bounded by ServeConfig::max_body_bytes
/// (413 above it); request heads are bounded by max_header_bytes (431).
/// "Expect: 100-continue" is honored. Connections beyond max_clients
/// get a 503 and are closed. Shutdown semantics are inherited from
/// ConnectionServer: the self-pipe wakes blocked reads, in-flight
/// responses flush, run() returns.

#include <cstdint>
#include <string>

#include "ccov/engine/net.hpp"
#include "ccov/engine/serve.hpp"

namespace ccov::engine::net {

/// A parsed HTTP/1.1 request head (request line + the headers the front
/// end acts on). Exposed, together with find_head_end/parse_head,
/// because head parsing sits directly on untrusted socket bytes — tests
/// and the fuzz harnesses (see fuzz/) drive it without a socket.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  bool has_content_length = false;
  std::uint64_t content_length = 0;
  bool chunked = false;          ///< request used Transfer-Encoding: chunked
  bool expect_continue = false;  ///< Expect: 100-continue
  bool keep_alive = true;
};

/// Locate the head terminator (CRLFCRLF per the RFC; bare LFLF is
/// tolerated). Sets *body_start just past it.
bool find_head_end(const std::string& buf, std::size_t* head_end,
                   std::size_t* body_start);

/// Parse a request head (everything before the terminator). Returns
/// false and sets *error on a malformed request line, header line or
/// Content-Length; never throws.
bool parse_head(const std::string& head, HttpRequest* req,
                std::string* error);

/// `ccov serve --http`: thread-per-connection HTTP server in front of
/// serve_session and the metrics registry. Every connection shares
/// `engine` (one cache, one pool, one MetricsRegistry).
class HttpServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on
  /// failure) so port() is valid before run() is called.
  HttpServer(Engine& engine, ServeConfig config);

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return server_.port(); }
  const std::string& host() const { return config_.host; }

  /// Accept clients until shutdown() is called; joins every connection
  /// thread before returning. Returns 0 on a clean shutdown.
  int run();

  /// Request shutdown from any thread. Safe to call more than once.
  void shutdown() { server_.shutdown(); }

  /// See ConnectionServer::wake_fd().
  int wake_fd() const { return server_.wake_fd(); }

 private:
  void handle_connection(int client_fd, int wake_fd);

  Engine& engine_;
  ServeConfig config_;
  ConnectionServer server_;
  Counter& requests_;     ///< ccov_http_requests_total
  Counter& errors_;       ///< ccov_http_errors_total (4xx/5xx answered)
  Counter& connections_;  ///< ccov_http_connections_total
};

}  // namespace ccov::engine::net
