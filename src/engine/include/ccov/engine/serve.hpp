#pragma once
/// \file serve.hpp
/// The `ccov serve` protocol: JSONL requests in, JSONL responses out,
/// one output line per input line, in input order. Compute requests are
/// flat JSON objects ({"algo":"solve","n":8,...}); control verbs are
/// {"op":"stats"|"save"|"clear"}. See src/engine/README.md for the full
/// protocol. The parser and renderers are exposed so tests can drive
/// them without a process boundary; serve_loop is the actual loop the
/// CLI wires to stdin/stdout.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/request.hpp"

namespace ccov::engine {

/// One parsed input line: either a cover request or a control verb.
struct ServeCommand {
  enum class Kind { kRequest, kStats, kSave, kClear };
  Kind kind = Kind::kRequest;
  CoverRequest req;  ///< populated when kind == kRequest
};

/// Parse one JSONL line. Returns false (and sets *error) on malformed
/// JSON, unknown keys, or out-of-domain values; never throws.
bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error);

/// Render a response as one JSON line (no trailing newline). Contains
/// only reproducible fields plus cache_hit — never timing — so streams
/// are byte-identical across --jobs values.
std::string serve_response_line(std::uint64_t id, const CoverResponse& resp);

/// Render a protocol-level failure (parse error, bad control verb).
std::string serve_error_line(std::uint64_t id, const std::string& error);

/// Render the cache statistics for the `stats` control verb.
std::string serve_stats_line(std::uint64_t id, const CoverCache& cache);

struct ServeOptions {
  /// Worker threads per flushed batch (BatchRunner semantics: 0 =
  /// hardware concurrency, 1 = inline).
  std::size_t jobs = 1;
  /// Consecutive compute requests buffered before a flush. 1 answers
  /// every line immediately (interactive); larger batches let --jobs
  /// overlap independent requests. Control verbs and EOF always flush.
  std::size_t batch = 1;
  /// Snapshot path for the `save` control verb and the save-on-exit in
  /// the CLI wrapper; empty disables `save`.
  std::string cache_file;
};

/// Run the serve loop until EOF on `in`. Emits exactly one response line
/// per input line, in input order (blank lines are ignored). Returns 0;
/// protocol-level errors are reported in-band as {"ok":false,...} lines.
int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeOptions& opts);

}  // namespace ccov::engine
