#pragma once
/// \file serve.hpp
/// The `ccov serve` protocol: JSONL requests in, JSONL responses out,
/// one output line per input line, in input order. Compute requests are
/// flat JSON objects ({"algo":"solve","n":8,...}); control verbs are
/// {"op":"stats"|"save"|"clear"|"metrics"} and are dispatched through a
/// ServeVerbRegistry (op string -> handler), the same self-registration
/// shape as AlgorithmRegistry. See src/engine/README.md for the full
/// protocol. The parser and renderers are exposed so tests can drive
/// them without a process boundary.
///
/// The protocol loop itself is parameterized over a transport: a
/// ServeStream is any source/sink of newline-framed bytes —
/// serve_loop wires one to stdin/stdout, net.hpp's SocketStream wires
/// one to a TCP connection, and http.hpp frames one inside an HTTP
/// request/response pair. Every transport shares the exact same
/// serve_session, so socket and HTTP responses are byte-identical to
/// stdio responses for the same request stream. All front ends consume
/// one ServeConfig, parsed once in the CLI.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/request.hpp"
#include "ccov/util/thread_annotations.hpp"

namespace ccov::engine {

/// Transport seam for the serve loop: a bidirectional byte stream. The
/// session reads newline-framed requests through read_some and writes
/// response lines through write_all; reads and writes may come from two
/// different threads (the session pipelines: it parses the next batch
/// while the previous one solves), so implementations must tolerate one
/// concurrent reader plus one concurrent writer.
class ServeStream {
 public:
  virtual ~ServeStream() = default;

  /// Read up to `n` bytes into `buf`. Returns the number of bytes read
  /// (> 0), 0 on end-of-stream (EOF, peer disconnect, or server
  /// shutdown), or -1 on a transport error. Must retry EINTR internally.
  virtual std::ptrdiff_t read_some(char* buf, std::size_t n) = 0;

  /// Write all `n` bytes. Returns false when the peer is gone (EPIPE,
  /// reset) or the sink fails — the session then tears down quietly.
  virtual bool write_all(const char* data, std::size_t n) = 0;

  /// Flush buffered output (stdio transports); sockets need nothing.
  virtual bool flush() { return true; }
};

/// The one configuration every serve front end consumes — stdio,
/// `--listen` (TCP) and `--http` alike. The CLI parses its serve flags
/// into exactly one of these; the transports read the fields they need.
struct ServeConfig {
  // --- session (every transport) -----------------------------------------
  /// Worker threads per flushed batch (BatchRunner semantics: 0 =
  /// hardware concurrency, 1 = inline).
  std::size_t jobs = 1;
  /// Consecutive compute requests buffered before a flush. 1 answers
  /// every line immediately (interactive); larger batches let --jobs
  /// overlap independent requests. Control verbs and EOF always flush.
  std::size_t batch = 1;
  /// Snapshot path for the `save` control verb and the save-on-exit in
  /// the CLI wrapper; empty disables `save`.
  std::string cache_file;
  /// Longest accepted input line in bytes (0 = unlimited). A longer line
  /// is answered in-band with ok:false and discarded as it streams in —
  /// the session never buffers more than this much of one line.
  std::size_t max_line_bytes = 1 << 20;
  /// Wall-clock deadline (ms) applied to requests that carry no
  /// deadline_ms of their own; 0 = none (`--default-deadline-ms`). The
  /// absolute deadline is fixed when the request is *accepted*, so time
  /// spent queued behind a batch counts against it.
  std::uint64_t default_deadline_ms = 0;
  /// Graceful-degradation policy (`--fallback`): "" answers expired
  /// exact solves with timed_out:true; "greedy" answers them with the
  /// greedy cover flagged degraded:true. The CLI maps this onto
  /// EngineOptions::fallback_greedy when constructing the engine.
  std::string fallback;
  /// Server-wide cancellation token, cancelled by the SIGINT/SIGTERM
  /// handler. Sessions check it between lines and thread it into every
  /// request, so shutdown latency is bounded by the solver's ~4k-node
  /// poll interval instead of the deepest in-flight search. May be null.
  const util::CancelToken* cancel = nullptr;

  // --- listener (TCP and HTTP front ends) --------------------------------
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; the server reports the pick
  /// Concurrent connections beyond this are refused with one in-band
  /// error (JSONL line on TCP, 503 on HTTP) and closed immediately.
  std::size_t max_clients = 64;
  int backlog = 64;

  // --- HTTP front end ----------------------------------------------------
  /// Longest accepted request head (request line + headers).
  std::size_t max_header_bytes = 64 << 10;
  /// Largest accepted Content-Length for POST /v1/batch; bigger bodies
  /// are refused with 413 before any byte of the body is read.
  std::size_t max_body_bytes = 64u << 20;

  // --- shared-memory front end (shm.hpp) ---------------------------------
  /// POSIX shm segment name for `--shm` (with or without the leading
  /// '/'); empty = transport not selected.
  std::string shm_name;
  /// Per-ring data capacity in bytes (one request ring + one response
  /// ring per segment); must be a power of two.
  std::size_t shm_ring_bytes = 1 << 20;
};

// ---------------------------------------------------------------------------
// Control-verb registry
// ---------------------------------------------------------------------------

/// Everything a control-verb handler may touch. Handlers run on the
/// session's pipeline worker *after* the preceding requests flushed, so
/// whatever they observe (cache stats, metrics) reflects exactly the
/// requests that preceded them in the stream.
struct ServeVerbContext {
  std::uint64_t id = 0;  ///< response id of the verb's input line
  Engine& engine;
  const ServeConfig& config;
};

/// A named control verb: {"op":"<name>"} -> one rendered response line
/// (no trailing newline). Handlers must not throw.
struct ServeVerb {
  std::string name;
  std::string description;
  std::function<std::string(const ServeVerbContext&)> run;
};

/// Thread-safe name -> ServeVerb map, mirroring AlgorithmRegistry:
/// register once (from any TU), dispatch everywhere. Verbs are never
/// removed, so find() results stay valid for the registry's lifetime.
class ServeVerbRegistry {
 public:
  /// Throws std::invalid_argument on an empty/duplicate name or a
  /// missing run function.
  void add(ServeVerb verb);

  /// nullptr when the name is unknown.
  const ServeVerb* find(const std::string& name) const;

  /// Registered names in sorted order — also the list parse errors cite.
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// The process-wide registry with the built-in verbs registered
  /// (clear, metrics, save, stats).
  static ServeVerbRegistry& global();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, ServeVerb> verbs_ CCOV_GUARDED_BY(mu_);
};

/// Register the built-in control verbs into `reg`. Idempotent per
/// registry; called automatically by ServeVerbRegistry::global().
void register_builtin_verbs(ServeVerbRegistry& reg);

/// One parsed input line: either a cover request (verb == nullptr) or a
/// resolved control verb.
struct ServeCommand {
  const ServeVerb* verb = nullptr;
  CoverRequest req;  ///< populated when is_request()
  bool is_request() const { return verb == nullptr; }
};

/// Line framing over a ServeStream: newline-delimited, CRLF-tolerant (a
/// single trailing '\r' is stripped), with a hard per-line byte limit
/// enforced *while streaming* — an oversized line is discarded as it
/// arrives instead of being buffered without bound, and reported as
/// kTooLong so the session can answer in-band. This is the framing layer
/// every serve transport's input passes through; it is exposed (and
/// fuzzed — see fuzz/) because it sits directly on untrusted bytes.
class LineReader {
 public:
  /// \p max_line longest accepted line in bytes (0 = unlimited).
  LineReader(ServeStream& io, std::size_t max_line);

  enum class Result { kLine, kTooLong, kEof };

  /// Produce the next line (newline stripped). A partial final line with
  /// no trailing newline is still a line, as with std::getline; the
  /// following call reports kEof.
  Result next(std::string* line);

 private:
  ServeStream& io_;
  std::size_t max_;
  char buf_[4096];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// Parse one JSONL line against the global verb registry. Returns false
/// (and sets *error) on malformed JSON, unknown keys, out-of-domain
/// values, or an unknown op (the error lists the valid ops); never
/// throws.
bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error);

/// Render a response as one JSON line (no trailing newline). Contains
/// only reproducible fields plus cache_hit — never timing — so streams
/// are byte-identical across --jobs values.
std::string serve_response_line(std::uint64_t id, const CoverResponse& resp);

/// Render a protocol-level failure (parse error, bad control verb).
std::string serve_error_line(std::uint64_t id, const std::string& error);

/// Render the cache statistics for the `stats` control verb.
std::string serve_stats_line(std::uint64_t id, const CoverCache& cache);

/// Run the serve protocol over an arbitrary transport until
/// end-of-stream. Emits exactly one response line per input line, in
/// input order (blank lines are ignored). Batches are double-buffered:
/// the session parses the next batch on the calling thread while a
/// pipeline worker solves and writes the previous one, so reading and
/// solving overlap for every transport. Returns 0; protocol-level
/// errors are reported in-band as {"ok":false,...} lines, and a dead
/// peer ends the session without raising. Session, request, error and
/// pipeline-depth counts feed engine.metrics().
int serve_session(ServeStream& io, Engine& engine, const ServeConfig& config);

/// serve_session over an istream/ostream pair — the classic stdio
/// `ccov serve` loop the CLI wires to std::cin/std::cout.
int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeConfig& config);

}  // namespace ccov::engine
