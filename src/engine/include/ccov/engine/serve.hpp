#pragma once
/// \file serve.hpp
/// The `ccov serve` protocol: JSONL requests in, JSONL responses out,
/// one output line per input line, in input order. Compute requests are
/// flat JSON objects ({"algo":"solve","n":8,...}); control verbs are
/// {"op":"stats"|"save"|"clear"}. See src/engine/README.md for the full
/// protocol. The parser and renderers are exposed so tests can drive
/// them without a process boundary.
///
/// The protocol loop itself is parameterized over a transport: a
/// ServeStream is any source/sink of newline-framed bytes —
/// serve_loop wires one to stdin/stdout, net.hpp's SocketStream wires
/// one to a TCP connection, and every transport shares the exact same
/// serve_session, so socket responses are byte-identical to stdio
/// responses for the same request stream.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/request.hpp"

namespace ccov::engine {

/// Transport seam for the serve loop: a bidirectional byte stream. The
/// session reads newline-framed requests through read_some and writes
/// response lines through write_all; reads and writes may come from two
/// different threads (the session pipelines: it parses the next batch
/// while the previous one solves), so implementations must tolerate one
/// concurrent reader plus one concurrent writer.
class ServeStream {
 public:
  virtual ~ServeStream() = default;

  /// Read up to `n` bytes into `buf`. Returns the number of bytes read
  /// (> 0), 0 on end-of-stream (EOF, peer disconnect, or server
  /// shutdown), or -1 on a transport error. Must retry EINTR internally.
  virtual std::ptrdiff_t read_some(char* buf, std::size_t n) = 0;

  /// Write all `n` bytes. Returns false when the peer is gone (EPIPE,
  /// reset) or the sink fails — the session then tears down quietly.
  virtual bool write_all(const char* data, std::size_t n) = 0;

  /// Flush buffered output (stdio transports); sockets need nothing.
  virtual bool flush() { return true; }
};

/// One parsed input line: either a cover request or a control verb.
struct ServeCommand {
  enum class Kind { kRequest, kStats, kSave, kClear };
  Kind kind = Kind::kRequest;
  CoverRequest req;  ///< populated when kind == kRequest
};

/// Parse one JSONL line. Returns false (and sets *error) on malformed
/// JSON, unknown keys, or out-of-domain values; never throws.
bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error);

/// Render a response as one JSON line (no trailing newline). Contains
/// only reproducible fields plus cache_hit — never timing — so streams
/// are byte-identical across --jobs values.
std::string serve_response_line(std::uint64_t id, const CoverResponse& resp);

/// Render a protocol-level failure (parse error, bad control verb).
std::string serve_error_line(std::uint64_t id, const std::string& error);

/// Render the cache statistics for the `stats` control verb.
std::string serve_stats_line(std::uint64_t id, const CoverCache& cache);

struct ServeOptions {
  /// Worker threads per flushed batch (BatchRunner semantics: 0 =
  /// hardware concurrency, 1 = inline).
  std::size_t jobs = 1;
  /// Consecutive compute requests buffered before a flush. 1 answers
  /// every line immediately (interactive); larger batches let --jobs
  /// overlap independent requests. Control verbs and EOF always flush.
  std::size_t batch = 1;
  /// Snapshot path for the `save` control verb and the save-on-exit in
  /// the CLI wrapper; empty disables `save`.
  std::string cache_file;
  /// Longest accepted input line in bytes (0 = unlimited). A longer line
  /// is answered in-band with ok:false and discarded as it streams in —
  /// the session never buffers more than this much of one line.
  std::size_t max_line_bytes = 1 << 20;
};

/// Run the serve protocol over an arbitrary transport until
/// end-of-stream. Emits exactly one response line per input line, in
/// input order (blank lines are ignored). Batches are double-buffered:
/// the session parses the next batch on the calling thread while a
/// pipeline worker solves and writes the previous one, so reading and
/// solving overlap for every transport. Returns 0; protocol-level
/// errors are reported in-band as {"ok":false,...} lines, and a dead
/// peer ends the session without raising.
int serve_session(ServeStream& io, Engine& engine, const ServeOptions& opts);

/// serve_session over an istream/ostream pair — the classic stdio
/// `ccov serve` loop the CLI wires to std::cin/std::cout.
int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeOptions& opts);

}  // namespace ccov::engine
