#pragma once
/// \file store.hpp
/// Binary snapshot persistence for the CoverCache — the "cover store".
/// A snapshot is a versioned, little-endian dump of every (canonical key,
/// canonical-frame response) pair, sorted by key, so saving a freshly
/// loaded store reproduces the file byte for byte. Sweeps and the serve
/// loop use it to warm-start across process runs (`--cache-file`).
///
/// Layout (all integers little-endian, strings length-prefixed u32):
///
///   magic   8 bytes  "CCOVSNAP"
///   version u32      kSnapshotVersion
///   count   u64      number of entries
///   entry*  count times:
///     key        string
///     flags      u8   bit0 ok, bit1 found, bit2 exhausted,
///                     bit3 validated, bit4 valid
///     algorithm  string
///     error      string
///     n          u32
///     nodes      u64
///     cover.n    u32
///     cycles     u32, then per cycle: u32 length + that many u32 vertices
///
/// Timing and cache_hit are deliberately not stored: they are not
/// reproducible fields (lookup zeroes them on every hit anyway).

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ccov/engine/cache.hpp"

namespace ccov::engine {

inline constexpr char kSnapshotMagic[8] = {'C', 'C', 'O', 'V',
                                           'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Write every cache entry to `os` (binary). Deterministic: entries are
/// sorted by key, so two saves of equal stores are byte-identical.
void save_snapshot(std::ostream& os, const CoverCache& cache);

/// Read a snapshot from `is` (binary) and import every entry into
/// `cache` (existing entries are kept; equal keys are overwritten).
/// Returns the number of entries imported. Throws std::runtime_error on
/// a bad magic, unknown version or truncated stream.
std::size_t load_snapshot(std::istream& is, CoverCache& cache);

/// File wrappers. save_snapshot_file is *atomic*: the snapshot is
/// written to a unique temp file in the target's directory and renamed
/// over `path` only after the write fully succeeded, so a crash, kill or
/// ENOSPC mid-save can never leave a corrupt snapshot where a good one
/// was. It throws std::runtime_error when the file cannot be opened or
/// written (the previous snapshot, if any, is left untouched);
/// load_snapshot_file additionally throws on a corrupt snapshot.
void save_snapshot_file(const std::string& path, const CoverCache& cache);
std::size_t load_snapshot_file(const std::string& path, CoverCache& cache);

/// Entry count from a snapshot's header alone (no entry decoding) — used
/// to size a cache large enough to hold the whole store before loading,
/// so warm starts never silently evict persisted entries. Throws
/// std::runtime_error on a missing file, bad magic or unknown version.
std::uint64_t snapshot_entry_count_file(const std::string& path);

// Fault injection for the save path lives in the generic failpoint
// registry (ccov/util/failpoint.hpp): "snapshot_open", "snapshot_write",
// "snapshot_fsync" and "snapshot_rename" each throw from the matching
// stage of save_snapshot_file, simulating ENOSPC/EIO mid-save; the
// previous snapshot survives and the temp file is removed.

}  // namespace ccov::engine
