#pragma once
/// \file engine.hpp
/// The unified solver engine: one entry point through which every cover
/// request flows. run() resolves the algorithm by name, consults the
/// sharded CoverCache, executes, validates, and times the request. The
/// engine is thread-safe; BatchRunner fans requests across it using the
/// engine's shared thread pool (created lazily, reused by every batch —
/// a serve loop never pays per-call pool construction).

#include <cstddef>
#include <memory>
#include <mutex>

#include "ccov/engine/cache.hpp"
#include "ccov/engine/metrics.hpp"
#include "ccov/engine/registry.hpp"
#include "ccov/engine/request.hpp"
#include "ccov/util/thread_pool.hpp"

namespace ccov::engine {

struct EngineOptions {
  /// Serve repeated (D_n-equivalent) requests from the cache.
  bool use_cache = true;
  /// Total LRU capacity of the cover cache, across all shards.
  std::size_t cache_capacity = 256;
  /// Lock-striped shards of the cover cache (clamped to the capacity).
  std::size_t cache_shards = CoverCache::kDefaultShards;
  /// Threads in the shared pool; 0 selects hardware concurrency. The
  /// pool is created on first use (Engine::pool), so engines that never
  /// batch never spawn a thread.
  std::size_t pool_threads = 0;
  /// Graceful degradation (`ccov serve --fallback greedy`): answer a
  /// deadline-expired exact solve with the greedy cover, flagged
  /// degraded:true — a valid (just non-minimal) protection cover beats
  /// a timeout error. Never applied to shutdown cancellation, and
  /// degraded answers are never cached.
  bool fallback_greedy = false;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {},
                  AlgorithmRegistry& registry = AlgorithmRegistry::global());

  /// Execute one request. Never throws: algorithm failures, unknown
  /// names and invalid parameters come back as ok = false responses.
  CoverResponse run(const CoverRequest& req);

  /// The engine's shared thread pool, created on first call and reused
  /// for the engine's lifetime. Concurrent batches isolate themselves
  /// with util::TaskGroup tokens.
  util::ThreadPool& pool();

  /// Cache-hit fast path for serving loops: when the request is
  /// cacheable, maps onto the canonical frame by the identity (so no
  /// cover remap is needed) and is cached, invokes `fn` with the stored
  /// entry — no deep copy of the cover — and returns true. The entry
  /// differs from what run() would have returned only in the fields a
  /// hit rewrites: cache_hit (stored false, reported true), nodes and
  /// elapsed_ms (stored search cost, reported 0); callers must apply
  /// those overrides themselves. Every other case returns false with
  /// all counters untouched — falling back to run() then counts the
  /// miss exactly once and yields identical bytes.
  template <typename Fn>
  bool run_cached(const CoverRequest& req, Fn&& fn) {
    if (!opts_.use_cache || req.n < 3) return false;
    const Algorithm* algo = registry_.find(req.algorithm);
    if (!algo || !algo->cacheable) return false;
    return run_cached_with_key(req, canonical_request_key(req),
                               std::forward<Fn>(fn));
  }

  /// As run_cached(), but with the canonical key precomputed by the
  /// caller — it is a pure function of the request, so hot loops memoize
  /// it alongside the parsed request and skip rebuilding it per call.
  template <typename Fn>
  bool run_cached(const CoverRequest& req, const CanonicalKey& ck, Fn&& fn) {
    if (!opts_.use_cache || req.n < 3) return false;
    const Algorithm* algo = registry_.find(req.algorithm);
    if (!algo || !algo->cacheable) return false;
    return run_cached_with_key(req, ck, std::forward<Fn>(fn));
  }

  const AlgorithmRegistry& registry() const { return registry_; }
  CoverCache& cache() { return cache_; }
  const CoverCache& cache() const { return cache_; }

  /// The engine's metrics registry: cache hit/miss/eviction and
  /// size/capacity series are wired as scrape-time callbacks in the
  /// constructor; the serve sessions and the solver path update owned
  /// counters. Rendered by `GET /metrics` and the `metrics` serve verb.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  template <typename Fn>
  bool run_cached_with_key(const CoverRequest& req, const CanonicalKey& ck,
                           Fn&& fn) {
    if (ck.to_canonical.reflect || ck.to_canonical.shift % req.n != 0)
      return false;
    return cache_.visit(ck, std::forward<Fn>(fn));
  }

  EngineOptions opts_;
  AlgorithmRegistry& registry_;
  CoverCache cache_;
  MetricsRegistry metrics_;
  Counter* solver_nodes_ = nullptr;  ///< cumulative search nodes
  Counter* timed_out_ = nullptr;     ///< requests past their deadline
  Counter* degraded_ = nullptr;      ///< greedy-fallback answers served
  Counter* cancellations_ = nullptr; ///< solves aborted by the cancel token
  std::once_flag pool_once_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ccov::engine
