#pragma once
/// \file engine.hpp
/// The unified solver engine: one entry point through which every cover
/// request flows. run() resolves the algorithm by name, consults the
/// canonical CoverCache, executes, validates, and times the request. The
/// engine is thread-safe; BatchRunner fans requests across it.

#include <cstddef>

#include "ccov/engine/cache.hpp"
#include "ccov/engine/registry.hpp"
#include "ccov/engine/request.hpp"

namespace ccov::engine {

struct EngineOptions {
  /// Serve repeated (D_n-equivalent) requests from the cache.
  bool use_cache = true;
  /// LRU capacity of the cover cache.
  std::size_t cache_capacity = 256;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {},
                  AlgorithmRegistry& registry = AlgorithmRegistry::global());

  /// Execute one request. Never throws: algorithm failures, unknown
  /// names and invalid parameters come back as ok = false responses.
  CoverResponse run(const CoverRequest& req);

  const AlgorithmRegistry& registry() const { return registry_; }
  CoverCache& cache() { return cache_; }
  const CoverCache& cache() const { return cache_; }

 private:
  EngineOptions opts_;
  AlgorithmRegistry& registry_;
  CoverCache cache_;
};

}  // namespace ccov::engine
