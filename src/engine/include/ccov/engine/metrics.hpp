#pragma once
/// \file metrics.hpp
/// Live observability for the engine: a registry of named counters and
/// gauges rendered in Prometheus text exposition format (served by
/// `GET /metrics` on the HTTP front end and by the `metrics` serve
/// verb). Two kinds of series coexist:
///
///  - *owned* atomics (Counter/Gauge), handed out by stable reference so
///    hot paths update them with one relaxed atomic op and no lookup;
///  - *callback* series that read state another subsystem already tracks
///    (the CoverCache's hit/miss/eviction atomics, its size/capacity) at
///    scrape time, so no counter is maintained twice.
///
/// The Engine owns one MetricsRegistry and wires the cache series in its
/// constructor; serve sessions (stdio, TCP, HTTP alike) and the solver
/// path update the owned series, so every transport feeds one registry.
/// Updates are wait-free; registration and rendering take a mutex.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ccov/util/thread_annotations.hpp"

namespace ccov::engine {

/// Monotonically increasing event count (Prometheus "counter").
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level that can move both ways (Prometheus "gauge").
class Gauge {
 public:
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Name -> metric map with Prometheus text rendering. Metric names must
/// match [a-zA-Z_][a-zA-Z0-9_]* (the registry rejects anything else);
/// registration is get-or-create, so independent subsystems can resolve
/// the same series by name. References returned by counter()/gauge()
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// Get or create an owned counter. Throws std::invalid_argument on a
  /// malformed name or when the name is already registered with a
  /// different kind.
  Counter& counter(const std::string& name, const std::string& help);

  /// Get or create an owned gauge.
  Gauge& gauge(const std::string& name, const std::string& help);

  /// Register a callback-backed counter: `fn` is invoked at render time
  /// and must be monotone non-decreasing (it reads an existing atomic,
  /// e.g. CoverCache hit counts). Throws on duplicate names.
  void counter_fn(const std::string& name, const std::string& help,
                  std::function<std::uint64_t()> fn);

  /// Register a callback-backed gauge (size/capacity style snapshots).
  void gauge_fn(const std::string& name, const std::string& help,
                std::function<std::int64_t()> fn);

  /// Render every series in Prometheus text exposition format, sorted by
  /// name: "# HELP", "# TYPE", then "name value", one sample per series.
  std::string render_prometheus() const;

  /// Current value of a series by name (callbacks are invoked); -1 when
  /// the name is unknown. Convenience for tests and the `metrics` verb.
  std::int64_t value(const std::string& name) const;

  /// Every (name, current value) pair sorted by name — the `metrics`
  /// serve verb's JSON payload.
  std::vector<std::pair<std::string, std::int64_t>> snapshot() const;

  std::size_t size() const;

 private:
  struct Metric {
    enum class Kind { kCounter, kGauge } kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;        ///< owned counter storage
    std::unique_ptr<Gauge> gauge;            ///< owned gauge storage
    std::function<std::uint64_t()> read_u64; ///< callback counter
    std::function<std::int64_t()> read_i64;  ///< callback gauge
  };

  static void check_name(const std::string& name);
  static std::int64_t current_value(const Metric& m);

  mutable util::Mutex mu_;
  /// sorted = render order
  std::map<std::string, Metric> metrics_ CCOV_GUARDED_BY(mu_);
};

}  // namespace ccov::engine
