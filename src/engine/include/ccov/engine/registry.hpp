#pragma once
/// \file registry.hpp
/// Name -> algorithm dispatch. Every cover-producing strategy registers
/// itself here once and is then reachable from the CLI (`ccov run --algo
/// NAME`), the sweep runner, the bench tables and the tests without any
/// per-call-site dispatch code.
///
/// Registration is self-service: construct an AlgorithmRegistrar at
/// namespace scope (see src/engine/README.md), or call
/// AlgorithmRegistry::global().add(...) during startup. The built-in
/// strategies are registered lazily the first time global() is used, so
/// static-library dead-stripping can never lose them.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ccov/engine/request.hpp"
#include "ccov/util/thread_annotations.hpp"

namespace ccov::engine {

/// What an algorithm hands back to the engine; the engine wraps it into a
/// CoverResponse (timing, validation, cache metadata).
struct AlgorithmOutcome {
  covering::RingCover cover;
  bool found = true;       ///< false when a search exhausted its budget
  bool exhausted = false;  ///< search space fully explored (solvers)
  std::uint64_t nodes = 0; ///< branch nodes visited (0 for constructions)
  bool timed_out = false;  ///< the request's deadline expired mid-search
  bool cancelled = false;  ///< the server's cancel token fired mid-search
};

/// A named cover-producing strategy.
struct Algorithm {
  std::string name;
  std::string description;
  /// Cacheable algorithms are deterministic functions of the canonical
  /// request and may be served from the CoverCache.
  bool cacheable = true;
  /// Produce a cover. May throw std::exception to signal an unsupported
  /// request (the engine converts it into an error response).
  std::function<AlgorithmOutcome(const CoverRequest&)> run;
  /// Optional custom validator (e.g. lambda*K_n demands). When absent the
  /// engine validates against the request's demand (K_n by default).
  std::function<bool(const CoverRequest&, const covering::RingCover&)>
      validate;
};

/// Thread-safe name -> Algorithm map.
class AlgorithmRegistry {
 public:
  /// Register a strategy. Throws std::invalid_argument on an empty or
  /// duplicate name, or a missing run function.
  void add(Algorithm algo);

  /// nullptr when the name is unknown. The returned pointer stays valid
  /// for the registry's lifetime (algorithms are never removed).
  const Algorithm* find(const std::string& name) const;

  bool contains(const std::string& name) const { return find(name); }

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// The process-wide registry with all built-in strategies registered
  /// (construct, solve, solve-parallel, greedy, emz, c4, triple, lambda).
  static AlgorithmRegistry& global();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, Algorithm> algos_ CCOV_GUARDED_BY(mu_);
};

/// RAII helper for self-registration from any translation unit:
///
///   namespace {
///   const ccov::engine::AlgorithmRegistrar kReg({
///       "my-algo", "what it does", true,
///       [](const CoverRequest& req) { ... }, nullptr});
///   }
struct AlgorithmRegistrar {
  explicit AlgorithmRegistrar(Algorithm algo);
};

/// Register the built-in strategies into `reg`. Idempotent per registry;
/// called automatically by AlgorithmRegistry::global().
void register_builtin_algorithms(AlgorithmRegistry& reg);

}  // namespace ccov::engine
