#pragma once
/// \file batch.hpp
/// Deterministically ordered fan-out of CoverRequests over the shared
/// thread pool. results[i] always answers requests[i] regardless of the
/// worker count, so sweep output is byte-identical across --jobs values
/// (for deterministic algorithms; see deterministic_row()).

#include <cstddef>
#include <vector>

#include "ccov/engine/engine.hpp"
#include "ccov/engine/request.hpp"

namespace ccov::engine {

struct BatchOptions {
  /// Worker threads; 0 selects hardware concurrency, 1 runs inline on the
  /// calling thread (no pool).
  std::size_t jobs = 0;
};

class BatchRunner {
 public:
  explicit BatchRunner(Engine& engine, BatchOptions opts = {});

  /// Run every request; the result vector is index-aligned with the
  /// input. A task that throws (engine.run never should) yields an
  /// ok = false response rather than aborting the batch.
  std::vector<CoverResponse> run(const std::vector<CoverRequest>& requests);

 private:
  Engine& engine_;
  BatchOptions opts_;
};

}  // namespace ccov::engine
