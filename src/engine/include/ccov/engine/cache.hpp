#pragma once
/// \file cache.hpp
/// Thread-safe LRU cache of CoverResponses keyed on canonicalized
/// requests. The ring's automorphism group D_n acts on demand graphs;
/// requests whose demands are rotations/reflections of each other share
/// one cache entry: the stored cover lives in the canonical frame and is
/// mapped back through the group element on every hit (reusing
/// canonical.hpp's rotate_cover/reflect_cover). All-to-all requests are
/// D_n-invariant, so their key is just the scalar request fields.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "ccov/engine/request.hpp"

namespace ccov::engine {

/// The dihedral group element g(v) = rot_shift(refl^reflect(v)) mapping a
/// request's frame onto the canonical frame of its cache key.
struct DihedralElement {
  bool reflect = false;
  std::uint32_t shift = 0;
};

/// Canonical cache key for a request plus the group element that realizes
/// it. Exposed for tests; Engine users never need it directly.
struct CanonicalKey {
  std::string key;
  DihedralElement to_canonical;
};

/// Compute the canonical key: scalar fields, plus the lexicographically
/// least D_n-image of the demand chord multiset (empty demand = K_n, which
/// every group element fixes).
CanonicalKey canonical_request_key(const CoverRequest& req);

/// Apply `g` (respectively its inverse) to every vertex of a cover.
covering::RingCover apply_element(const covering::RingCover& cover,
                                  const DihedralElement& g);
covering::RingCover apply_inverse(const covering::RingCover& cover,
                                  const DihedralElement& g);

class CoverCache {
 public:
  /// \p capacity entries; least-recently-used eviction beyond that.
  explicit CoverCache(std::size_t capacity = 256);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// Look up a response for `req`. On a hit the response is returned in
  /// the request's own frame with cache_hit = true and nodes = 0 (nothing
  /// was searched). On a miss returns nullopt and counts it.
  std::optional<CoverResponse> lookup(const CoverRequest& req);

  /// Store a completed response (its cover is kept in the canonical
  /// frame). Failed responses (!ok) are not cached.
  void insert(const CoverRequest& req, const CoverResponse& resp);

  /// Overloads taking a precomputed key, so a miss-then-insert round trip
  /// canonicalizes the request only once (the Engine's hot path).
  std::optional<CoverResponse> lookup(const CanonicalKey& ck);
  void insert(const CanonicalKey& ck, const CoverResponse& resp);

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::string key;
    CoverResponse resp;  ///< cover stored in the canonical frame
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace ccov::engine
