#pragma once
/// \file cache.hpp
/// Thread-safe, lock-striped LRU cache of CoverResponses keyed on
/// canonicalized requests. The ring's automorphism group D_n acts on
/// demand graphs; requests whose demands are rotations/reflections of each
/// other share one entry: the stored cover lives in the canonical frame
/// and is mapped back through the group element on every hit (reusing
/// canonical.hpp's rotate_cover/reflect_cover). All-to-all requests are
/// D_n-invariant, so their key is just the scalar request fields.
///
/// The cache is sharded: the key hash selects one of N independent
/// shards, each with its own mutex and LRU list, so concurrent lookups
/// do not serialize on a single lock. Aggregate hit/miss/eviction
/// counters are atomics updated outside the shard locks. The store can
/// be persisted to a binary snapshot and warm-started — see store.hpp.

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ccov/engine/request.hpp"
#include "ccov/util/thread_annotations.hpp"

namespace ccov::engine {

/// The dihedral group element g(v) = rot_shift(refl^reflect(v)) mapping a
/// request's frame onto the canonical frame of its cache key.
struct DihedralElement {
  bool reflect = false;
  std::uint32_t shift = 0;
};

/// Canonical cache key for a request plus the group element that realizes
/// it. Exposed for tests; Engine users never need it directly.
struct CanonicalKey {
  std::string key;
  DihedralElement to_canonical;
};

/// Compute the canonical key: scalar fields, plus the lexicographically
/// least D_n-image of the demand chord multiset (empty demand = K_n, which
/// every group element fixes).
CanonicalKey canonical_request_key(const CoverRequest& req);

/// Apply `g` (respectively its inverse) to every vertex of a cover.
covering::RingCover apply_element(const covering::RingCover& cover,
                                  const DihedralElement& g);
covering::RingCover apply_inverse(const covering::RingCover& cover,
                                  const DihedralElement& g);

class CoverCache {
 public:
  /// Shard count used when none is given. Small enough that tiny caches
  /// stay sensible (the count is clamped to the capacity), large enough
  /// that a serve loop's worker threads rarely contend on one stripe.
  static constexpr std::size_t kDefaultShards = 8;

  /// \p capacity total entries across all shards; least-recently-used
  /// eviction per shard beyond its slice. \p shards is clamped to
  /// [1, capacity]; the capacity is split exactly across shards (the
  /// first capacity % shards shards hold one extra entry). shards = 1
  /// gives a single strict-LRU list.
  explicit CoverCache(std::size_t capacity = 256,
                      std::size_t shards = kDefaultShards);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// Look up a response for `req`. On a hit the response is returned in
  /// the request's own frame with cache_hit = true and nodes = 0 (nothing
  /// was searched). On a miss returns nullopt and counts it.
  std::optional<CoverResponse> lookup(const CoverRequest& req);

  /// Store a completed response (its cover is kept in the canonical
  /// frame). Only deterministic outcomes are cached — see should_cache.
  void insert(const CoverRequest& req, const CoverResponse& resp);

  /// Overloads taking a precomputed key, so a miss-then-insert round trip
  /// canonicalizes the request only once (the Engine's hot path).
  std::optional<CoverResponse> lookup(const CanonicalKey& ck);
  void insert(const CanonicalKey& ck, const CoverResponse& resp);

  /// The caching policy: positive results (ok && found) and deterministic
  /// infeasibility proofs (ok && !found && exhausted — the search space
  /// was fully explored, so the answer can never change) are cached.
  /// Genuine errors (!ok), budget-starved non-answers (ok && !found &&
  /// !exhausted) and deadline casualties (timed_out, plus the degraded
  /// greedy-fallback answers — found==true yet deliberately non-minimal)
  /// are transient and stay uncached.
  static bool should_cache(const CoverResponse& resp);

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  void clear();

  /// Every (key, canonical-frame response) pair, sorted by key — the
  /// deterministic entry order the snapshot writer relies on. LRU
  /// recency is not part of the export.
  std::vector<std::pair<std::string, CoverResponse>> export_entries() const;

  /// Insert one canonical-frame entry without touching the hit/miss
  /// counters (snapshot warm-start path). Entries beyond the target
  /// shard's slice evict its LRU tail as usual.
  void import_entry(const std::string& key, CoverResponse resp);

  /// Zero-copy hit probe: on a hit, touches LRU recency, counts the
  /// hit, and invokes `fn(entry, stamp)` with the cached canonical-frame
  /// entry while the shard lock is held (the reference dies with the
  /// call — don't stash it). `stamp` uniquely identifies the stored
  /// value: any store()/import for the key — even writing equal bytes —
  /// issues a fresh one, so callers memoizing derived artifacts (e.g. a
  /// rendered response) can revalidate with one integer compare.
  /// Returns true iff `fn` ran. A miss returns false *without* counting
  /// it, so a caller falling back to lookup()/Engine::run() still
  /// counts that miss exactly once.
  template <typename Fn>
  bool visit(const CanonicalKey& ck, Fn&& fn) {
    Shard& shard = shard_for(ck.key);
    util::MutexLock lk(shard.mu);
    const auto it = shard.index.find(ck.key);
    if (it == shard.index.end()) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
    hits_.fetch_add(1, std::memory_order_relaxed);
    fn(static_cast<const CoverResponse&>(it->second->resp),
       it->second->stamp);
    return true;
  }

 private:
  struct Entry {
    std::string key;
    CoverResponse resp;  ///< cover stored in the canonical frame
    std::uint64_t stamp = 0;  ///< unique per store — see visit()
  };

  struct Shard {
    /// Fixed at construction, read-only afterwards: not guarded.
    std::size_t capacity = 1;
    mutable util::Mutex mu;
    /// front = most recently used
    std::list<Entry> lru CCOV_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        CCOV_GUARDED_BY(mu);
  };

  Shard& shard_for(const std::string& key);
  /// Store `resp` (already in the canonical frame) under `key`.
  void store(const std::string& key, CoverResponse resp);

  std::size_t capacity_;
  std::vector<Shard> shards_;
  /// Source of Entry::stamp values; never reused, so a stamp compare is
  /// a sound freshness check for anything derived from an entry.
  std::atomic<std::uint64_t> next_stamp_{1};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace ccov::engine
