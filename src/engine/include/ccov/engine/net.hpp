#pragma once
/// \file net.hpp
/// TCP plumbing for the serve front ends (POSIX sockets). The pieces
/// layer cleanly:
///
///  - TcpListener / SocketStream: a bound listening socket and a
///    ServeStream over one accepted connection, both non-blocking with
///    all waiting in poll;
///  - ConnectionServer: the transport-agnostic accept loop — self-pipe
///    shutdown, thread-per-connection, max-clients bound, periodic
///    reaping — parameterized over what to do with an accepted socket;
///  - ServeServer: ConnectionServer + the JSONL serve protocol, one
///    serve_session per connection (http.hpp builds the HTTP front end
///    on the same ConnectionServer).
///
/// Shutdown is cooperative through a self-pipe: shutdown() (or a signal
/// handler via wake_fd()) writes one byte, the accept loop and every
/// blocked per-connection read wake up, sessions flush their pending
/// responses and exit, and run() returns so the caller can still save
/// the store.
///
/// SIGPIPE is ignored for the whole process while a server exists
/// (writes use MSG_NOSIGNAL as well): one client disconnecting
/// mid-response tears down only that connection, never the server.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <thread>

#include "ccov/engine/serve.hpp"
#include "ccov/util/thread_annotations.hpp"

namespace ccov::engine::net {

/// Parse a "host:port" listen spec. Accepted forms: "host:port",
/// ":port" (wildcard host), "port" (loopback host), "[v6addr]:port".
/// Port 0 requests an ephemeral port (the listener reports the real
/// one). Returns false and sets *error on malformed specs; never throws.
bool parse_endpoint(const std::string& spec, std::string* host,
                    std::uint16_t* port, std::string* error);

/// Ignore SIGPIPE process-wide so a write to a half-closed socket
/// returns EPIPE instead of killing the process. Idempotent; called by
/// ConnectionServer's constructor.
void ignore_sigpipe();

/// A bound, listening TCP socket. Throws std::runtime_error when the
/// address cannot be resolved or bound.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 64);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually bound port — resolves port 0 to the kernel's pick.
  std::uint16_t port() const { return port_; }

  /// Block until a connection arrives, `wake_fd` becomes readable, or
  /// `timeout_ms` elapses. Returns the accepted socket fd, kWoken when
  /// `wake_fd` fired (shutdown), kTick on timeout (so callers get a
  /// periodic slot for housekeeping such as reaping finished
  /// connections), or kFailed when the listener itself is broken.
  /// Retries EINTR and transient accept errors internally.
  static constexpr int kWoken = -1;
  static constexpr int kFailed = -2;
  static constexpr int kTick = -3;
  int accept_connection(int wake_fd, int timeout_ms = -1);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// ServeStream over a connected socket (switched to non-blocking; all
/// waiting happens in poll). read_some polls the socket together with
/// the server's shutdown pipe, so a blocked read wakes promptly on
/// shutdown and reports end-of-stream. write_all retries EINTR/EAGAIN
/// and partial writes, reports a dead peer (EPIPE/ECONNRESET) as false
/// instead of raising, and — once shutdown has been requested — gives a
/// stalled peer only a bounded grace period to drain its responses, so
/// one full send buffer can never hang the server's shutdown join.
/// Owns the fd.
class SocketStream final : public ServeStream {
 public:
  /// Grace period a write may keep waiting after shutdown is requested.
  static constexpr int kShutdownWriteGraceMs = 5000;

  /// `wake_fd` < 0 disables the shutdown poll (plain blocking reads).
  explicit SocketStream(int fd, int wake_fd = -1);
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  std::ptrdiff_t read_some(char* buf, std::size_t n) override;
  bool write_all(const char* data, std::size_t n) override;

 private:
  int fd_;
  int wake_fd_;
  /// Milliseconds of write grace left once shutdown was observed; -1
  /// until then (wait without a deadline).
  int shutdown_grace_ms_ = -1;
};

/// The generic accept loop every TCP-based front end shares: binds and
/// listens in the constructor (throws std::runtime_error on failure,
/// so port() is valid before run()), then accepts clients and runs one
/// callback per connection on its own thread. Connections beyond
/// `max_clients` get the reject callback on the accepting thread and
/// are closed. Both callbacks receive a connected socket fd (owned by
/// the callback — wrap it in a SocketStream) and the read end of the
/// shutdown self-pipe to pass as that stream's wake fd.
class ConnectionServer {
 public:
  using SessionFn = std::function<void(int client_fd, int wake_fd)>;

  ConnectionServer(const std::string& host, std::uint16_t port, int backlog,
                   std::size_t max_clients);
  ~ConnectionServer();

  ConnectionServer(const ConnectionServer&) = delete;
  ConnectionServer& operator=(const ConnectionServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Accept clients until shutdown() is called; joins every connection
  /// thread before returning. Returns 0 on a clean shutdown, 1 when the
  /// listener broke.
  int run(SessionFn session, SessionFn reject);

  /// Request shutdown from any thread. Safe to call more than once.
  void shutdown();

  /// Write end of the self-pipe — async-signal-safe shutdown channel
  /// for signal handlers (write one byte to trigger shutdown).
  int wake_fd() const { return wake_wr_; }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void reap_finished(bool join_all);

  TcpListener listener_;
  std::size_t max_clients_;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  util::Mutex conns_mu_;
  std::list<Connection> conns_ CCOV_GUARDED_BY(conns_mu_);
};

/// `ccov serve --listen`: a thread-per-connection TCP server in front of
/// serve_session. Every connection shares `engine` (one cache, one
/// pool); each runs the full JSONL protocol independently with its own
/// per-connection line ids starting at 0. Connections beyond
/// config.max_clients are answered with one in-band {"ok":false,...}
/// line and closed.
class ServeServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on
  /// failure) so port() is valid before run() is called.
  ServeServer(Engine& engine, ServeConfig config);

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  std::uint16_t port() const { return server_.port(); }
  const std::string& host() const { return config_.host; }

  /// Accept clients until shutdown() is called; joins every connection
  /// thread before returning. Returns 0 on a clean shutdown.
  int run();

  /// Request shutdown from any thread. Safe to call more than once.
  void shutdown() { server_.shutdown(); }

  /// See ConnectionServer::wake_fd().
  int wake_fd() const { return server_.wake_fd(); }

 private:
  Engine& engine_;
  ServeConfig config_;
  ConnectionServer server_;
};

/// Install SIGINT/SIGTERM handlers that write one byte to `wake_fd`
/// (async-signal-safe) — pass ServeServer::wake_fd() or
/// HttpServer::wake_fd(), or -1 when there is no wake pipe (the stdio
/// front end, whose blocked read the signal itself interrupts thanks to
/// the handler's missing SA_RESTART). When `cancel` is non-null the
/// handler also fires that token (one relaxed atomic store, so still
/// async-signal-safe), aborting every in-flight solve at its next
/// ~4k-node poll — shutdown latency is bounded by the poll interval,
/// not by the deepest running search. The handlers outlive the server
/// object only as no-ops; intended for the CLI process, which serves
/// exactly one server per run (ConnectionServer's destructor disarms
/// the wake fd before closing it). The token must outlive the process's
/// last signal — make it a static in the caller.
void install_signal_shutdown(int wake_fd, util::CancelToken* cancel = nullptr);

}  // namespace ccov::engine::net
