#pragma once
/// \file request.hpp
/// The engine's wire types. Every cover-producing algorithm in the library
/// — constructions, exact solvers, greedy heuristics, the classical
/// baselines and the lambda extension — is invoked through one
/// CoverRequest and answers with one CoverResponse, so batching, caching
/// and parallelism are implemented once in the engine layer instead of
/// per-algorithm.

#include <cstdint>
#include <string>
#include <vector>

#include "ccov/covering/cover.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/graph/graph.hpp"

namespace ccov::engine {

/// One unit of work: "produce a cover of this instance with this
/// algorithm". Plain data; hashable/canonicalizable by CoverCache.
struct CoverRequest {
  /// Registry name of the algorithm ("construct", "solve", ...).
  std::string algorithm;
  /// Ring / instance size (n >= 3).
  std::uint32_t n = 0;
  /// Cycle budget for search algorithms; 0 selects the algorithm default
  /// (rho(n) for the exact solver).
  std::uint64_t budget = 0;
  /// Demand multiplicity for the lambda extension (lambda*K_n).
  std::uint32_t lambda = 1;
  /// Worker count for parallel algorithms; 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Branch-and-bound options, forwarded to solve/solve-parallel.
  covering::SolverOptions solver;
  /// Validate the produced cover against the request's demand.
  bool validate = true;
  /// Explicit demand chords (normalized internally); empty means the
  /// all-to-all demand K_n. Only demand-aware algorithms ("greedy") accept
  /// a non-empty demand.
  std::vector<graph::Edge> demand;
  /// Wall-clock budget in milliseconds; 0 means none. A wire field (the
  /// JSONL protocol's "deadline_ms"), but NOT part of the canonical cache
  /// key — it bounds this run, not the problem. The engine resolves it
  /// into `deadline` at execution time when the serve layer has not
  /// already fixed one.
  std::uint64_t deadline_ms = 0;
  /// Absolute deadline, fixed by the serve layer at the moment the
  /// request was *accepted* — queue wait counts against it, which is
  /// what makes expired-while-queued load shedding possible.
  util::Deadline deadline;
  /// Server-wide cancellation token (SIGINT/SIGTERM); may be null.
  const util::CancelToken* cancel = nullptr;
};

/// Result of running (or cache-resolving) one CoverRequest.
struct CoverResponse {
  bool ok = false;           ///< the algorithm ran to completion
  std::string error;         ///< failure reason when !ok
  std::string algorithm;     ///< echo of the request
  std::uint32_t n = 0;       ///< echo of the request
  covering::RingCover cover; ///< the produced cover (when ok && found)
  bool found = false;        ///< a cover was produced within the budget
  bool exhausted = false;    ///< search space fully explored (solvers)
  std::uint64_t nodes = 0;   ///< branch nodes visited; 0 on cache hits
  bool validated = false;    ///< validation was requested and performed
  bool valid = false;        ///< validation verdict (when validated)
  bool cache_hit = false;    ///< served from the CoverCache
  bool timed_out = false;    ///< deadline expired (or shutdown cancelled)
                             ///< before the search settled; never cached
  bool degraded = false;     ///< timed-out exact solve answered with the
                             ///< greedy fallback cover; never cached
  bool shed = false;         ///< deadline expired while queued; answered
                             ///< without solving (serve layer)
  double elapsed_ms = 0.0;   ///< wall time inside the engine
};

/// Deterministic one-line rendering of a response: every reproducible
/// field including the cycle list, but neither timing nor cache metadata.
/// Two runs of the same deterministic algorithm produce byte-identical
/// rows, which is what the batch-determinism tests and the sweep CSV
/// comparisons rely on.
std::string deterministic_row(const CoverResponse& resp);

/// Build a demand Graph on `n` vertices from explicit chords (multiplicity
/// preserved; each edge normalized u <= v).
graph::Graph demand_graph(std::uint32_t n,
                          const std::vector<graph::Edge>& demand);

}  // namespace ccov::engine
