#pragma once
/// \file shm.hpp
/// Zero-copy shared-memory transport for co-located clients (POSIX
/// only, like net.hpp). `ccov serve --shm NAME` creates a shm_open'd
/// segment holding a handshake header plus two lock-free SPSC byte
/// rings (util::ShmByteRing): client -> server requests and server ->
/// client responses, both carrying the ordinary JSONL serve protocol.
/// The steady-state hot path is syscall-free and copy-once per side —
/// a request line is memcpy'd straight into the mapped ring and read
/// straight out of it, no socket, no kernel buffer.
///
/// Segment layout (see ShmSegmentHeader):
///
///   [header: magic/version/capacity handshake, client slot, flags]
///   [request ring  control + data]   client writes, server reads
///   [response ring control + data]   server writes, client reads
///
/// Connection model: one client at a time (the rings are SPSC). A
/// client claims the slot by CAS-ing its identity (pid plus a
/// start-time token, packed into one word so the claim is a single
/// atomic publish) from 0; the server runs one serve_session over the
/// rings, and when the session ends (client set client_eof and the
/// request ring drained, client vanished, or shutdown) it resets the
/// rings, bumps the epoch and re-opens the slot. Liveness probes pair
/// kill(pid, 0) with the process start time from /proc/<pid>/stat, so
/// a dead peer whose pid was recycled by an unrelated process is still
/// detected — a vanished client frees the slot instead of wedging the
/// server, and a client notices a crashed server even if its pid came
/// back; the epoch lets a stale client discover its session was torn
/// down. A second concurrent client fails its claim with "busy"
/// instead of corrupting the stream.
///
/// Shutdown mirrors net.hpp: ShmServer exposes a self-pipe wake_fd()
/// for install_signal_shutdown; on shutdown it raises the header flag,
/// wakes both rings' futexes so a blocked peer re-checks promptly,
/// drains the session, unmaps and shm_unlink's the segment.
///
/// Thread-safety discipline: this transport is deliberately lock-free —
/// the segment header's claim slot, flags and epoch are std::atomic
/// words in shared memory, and the rings are SPSC (see shm_ring.hpp).
/// There is no mutex to annotate, so unlike the lock-owning classes
/// (see util/thread_annotations.hpp) these types carry no capability
/// annotations; the invariants are per-word atomic protocols documented
/// at each member instead. Cross-process atomics are invisible to
/// Clang's thread-safety analysis by design.

#include <cstddef>
#include <cstdint>
#include <string>

#include "ccov/engine/serve.hpp"
#include "ccov/util/shm_ring.hpp"

namespace ccov::engine::shm {

inline constexpr std::uint64_t kShmMagic = 0x31646873766f6363ULL;  // "ccovshd1"
inline constexpr std::uint32_t kShmVersion = 1;
/// client_slot sentinel held by the server while it rebuilds the rings
/// between sessions (pid 1 is never a transport client).
inline constexpr std::uint64_t kSlotResetting = 1;

/// Process start time (Linux: the starttime field of /proc/<pid>/stat,
/// in clock ticks since boot), or 0 when it cannot be determined —
/// non-Linux platforms, a vanished pid, an unreadable /proc. Paired
/// with the pid in every liveness probe so a recycled pid belonging to
/// an unrelated process is not mistaken for a live peer.
std::uint64_t proc_start_time(std::uint32_t pid);

/// Handshake + client slot at the front of the segment. Standard
/// layout; every mutable field is a lock-free atomic because the two
/// sides are different processes.
struct ShmSegmentHeader {
  /// kShmMagic, release-stored *last* by the server's init so a client
  /// attaching mid-construction rejects the segment instead of racing.
  std::atomic<std::uint64_t> magic;
  std::uint32_t version = 0;        ///< kShmVersion
  std::uint32_t ring_capacity = 0;  ///< data bytes per ring, power of two
  std::atomic<std::uint32_t> server_pid;
  /// proc_start_time of server_pid, written once before the magic is
  /// published. Clients fold it into their server-liveness probes so a
  /// recycled server pid reads as dead, not alive.
  std::uint64_t server_start = 0;
  /// The client slot: 0 = free, kSlotResetting while the server
  /// rebuilds the rings between sessions, otherwise the claimant's
  /// identity packed as (start-time token << 32) | pid — one word so
  /// pid and token publish atomically in the claiming CAS (a separate
  /// token field could be observed stale between the CAS and its
  /// store, reaping a live client). Claimed by exactly one client;
  /// cleared by a clean detach or by the server when the peer is gone.
  std::atomic<std::uint64_t> client_slot;
  /// Bumped by the server every time it resets the rings for a new
  /// session; a client that sees it change knows its session is over.
  std::atomic<std::uint32_t> epoch;
  /// Client sets after its last request byte: the server's read side
  /// treats "request ring empty + client_eof" as end-of-stream.
  std::atomic<std::uint32_t> client_eof;
  /// Server sets after the session's last response byte: the client's
  /// read side treats "response ring empty + server_eof" as EOF.
  std::atomic<std::uint32_t> server_eof;
  /// Server raises on teardown; both sides abandon blocking waits.
  std::atomic<std::uint32_t> shutdown;
};

/// Total segment size for a given per-ring capacity.
std::size_t segment_bytes(std::size_t ring_capacity);

/// Normalize a user-supplied segment name to the "/name" form POSIX
/// shm_open wants. Returns false on names that are empty, contain '/',
/// or exceed NAME_MAX.
bool normalize_shm_name(const std::string& name, std::string* out,
                        std::string* error);

/// `ccov serve --shm NAME`: the shared-memory front end. Creates the
/// segment in the constructor (throws std::runtime_error when the name
/// is taken by a *live* server; a stale segment left by a dead one is
/// recycled), serves one client session at a time until shutdown, then
/// unlinks the segment.
class ShmServer {
 public:
  ShmServer(Engine& engine, ServeConfig config);
  ~ShmServer();

  ShmServer(const ShmServer&) = delete;
  ShmServer& operator=(const ShmServer&) = delete;

  /// The normalized segment name ("/name").
  const std::string& name() const { return name_; }

  /// Serve client sessions until shutdown() is called. Returns 0 on a
  /// clean shutdown.
  int run();

  /// Request shutdown from any thread. Safe to call more than once.
  void shutdown();

  /// Write end of the self-pipe — async-signal-safe shutdown channel
  /// for install_signal_shutdown, exactly like ConnectionServer.
  int wake_fd() const { return wake_wr_; }

 private:
  bool shutdown_requested() const;
  void reset_session();

  Engine& engine_;
  ServeConfig config_;
  std::string name_;
  void* mem_ = nullptr;
  std::size_t size_ = 0;
  ShmSegmentHeader* header_ = nullptr;
  util::ShmByteRing request_ring_;
  util::ShmByteRing response_ring_;
  /// Segment fd, held open (with an exclusive flock) for the server's
  /// lifetime: the lock is how a second server distinguishes "live,
  /// possibly mid-constructor" from "stale" without a TOCTOU window.
  int shm_fd_ = -1;
  /// Identity of the inode we created — the destructor unlinks the
  /// name only while it still resolves to this segment, never a
  /// successor's.
  std::uint64_t shm_dev_ = 0;
  std::uint64_t shm_ino_ = 0;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
};

/// Client side of the transport: attach to a served segment, claim the
/// slot, exchange JSONL lines. Not thread-safe (one session, one user);
/// send and receive may be driven from two threads like any SPSC pair.
class ShmClient {
 public:
  ShmClient() = default;
  ~ShmClient();

  ShmClient(const ShmClient&) = delete;
  ShmClient& operator=(const ShmClient&) = delete;

  /// Attach to segment `name` and claim the client slot. Returns false
  /// and sets *error on a missing segment, a bad magic/version/capacity
  /// handshake (torn or foreign segment), a segment smaller than its
  /// header claims, or a slot already held by a live client.
  bool connect(const std::string& name, std::string* error);

  bool connected() const { return header_ != nullptr; }

  /// True while the session is usable: server alive, not shutting
  /// down, epoch unchanged since the claim.
  bool ok() const;

  /// Send raw request bytes (the caller supplies the newline framing).
  /// Blocks on a full ring; returns false when the server shut down or
  /// tore the session down (epoch moved on). A caller that may fill
  /// *both* rings (batch larger than the response ring) must use
  /// try_send/wait_send and drain responses in between instead.
  bool send(const char* data, std::size_t n);
  bool send_line(const std::string& line);

  /// Nonblocking send: accepts up to `n` bytes, returns the number
  /// taken (0 when the ring is full — check ok() and drain responses).
  std::size_t try_send(const char* data, std::size_t n);

  /// Block until the request ring has space or ~timeout_ms elapsed.
  void wait_send(int timeout_ms);

  /// Declare end of requests: the server answers what it has and ends
  /// the session.
  void finish();

  /// Read one response line (without the trailing newline). Returns
  /// false on end-of-stream: the server finished the session (EOF),
  /// shut down, or reset the epoch.
  bool read_line(std::string* line);

  /// Nonblocking drain of whatever response bytes are ready right now;
  /// appends to *out and returns the number of bytes taken. Lets a
  /// pumping client interleave sends and receives without deadlocking
  /// on two full rings.
  std::size_t drain_available(std::string* out);

  /// Blocking drain into the caller's buffer: appends response bytes
  /// as they arrive and returns the number appended, or 0 at
  /// end-of-stream (server finished the session, died, shut down, or
  /// reset the epoch — distinguish via server_finished()). A pumping
  /// client that mixed drain_available with read_line would split a
  /// response line across two buffers; this keeps the whole session in
  /// one.
  std::size_t read_some(std::string* out);

  /// True once the server marked the response stream complete
  /// (server_eof): every owed byte has been published. False after an
  /// abort — server death, shutdown, epoch reset — where responses may
  /// be missing. Stable while connected: the server cannot recycle the
  /// session (which clears the flag) while this client holds the slot.
  bool server_finished() const;

  /// Release the slot and unmap. Idempotent.
  void close();

 private:
  bool session_over() const;

  void* mem_ = nullptr;
  std::size_t size_ = 0;
  ShmSegmentHeader* header_ = nullptr;
  util::ShmByteRing request_ring_;
  util::ShmByteRing response_ring_;
  std::uint32_t epoch_ = 0;
  std::uint64_t slot_ = 0;  ///< packed identity this client claimed with
  std::string rx_;  ///< bytes drained but not yet returned as lines
  std::string tx_;  ///< reused send_line staging buffer (line + '\n')
};

}  // namespace ccov::engine::shm
