#include "ccov/engine/request.hpp"

#include <sstream>

#include "ccov/covering/cycle.hpp"

namespace ccov::engine {

std::string deterministic_row(const CoverResponse& resp) {
  std::ostringstream os;
  os << "algo=" << resp.algorithm << " n=" << resp.n << " ok=" << resp.ok
     << " found=" << resp.found << " exhausted=" << resp.exhausted
     << " nodes=" << resp.nodes << " cycles=" << resp.cover.size()
     << " c3=" << covering::count_c3(resp.cover)
     << " c4=" << covering::count_c4(resp.cover)
     << " validated=" << resp.validated << " valid=" << resp.valid
     << " error='" << resp.error << "' cover=[";
  for (std::size_t i = 0; i < resp.cover.cycles.size(); ++i) {
    if (i) os << ";";
    os << covering::to_string(resp.cover.cycles[i]);
  }
  os << "]";
  return os.str();
}

graph::Graph demand_graph(std::uint32_t n,
                          const std::vector<graph::Edge>& demand) {
  graph::Graph g(n);
  for (const auto& e : demand) g.add_edge(e.u, e.v);
  return g;
}

}  // namespace ccov::engine
