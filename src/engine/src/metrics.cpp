#include "ccov/engine/metrics.hpp"

#include <cctype>
#include <stdexcept>

namespace ccov::engine {

void MetricsRegistry::check_name(const std::string& name) {
  bool ok = !name.empty() &&
            (std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_');
  for (std::size_t i = 1; ok && i < name.size(); ++i)
    ok = std::isalnum(static_cast<unsigned char>(name[i])) || name[i] == '_';
  if (!ok)
    throw std::invalid_argument("metrics: invalid metric name '" + name + "'");
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  check_name(name);
  util::MutexLock lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.kind = Metric::Kind::kCounter;
    m.help = help;
    m.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(m)).first;
  }
  if (it->second.kind != Metric::Kind::kCounter || !it->second.counter)
    throw std::invalid_argument("metrics: '" + name +
                                "' is not an owned counter");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  check_name(name);
  util::MutexLock lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.kind = Metric::Kind::kGauge;
    m.help = help;
    m.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(m)).first;
  }
  if (it->second.kind != Metric::Kind::kGauge || !it->second.gauge)
    throw std::invalid_argument("metrics: '" + name + "' is not an owned gauge");
  return *it->second.gauge;
}

void MetricsRegistry::counter_fn(const std::string& name,
                                 const std::string& help,
                                 std::function<std::uint64_t()> fn) {
  check_name(name);
  if (!fn) throw std::invalid_argument("metrics: null callback for " + name);
  util::MutexLock lk(mu_);
  Metric m;
  m.kind = Metric::Kind::kCounter;
  m.help = help;
  m.read_u64 = std::move(fn);
  if (!metrics_.emplace(name, std::move(m)).second)
    throw std::invalid_argument("metrics: duplicate metric '" + name + "'");
}

void MetricsRegistry::gauge_fn(const std::string& name, const std::string& help,
                               std::function<std::int64_t()> fn) {
  check_name(name);
  if (!fn) throw std::invalid_argument("metrics: null callback for " + name);
  util::MutexLock lk(mu_);
  Metric m;
  m.kind = Metric::Kind::kGauge;
  m.help = help;
  m.read_i64 = std::move(fn);
  if (!metrics_.emplace(name, std::move(m)).second)
    throw std::invalid_argument("metrics: duplicate metric '" + name + "'");
}

std::int64_t MetricsRegistry::current_value(const Metric& m) {
  if (m.counter) return static_cast<std::int64_t>(m.counter->value());
  if (m.gauge) return m.gauge->value();
  if (m.read_u64) return static_cast<std::int64_t>(m.read_u64());
  return m.read_i64();
}

std::string MetricsRegistry::render_prometheus() const {
  util::MutexLock lk(mu_);
  std::string out;
  for (const auto& [name, m] : metrics_) {
    out += "# HELP " + name + " " + m.help + "\n";
    out += "# TYPE " + name + " ";
    out += m.kind == Metric::Kind::kCounter ? "counter" : "gauge";
    out += "\n";
    out += name + " " + std::to_string(current_value(m)) + "\n";
  }
  return out;
}

std::int64_t MetricsRegistry::value(const std::string& name) const {
  util::MutexLock lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? -1 : current_value(it->second);
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::snapshot()
    const {
  util::MutexLock lk(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) out.emplace_back(name, current_value(m));
  return out;
}

std::size_t MetricsRegistry::size() const {
  util::MutexLock lk(mu_);
  return metrics_.size();
}

}  // namespace ccov::engine
