#include "ccov/engine/engine.hpp"

#include <exception>
#include <utility>

#include "ccov/covering/cover.hpp"
#include "ccov/util/timer.hpp"

namespace ccov::engine {

Engine::Engine(EngineOptions opts, AlgorithmRegistry& registry)
    : opts_(opts),
      registry_(registry),
      cache_(opts.cache_capacity, opts.cache_shards) {
  // Cache series read the cache's own atomics at scrape time — one
  // source of truth, nothing counted twice. The cache outlives the
  // registry's callers because both are members of this engine.
  metrics_.counter_fn("ccov_cache_hits_total",
                      "CoverCache lookups served from the cache",
                      [this] { return cache_.stats().hits; });
  metrics_.counter_fn("ccov_cache_misses_total",
                      "CoverCache lookups that required a computation",
                      [this] { return cache_.stats().misses; });
  metrics_.counter_fn("ccov_cache_evictions_total",
                      "CoverCache entries evicted by the per-shard LRU",
                      [this] { return cache_.stats().evictions; });
  metrics_.gauge_fn("ccov_cache_entries", "CoverCache entries currently stored",
                    [this] { return static_cast<std::int64_t>(cache_.size()); });
  metrics_.gauge_fn("ccov_cache_capacity",
                    "CoverCache total capacity across shards", [this] {
                      return static_cast<std::int64_t>(cache_.capacity());
                    });
  // Node throughput: cumulative branch nodes searched by every request
  // that ran an algorithm (cache hits search nothing). rate() of this
  // series is the engine's solve-node throughput.
  solver_nodes_ = &metrics_.counter(
      "ccov_solver_nodes_total",
      "Cumulative branch-and-bound nodes searched across all requests");
  // Robustness series. Shed is owned by the serve sessions (a shed
  // request never reaches Engine::run) but registered here so every
  // scrape exposes the full schema at zero.
  timed_out_ = &metrics_.counter(
      "ccov_requests_timed_out_total",
      "Requests whose deadline expired before the search settled");
  degraded_ = &metrics_.counter(
      "ccov_requests_degraded_total",
      "Timed-out exact solves answered with the greedy fallback cover");
  cancellations_ = &metrics_.counter(
      "ccov_solver_cancellations_total",
      "In-flight solves aborted by the server's cancel token (shutdown)");
  metrics_.counter("ccov_requests_shed_total",
                   "Requests answered shed:true because their deadline "
                   "expired while queued");
  // Pre-register the serve-session series so a scrape before the first
  // connection still exposes the full schema at zero.
  metrics_.counter("ccov_serve_sessions_total",
                   "Serve sessions started (stdio, TCP and HTTP batches)");
  metrics_.gauge("ccov_serve_sessions_active",
                 "Serve sessions currently running");
  metrics_.counter("ccov_serve_requests_total",
                   "Compute requests accepted by serve sessions");
  metrics_.counter("ccov_serve_verbs_total",
                   "Control verbs executed by serve sessions");
  metrics_.counter("ccov_serve_errors_total",
                   "In-band protocol errors answered by serve sessions");
  metrics_.gauge("ccov_serve_pipeline_depth",
                 "Flush jobs currently queued or running across sessions");
}

util::ThreadPool& Engine::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<util::ThreadPool>(opts_.pool_threads);
  });
  return *pool_;
}

CoverResponse Engine::run(const CoverRequest& req) {
  CoverResponse resp;
  resp.algorithm = req.algorithm;
  resp.n = req.n;

  const Algorithm* algo = registry_.find(req.algorithm);
  if (!algo) {
    resp.error = "unknown algorithm '" + req.algorithm + "'";
    return resp;
  }
  if (req.n < 3) {
    resp.error = "n must be >= 3";
    return resp;
  }

  const bool cacheable = opts_.use_cache && algo->cacheable;
  CanonicalKey ck;
  if (cacheable) {
    ck = canonical_request_key(req);
    if (auto hit = cache_.lookup(ck)) return *std::move(hit);
  }

  // Resolve a relative deadline_ms into an absolute deadline unless the
  // serve layer already fixed one at accept time. The copy is taken only
  // when a deadline actually needs resolving — the common undeadlined
  // request never pays for it.
  CoverRequest local;
  const CoverRequest* eff = &req;
  if (!req.deadline.set() && req.deadline_ms > 0) {
    local = req;
    local.deadline = util::Deadline::after_ms(
        static_cast<std::int64_t>(req.deadline_ms));
    eff = &local;
  }

  util::Timer timer;
  try {
    AlgorithmOutcome out = algo->run(*eff);
    resp.ok = true;
    resp.found = out.found;
    resp.exhausted = out.exhausted;
    resp.timed_out = out.timed_out || out.cancelled;
    resp.nodes = out.nodes;
    resp.cover = std::move(out.cover);
    if (out.nodes) solver_nodes_->add(out.nodes);
    if (out.cancelled)
      cancellations_->add(1);
    else if (out.timed_out)
      timed_out_->add(1);
    // Graceful degradation: a deadline-expired exact solve is answered
    // with the greedy cover instead of a bare timeout. Shutdown
    // cancellation is exempt — its whole point is to finish fast.
    if (opts_.fallback_greedy && out.timed_out && !out.cancelled &&
        !resp.found) {
      if (const Algorithm* greedy = registry_.find("greedy")) {
        AlgorithmOutcome fb = greedy->run(*eff);
        resp.cover = std::move(fb.cover);
        resp.found = fb.found;
        resp.degraded = true;
        degraded_->add(1);
      }
    }
  } catch (const std::exception& e) {
    resp.error = e.what();
    resp.elapsed_ms = timer.millis();
    return resp;
  }

  if (eff->validate && resp.found) {
    resp.validated = true;
    if (algo->validate) {
      resp.valid = algo->validate(*eff, resp.cover);
    } else if (eff->demand.empty()) {
      resp.valid = covering::validate_cover(resp.cover).ok;
    } else {
      resp.valid = covering::validate_cover_against(
                       resp.cover, demand_graph(eff->n, eff->demand))
                       .ok;
    }
  }
  resp.elapsed_ms = timer.millis();

  if (cacheable) cache_.insert(ck, resp);
  return resp;
}

}  // namespace ccov::engine
