#include "ccov/engine/engine.hpp"

#include <exception>
#include <utility>

#include "ccov/covering/cover.hpp"
#include "ccov/util/timer.hpp"

namespace ccov::engine {

Engine::Engine(EngineOptions opts, AlgorithmRegistry& registry)
    : opts_(opts),
      registry_(registry),
      cache_(opts.cache_capacity, opts.cache_shards) {}

util::ThreadPool& Engine::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<util::ThreadPool>(opts_.pool_threads);
  });
  return *pool_;
}

CoverResponse Engine::run(const CoverRequest& req) {
  CoverResponse resp;
  resp.algorithm = req.algorithm;
  resp.n = req.n;

  const Algorithm* algo = registry_.find(req.algorithm);
  if (!algo) {
    resp.error = "unknown algorithm '" + req.algorithm + "'";
    return resp;
  }
  if (req.n < 3) {
    resp.error = "n must be >= 3";
    return resp;
  }

  const bool cacheable = opts_.use_cache && algo->cacheable;
  CanonicalKey ck;
  if (cacheable) {
    ck = canonical_request_key(req);
    if (auto hit = cache_.lookup(ck)) return *std::move(hit);
  }

  util::Timer timer;
  try {
    AlgorithmOutcome out = algo->run(req);
    resp.ok = true;
    resp.found = out.found;
    resp.exhausted = out.exhausted;
    resp.nodes = out.nodes;
    resp.cover = std::move(out.cover);
  } catch (const std::exception& e) {
    resp.error = e.what();
    resp.elapsed_ms = timer.millis();
    return resp;
  }

  if (req.validate && resp.found) {
    resp.validated = true;
    if (algo->validate) {
      resp.valid = algo->validate(req, resp.cover);
    } else if (req.demand.empty()) {
      resp.valid = covering::validate_cover(resp.cover).ok;
    } else {
      resp.valid = covering::validate_cover_against(
                       resp.cover, demand_graph(req.n, req.demand))
                       .ok;
    }
  }
  resp.elapsed_ms = timer.millis();

  if (cacheable) cache_.insert(ck, resp);
  return resp;
}

}  // namespace ccov::engine
