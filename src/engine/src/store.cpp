#include "ccov/engine/store.hpp"

#include "ccov/util/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ccov::engine {

namespace {

// -- little-endian primitives ----------------------------------------------

void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 8);
}

void put_string(std::ostream& os, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::runtime_error("snapshot: string too long");
  put_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[noreturn]] void truncated() {
  throw std::runtime_error("snapshot: truncated or corrupt stream");
}

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c == std::char_traits<char>::eof()) truncated();
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& is) {
  char b[4];
  if (!is.read(b, 4)) truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char b[8];
  if (!is.read(b, 8)) truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i])) << (8 * i);
  return v;
}

/// Longest string (cache key, algorithm name, error message) accepted
/// from a snapshot. Real keys are tens of bytes; 16 MiB of headroom
/// keeps a corrupt or hostile length field (up to 4 GiB as a raw u32)
/// from sizing an allocation before a single payload byte is checked.
constexpr std::uint32_t kMaxStringBytes = 1u << 24;

std::string get_string(std::istream& is) {
  const std::uint32_t len = get_u32(is);
  if (len > kMaxStringBytes)
    throw std::runtime_error("snapshot: implausible string length");
  std::string s(len, '\0');
  if (len && !is.read(s.data(), static_cast<std::streamsize>(len))) truncated();
  return s;
}

// -- response encoding ------------------------------------------------------

constexpr std::uint8_t kFlagOk = 1u << 0;
constexpr std::uint8_t kFlagFound = 1u << 1;
constexpr std::uint8_t kFlagExhausted = 1u << 2;
constexpr std::uint8_t kFlagValidated = 1u << 3;
constexpr std::uint8_t kFlagValid = 1u << 4;

void put_response(std::ostream& os, const CoverResponse& resp) {
  std::uint8_t flags = 0;
  if (resp.ok) flags |= kFlagOk;
  if (resp.found) flags |= kFlagFound;
  if (resp.exhausted) flags |= kFlagExhausted;
  if (resp.validated) flags |= kFlagValidated;
  if (resp.valid) flags |= kFlagValid;
  put_u8(os, flags);
  put_string(os, resp.algorithm);
  put_string(os, resp.error);
  put_u32(os, resp.n);
  put_u64(os, resp.nodes);
  put_u32(os, resp.cover.n);
  if (resp.cover.cycles.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::runtime_error("snapshot: cover too large");
  put_u32(os, static_cast<std::uint32_t>(resp.cover.cycles.size()));
  for (const covering::Cycle& c : resp.cover.cycles) {
    put_u32(os, static_cast<std::uint32_t>(c.size()));
    for (const covering::Vertex v : c) put_u32(os, v);
  }
}

// Sanity bounds for sizes read from an untrusted stream: every count is
// validated against these *before* any allocation sized by it, so a
// corrupt snapshot fails with a clean std::runtime_error instead of a
// multi-gigabyte reserve / std::bad_alloc.
constexpr std::uint32_t kMaxRingSize = 1u << 20;
constexpr std::uint32_t kMaxCyclesPerCover = 1u << 24;

CoverResponse get_response(std::istream& is) {
  CoverResponse resp;
  const std::uint8_t flags = get_u8(is);
  resp.ok = flags & kFlagOk;
  resp.found = flags & kFlagFound;
  resp.exhausted = flags & kFlagExhausted;
  resp.validated = flags & kFlagValidated;
  resp.valid = flags & kFlagValid;
  resp.algorithm = get_string(is);
  resp.error = get_string(is);
  resp.n = get_u32(is);
  resp.nodes = get_u64(is);
  resp.cover.n = get_u32(is);
  if (resp.n > kMaxRingSize || resp.cover.n > kMaxRingSize)
    throw std::runtime_error("snapshot: implausible ring size");
  const std::uint32_t cycles = get_u32(is);
  if (cycles > kMaxCyclesPerCover)
    throw std::runtime_error("snapshot: implausible cycle count");
  // A within-bounds count can still be a lie about a tiny stream, and at
  // 16 bytes of vector header per cycle even kMaxCyclesPerCover reserves
  // ~400 MB up front. Trust the count only up to a modest read-ahead;
  // push_back growth covers an honest larger cover.
  resp.cover.cycles.reserve(std::min(cycles, 1u << 12));
  for (std::uint32_t i = 0; i < cycles; ++i) {
    const std::uint32_t len = get_u32(is);
    // A cycle never has more vertices than the (already sanity-checked)
    // ring size, and never fewer than 3.
    if (len > resp.cover.n || len < 3)
      throw std::runtime_error("snapshot: implausible cycle length");
    covering::Cycle c;
    c.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) c.push_back(get_u32(is));
    resp.cover.cycles.push_back(std::move(c));
  }
  return resp;
}

}  // namespace

void save_snapshot(std::ostream& os, const CoverCache& cache) {
  const auto entries = cache.export_entries();
  os.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(os, kSnapshotVersion);
  put_u64(os, entries.size());
  for (const auto& [key, resp] : entries) {
    put_string(os, key);
    put_response(os, resp);
  }
  if (!os) throw std::runtime_error("snapshot: write failed");
}

std::size_t load_snapshot(std::istream& is, CoverCache& cache) {
  char magic[sizeof(kSnapshotMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0)
    throw std::runtime_error("snapshot: bad magic (not a ccov snapshot)");
  const std::uint32_t version = get_u32(is);
  if (version != kSnapshotVersion)
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(version));
  const std::uint64_t count = get_u64(is);
  // Decode the whole stream before touching the destination cache, so a
  // snapshot that turns out to be truncated or corrupt mid-way leaves
  // `cache` exactly as it was.
  std::vector<std::pair<std::string, CoverResponse>> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, 1u << 16)));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = get_string(is);
    CoverResponse resp = get_response(is);
    entries.emplace_back(std::move(key), std::move(resp));
  }
  for (auto& [key, resp] : entries)
    cache.import_entry(key, std::move(resp));
  return static_cast<std::size_t>(count);
}

namespace {

/// Flush the file's data to stable storage (best effort on platforms
/// without fsync) so the rename below never publishes a snapshot whose
/// bytes are still only in the page cache.
void sync_to_disk(const std::filesystem::path& p) {
#ifndef _WIN32
  const int fd = ::open(p.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("snapshot: cannot reopen " +
                                       p.string() + " for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw std::runtime_error("snapshot: fsync of " + p.string() + " failed");
#else
  (void)p;
#endif
}

}  // namespace

void save_snapshot_file(const std::string& path, const CoverCache& cache) {
  namespace fs = std::filesystem;
  // Write-to-temp-then-rename: the temp file lives in the target's
  // directory so the final rename is an atomic same-filesystem replace.
  // A crash at any point leaves either the old snapshot or the new one —
  // never a truncated hybrid. The name is unique per process *and* per
  // save, so concurrent savers cannot trample each other's temp file.
  static std::atomic<std::uint64_t> save_seq{0};
  const fs::path target(path);
  fs::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
#ifdef _WIN32
  const long pid = static_cast<long>(::_getpid());
#else
  const long pid = static_cast<long>(::getpid());
#endif
  const fs::path tmp =
      dir / (target.filename().string() + ".tmp." + std::to_string(pid) + "." +
             std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed)));
  try {
    // Fault-injection seams: each stage of the atomic save can be made
    // to throw (simulated ENOSPC/EIO). The catch below removes the temp
    // file, so an injected failure — like a real one — leaves the
    // previous snapshot untouched and no *.tmp.* debris behind.
    if (CCOV_FAILPOINT("snapshot_open"))
      throw std::runtime_error("snapshot: cannot open " + tmp.string() +
                               " for writing (injected)");
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        throw std::runtime_error("snapshot: cannot open " + tmp.string() +
                                 " for writing");
      save_snapshot(os, cache);
      os.flush();
      if (CCOV_FAILPOINT("snapshot_write"))
        throw std::runtime_error("snapshot: write to " + tmp.string() +
                                 " failed (injected ENOSPC)");
      if (!os)
        throw std::runtime_error("snapshot: write to " + tmp.string() +
                                 " failed");
    }
    if (CCOV_FAILPOINT("snapshot_fsync"))
      throw std::runtime_error("snapshot: fsync of " + tmp.string() +
                               " failed (injected EIO)");
    sync_to_disk(tmp);
    if (CCOV_FAILPOINT("snapshot_rename"))
      throw std::runtime_error("snapshot: rename of " + tmp.string() +
                               " failed (injected)");
    fs::rename(tmp, target);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
}

std::size_t load_snapshot_file(const std::string& path, CoverCache& cache) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot: cannot open " + path);
  return load_snapshot(is, cache);
}

std::uint64_t snapshot_entry_count_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("snapshot: cannot open " + path);
  char magic[sizeof(kSnapshotMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0)
    throw std::runtime_error("snapshot: bad magic (not a ccov snapshot)");
  const std::uint32_t version = get_u32(is);
  if (version != kSnapshotVersion)
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(version));
  return get_u64(is);
}

}  // namespace ccov::engine
