#include "ccov/engine/net.hpp"

#include "ccov/util/failpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#endif

namespace ccov::engine::net {

#ifdef _WIN32
// The net layer is POSIX-only for now; every entry point fails cleanly
// so the rest of the library stays usable on other platforms.
bool parse_endpoint(const std::string&, std::string*, std::uint16_t*,
                    std::string* error) {
  *error = "net: not supported on this platform";
  return false;
}
void ignore_sigpipe() {}
TcpListener::TcpListener(const std::string&, std::uint16_t, int) {
  throw std::runtime_error("net: not supported on this platform");
}
TcpListener::~TcpListener() = default;
int TcpListener::accept_connection(int, int) { return kFailed; }
void TcpListener::close() {}
SocketStream::SocketStream(int fd, int wake_fd) : fd_(fd), wake_fd_(wake_fd) {}
SocketStream::~SocketStream() = default;
std::ptrdiff_t SocketStream::read_some(char*, std::size_t) { return -1; }
bool SocketStream::write_all(const char*, std::size_t) { return false; }
ConnectionServer::ConnectionServer(const std::string& host, std::uint16_t port,
                                   int backlog, std::size_t max_clients)
    : listener_(host, port, backlog), max_clients_(max_clients) {}
ConnectionServer::~ConnectionServer() = default;
int ConnectionServer::run(SessionFn, SessionFn) { return 1; }
void ConnectionServer::shutdown() {}
void ConnectionServer::reap_finished(bool) {}
ServeServer::ServeServer(Engine& engine, ServeConfig config)
    : engine_(engine),
      config_(std::move(config)),
      server_(config_.host, config_.port, config_.backlog,
              config_.max_clients) {}
int ServeServer::run() { return 1; }
void install_signal_shutdown(int, util::CancelToken*) {}
#else

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

bool parse_endpoint(const std::string& spec, std::string* host,
                    std::uint16_t* port, std::string* error) {
  std::string h;
  std::string p;
  if (!spec.empty() && spec.front() == '[') {
    // "[v6addr]:port"
    const std::size_t close = spec.find(']');
    if (close == std::string::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':') {
      *error = "expected '[host]:port'";
      return false;
    }
    h = spec.substr(1, close - 1);
    p = spec.substr(close + 2);
  } else {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      h = "127.0.0.1";  // bare "port"
      p = spec;
    } else {
      h = spec.substr(0, colon);
      p = spec.substr(colon + 1);
      if (h.find(':') != std::string::npos) {
        // A bare IPv6 address ("::1") would silently split at the last
        // colon into the wrong host and port.
        *error = "IPv6 addresses must be bracketed: '[" + spec + "]:port'";
        return false;
      }
      if (h.empty()) h = "0.0.0.0";  // ":port" = wildcard
    }
  }
  if (h.empty() || p.empty()) {
    *error = "expected 'host:port'";
    return false;
  }
  unsigned long value = 0;
  for (const char c : p) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      *error = "port '" + p + "' is not a number";
      return false;
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 65535) {
      *error = "port '" + p + "' is out of range";
      return false;
    }
  }
  *host = h;
  *port = static_cast<std::uint16_t>(value);
  error->clear();
  return true;
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0)
    throw std::runtime_error("net: cannot resolve '" + host +
                             "': " + ::gai_strerror(rc));
  std::string last_error = "no usable address";
  for (addrinfo* ai = result; ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      // Non-blocking, so an accept() racing a peer that already reset
      // (poll said readable, the connection vanished) returns EAGAIN
      // instead of blocking the accept loop outside poll.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      fd_ = fd;
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (fd_ < 0)
    throw std::runtime_error("net: cannot listen on " + host + ":" + service +
                             ": " + last_error);
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int TcpListener::accept_connection(int wake_fd, int timeout_ms) {
  for (;;) {
    if (fd_ < 0) return kFailed;
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const nfds_t nfds = wake_fd >= 0 ? 2 : 1;
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return kFailed;
    }
    if (rc == 0) return kTick;
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
      return kWoken;  // shutdown requested
    if (!(fds[0].revents & (POLLIN | POLLERR | POLLHUP))) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return client;
    // Transient accept failures (the peer vanished between poll and
    // accept) must not kill the server.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK)
      continue;
    if (errno == EMFILE || errno == ENFILE) {
      // Out of fds: back off instead of hot-spinning on a listener
      // whose POLLIN stays set, giving active sessions time to finish
      // and release descriptors.
      ::poll(nullptr, 0, 50);
      continue;
    }
    return kFailed;
  }
}

// ---------------------------------------------------------------------------
// SocketStream
// ---------------------------------------------------------------------------

SocketStream::SocketStream(int fd, int wake_fd) : fd_(fd), wake_fd_(wake_fd) {
  // Non-blocking: every wait below happens in poll, so a send can never
  // block past what write_all's shutdown grace period allows.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  // Disable Nagle: responses written as several small sends (the HTTP
  // front end's header + chunk frames) must not wait out the peer's
  // delayed ACK — a 40ms stall per response on an idle connection.
  // Failure is fine; the fd may not be TCP (tests use socketpairs).
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

SocketStream::~SocketStream() {
  if (fd_ >= 0) ::close(fd_);
}

std::ptrdiff_t SocketStream::read_some(char* buf, std::size_t n) {
  // Fault-injection seam: a failed socket read looks like the peer
  // hanging up (end-of-stream), which is exactly how a real half-open
  // connection surfaces here.
  if (CCOV_FAILPOINT("net_read")) return 0;
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fd_, POLLIN, 0};
    const nfds_t nfds = wake_fd_ >= 0 ? 2 : 1;
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    // Shutdown wins over pending input: the session flushes what it has
    // already parsed and exits, which is the documented drain behavior.
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) return 0;
    if (!(fds[0].revents & (POLLIN | POLLERR | POLLHUP))) continue;
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<std::ptrdiff_t>(r);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) return 0;  // peer vanished = end of stream
    return -1;
  }
}

bool SocketStream::write_all(const char* data, std::size_t n) {
  // Fault-injection seam: a failed write is a dead peer (EPIPE-like);
  // only this connection tears down.
  if (CCOV_FAILPOINT("net_write")) return false;
  std::size_t off = 0;
  while (off < n) {
    pollfd fds[2];
    fds[0] = {fd_, POLLOUT, 0};
    fds[1] = {wake_fd_, POLLIN, 0};
    // Before shutdown: wait for writability without a deadline (also
    // watching the wake pipe so a stall notices the shutdown request).
    // After shutdown: keep writing — these are responses already owed —
    // but only within the remaining grace budget, so one client that
    // stopped reading cannot hang the server's shutdown join forever.
    const bool watch_wake = wake_fd_ >= 0 && shutdown_grace_ms_ < 0;
    const nfds_t nfds = watch_wake ? 2 : 1;
    const auto before = std::chrono::steady_clock::now();
    const int rc = ::poll(fds, nfds, shutdown_grace_ms_);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;  // grace period exhausted; drop the peer
    if (shutdown_grace_ms_ > 0) {
      const auto waited_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - before)
              .count();
      shutdown_grace_ms_ = static_cast<int>(std::max<long long>(
          1, shutdown_grace_ms_ - static_cast<long long>(waited_ms)));
    }
    if (watch_wake && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
      shutdown_grace_ms_ = kShutdownWriteGraceMs;
    if (!(fds[0].revents & (POLLOUT | POLLERR | POLLHUP))) continue;
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
#else
    const ssize_t w = ::send(fd_, data + off, n - off, 0);
#endif
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    return false;  // EPIPE, ECONNRESET, ... — only this connection dies
  }
  return true;
}

// ---------------------------------------------------------------------------
// ConnectionServer
// ---------------------------------------------------------------------------

namespace {

/// Self-pipe write end the SIGINT/SIGTERM handlers target; reset when
/// the owning server is destroyed so a late signal is a no-op instead
/// of a write into a closed (possibly reused) fd.
std::atomic<int> g_shutdown_fd{-1};

/// Server-wide cancel token the same handlers fire, so in-flight solves
/// abort at their next ~4k-node poll instead of running to completion.
/// CancelToken::cancel() is one relaxed atomic store — async-signal-safe.
std::atomic<util::CancelToken*> g_shutdown_cancel{nullptr};

void on_shutdown_signal(int) {
  if (util::CancelToken* tok =
          g_shutdown_cancel.load(std::memory_order_relaxed))
    tok->cancel();
  const int fd = g_shutdown_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

ConnectionServer::ConnectionServer(const std::string& host, std::uint16_t port,
                                   int backlog, std::size_t max_clients)
    : listener_(host, port, backlog), max_clients_(max_clients) {
  ignore_sigpipe();
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw_errno("pipe");
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
}

ConnectionServer::~ConnectionServer() {
  shutdown();
  reap_finished(/*join_all=*/true);
  // Disarm any installed signal handler before the fd goes away.
  int expected = wake_wr_;
  g_shutdown_fd.compare_exchange_strong(expected, -1,
                                        std::memory_order_relaxed);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void ConnectionServer::shutdown() {
  if (wake_wr_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t rc = ::write(wake_wr_, &byte, 1);
  }
}

void ConnectionServer::reap_finished(bool join_all) {
  util::MutexLock lk(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

int ConnectionServer::run(SessionFn session, SessionFn reject) {
  int rc = 0;
  for (;;) {
    // The 1 s tick bounds how long an idle server keeps finished
    // connection threads unjoined.
    const int client =
        listener_.accept_connection(wake_rd_, /*timeout_ms=*/1000);
    if (client == TcpListener::kTick) {
      reap_finished(/*join_all=*/false);
      continue;
    }
    if (client < 0) {
      // A broken listener is a failure, not a clean shutdown: callers
      // (and scripts watching the exit code) must be able to tell.
      if (client == TcpListener::kFailed) rc = 1;
      break;
    }
    // Reap after accept, not before it: connections that finished while
    // we were blocked must not count against the max-clients bound.
    reap_finished(/*join_all=*/false);
    std::size_t active = 0;
    {
      util::MutexLock lk(conns_mu_);
      active = conns_.size();
    }
    if (active >= max_clients_) {
      // Rejected inline on the accepting thread; the callback owns the
      // fd and must close it (a SocketStream destructor does).
      reject(client, wake_rd_);
      continue;
    }
    util::MutexLock lk(conns_mu_);
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.thread = std::thread([this, client, &conn, &session] {
      session(client, wake_rd_);
      conn.done.store(true, std::memory_order_release);
    });
  }
  listener_.close();
  // Sessions must see the wake-up even when run() ends because the
  // listener broke rather than because shutdown() wrote the byte.
  if (rc != 0) shutdown();
  // The wake byte is in the pipe, so every blocked per-connection read
  // wakes, flushes its pending responses and exits.
  reap_finished(/*join_all=*/true);
  return rc;
}

// ---------------------------------------------------------------------------
// ServeServer
// ---------------------------------------------------------------------------

ServeServer::ServeServer(Engine& engine, ServeConfig config)
    : engine_(engine),
      config_(std::move(config)),
      server_(config_.host, config_.port, config_.backlog,
              config_.max_clients) {}

int ServeServer::run() {
  return server_.run(
      [this](int client, int wake_fd) {
        SocketStream stream(client, wake_fd);
        serve_session(stream, engine_, config_);
      },
      [](int client, int wake_fd) {
        SocketStream stream(client, wake_fd);
        const std::string line =
            serve_error_line(0, "server busy: too many clients") + "\n";
        stream.write_all(line.data(), line.size());
      });
}

void install_signal_shutdown(int wake_fd, util::CancelToken* cancel) {
  g_shutdown_fd.store(wake_fd, std::memory_order_relaxed);
  g_shutdown_cancel.store(cancel, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll/accept must see the wake-up
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

#endif  // _WIN32

}  // namespace ccov::engine::net
