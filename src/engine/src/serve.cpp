#include "ccov/engine/serve.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <limits>
#include <charconv>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ccov/engine/batch.hpp"
#include "ccov/engine/store.hpp"
#include "ccov/util/json.hpp"
#include "ccov/util/pipeline.hpp"

namespace ccov::engine {

namespace json = ccov::util::json;

namespace {

// ---------------------------------------------------------------------------
// Request extraction (the JSON reader itself lives in ccov/util/json.hpp,
// shared with the HTTP layer)
// ---------------------------------------------------------------------------

bool to_uint(const json::Value& v, std::uint64_t max, std::uint64_t* out,
             std::string* error, const std::string& key) {
  if (v.type != json::Value::Type::kInt || v.integer < 0 ||
      static_cast<std::uint64_t>(v.integer) > max) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v.integer);
  return true;
}

bool extract_request(const json::Value& obj, CoverRequest* req,
                     std::string* error) {
  bool have_algo = false, have_n = false;
  for (const auto& [key, val] : obj.object) {
    std::uint64_t u = 0;
    if (key == "algo" || key == "algorithm") {
      if (val.type != json::Value::Type::kString) {
        *error = "field 'algo' must be a string";
        return false;
      }
      req->algorithm = val.string;
      have_algo = true;
    } else if (key == "n") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->n = static_cast<std::uint32_t>(u);
      have_n = true;
    } else if (key == "budget") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->budget = u;
    } else if (key == "lambda") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->lambda = static_cast<std::uint32_t>(u);
    } else if (key == "threads") {
      if (!to_uint(val, 4096, &u, error, key)) return false;
      req->threads = static_cast<std::size_t>(u);
    } else if (key == "max_nodes") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_nodes = u;
    } else if (key == "max_cycle_len") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_cycle_len = static_cast<std::uint32_t>(u);
    } else if (key == "deadline_ms") {
      // Capped at ~49 days: effectively unbounded, but small enough that
      // the absolute steady_clock deadline can never overflow.
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->deadline_ms = u;
    } else if (key == "validate") {
      if (val.type != json::Value::Type::kBool) {
        *error = "field 'validate' must be a boolean";
        return false;
      }
      req->validate = val.boolean;
    } else if (key == "demand") {
      if (val.type != json::Value::Type::kArray) {
        *error = "field 'demand' must be an array of [u,v] pairs";
        return false;
      }
      for (const json::Value& pair : val.array) {
        if (pair.type != json::Value::Type::kArray ||
            pair.array.size() != 2) {
          *error = "field 'demand' must be an array of [u,v] pairs";
          return false;
        }
        std::uint64_t u0 = 0, v0 = 0;
        if (!to_uint(pair.array[0], std::numeric_limits<std::uint32_t>::max(),
                     &u0, error, key) ||
            !to_uint(pair.array[1], std::numeric_limits<std::uint32_t>::max(),
                     &v0, error, key))
          return false;
        req->demand.push_back({static_cast<std::uint32_t>(u0),
                               static_cast<std::uint32_t>(v0)});
      }
    } else {
      *error = "unknown field '" + key + "'";
      return false;
    }
  }
  if (!have_algo) {
    *error = "missing required field 'algo'";
    return false;
  }
  if (!have_n) {
    *error = "missing required field 'n'";
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Control-verb registry
// ---------------------------------------------------------------------------

void ServeVerbRegistry::add(ServeVerb verb) {
  if (verb.name.empty())
    throw std::invalid_argument("serve verb name must not be empty");
  if (!verb.run)
    throw std::invalid_argument("serve verb '" + verb.name +
                                "' has no run function");
  util::MutexLock lk(mu_);
  if (!verbs_.emplace(verb.name, std::move(verb)).second)
    throw std::invalid_argument("duplicate serve verb '" + verb.name + "'");
}

const ServeVerb* ServeVerbRegistry::find(const std::string& name) const {
  util::MutexLock lk(mu_);
  const auto it = verbs_.find(name);
  return it == verbs_.end() ? nullptr : &it->second;
}

std::vector<std::string> ServeVerbRegistry::names() const {
  util::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(verbs_.size());
  for (const auto& [name, verb] : verbs_) out.push_back(name);
  return out;
}

std::size_t ServeVerbRegistry::size() const {
  util::MutexLock lk(mu_);
  return verbs_.size();
}

ServeVerbRegistry& ServeVerbRegistry::global() {
  static ServeVerbRegistry* reg = [] {
    auto* r = new ServeVerbRegistry();
    register_builtin_verbs(*r);
    return r;
  }();
  return *reg;
}

void register_builtin_verbs(ServeVerbRegistry& reg) {
  reg.add({"stats", "report cache size/capacity/shards and hit counters",
           [](const ServeVerbContext& ctx) {
             return serve_stats_line(ctx.id, ctx.engine.cache());
           }});
  reg.add({"save", "snapshot the store to the configured --cache-file",
           [](const ServeVerbContext& ctx) -> std::string {
             if (ctx.config.cache_file.empty())
               return serve_error_line(ctx.id,
                                       "save: no --cache-file configured");
             try {
               save_snapshot_file(ctx.config.cache_file, ctx.engine.cache());
               json::JsonWriter w;
               w.begin_object()
                   .key("id").value(ctx.id)
                   .key("op").value_string("save")
                   .key("ok").value(true)
                   .key("entries")
                   .value(static_cast<std::uint64_t>(ctx.engine.cache().size()))
                   .key("file").value_string(ctx.config.cache_file)
                   .end_object();
               return w.take();
             } catch (const std::exception& e) {
               // Disk failures (ENOSPC, EIO, a failed rename) come back
               // as a structured save verdict, not a bare error line:
               // the client learns both that its snapshot did NOT land
               // and which file was involved.
               json::JsonWriter w;
               w.begin_object()
                   .key("id").value(ctx.id)
                   .key("op").value_string("save")
                   .key("ok").value(false)
                   .key("error").value_string(e.what())
                   .key("file").value_string(ctx.config.cache_file)
                   .end_object();
               return w.take();
             }
           }});
  reg.add({"clear", "empty the store",
           [](const ServeVerbContext& ctx) {
             ctx.engine.cache().clear();
             json::JsonWriter w;
             w.begin_object()
                 .key("id").value(ctx.id)
                 .key("op").value_string("clear")
                 .key("ok").value(true)
                 .end_object();
             return w.take();
           }});
  reg.add({"metrics", "report every engine metric (cache, serve, solver)",
           [](const ServeVerbContext& ctx) {
             json::JsonWriter w;
             w.begin_object()
                 .key("id").value(ctx.id)
                 .key("op").value_string("metrics")
                 .key("ok").value(true)
                 .key("metrics").begin_object();
             for (const auto& [name, value] : ctx.engine.metrics().snapshot())
               w.key(name).value(value);
             w.end_object().end_object();
             return w.take();
           }});
}

// ---------------------------------------------------------------------------
// Parsing and rendering
// ---------------------------------------------------------------------------

bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error) {
  error->clear();
  json::Value root;
  json::Reader reader(line);
  if (!reader.parse(&root, error)) return false;
  if (root.type != json::Value::Type::kObject) {
    *error = "each line must be a JSON object";
    return false;
  }
  for (const auto& [key, val] : root.object) {
    if (key != "op") continue;
    if (val.type != json::Value::Type::kString) {
      *error = "field 'op' must be a string";
      return false;
    }
    if (root.object.size() != 1) {
      *error = "control verbs take no other fields";
      return false;
    }
    const ServeVerb* verb = ServeVerbRegistry::global().find(val.string);
    if (!verb) {
      *error = "unknown control verb '" + val.string + "' (valid: ";
      const std::vector<std::string> names =
          ServeVerbRegistry::global().names();
      for (std::size_t i = 0; i < names.size(); ++i)
        *error += (i ? ", " : "") + names[i];
      *error += ")";
      return false;
    }
    cmd->verb = verb;
    return true;
  }
  cmd->verb = nullptr;
  cmd->req = CoverRequest{};
  return extract_request(root, &cmd->req, error);
}

namespace {

/// Core renderer behind serve_response_line: appends the response object
/// (no newline) to `w`, so hot loops can reuse one writer — and its
/// buffer — across responses. `cache_hit`/`nodes` are taken as
/// parameters rather than read off `resp` so the zero-copy cache path
/// can render a stored entry with the overrides a hit applies.
void render_response_line(json::JsonWriter& w, std::uint64_t id,
                          const CoverResponse& resp, bool cache_hit,
                          std::uint64_t nodes) {
  // ~12 bytes per cover vertex ("nn," with brackets) on top of the fixed
  // fields: one right-sized allocation instead of log2(size) regrowths.
  std::size_t vertices = 0;
  for (const covering::Cycle& c : resp.cover.cycles) vertices += c.size();
  w.reserve(w.str().size() + 160 + resp.error.size() + 12 * vertices);
  w.begin_object()
      .key("id").value(id)
      .key("ok").value(resp.ok)
      .key("algo").value_string(resp.algorithm)
      .key("n").value(static_cast<std::uint64_t>(resp.n));
  if (!resp.ok) {
    w.key("error").value_string(resp.error).end_object();
    return;
  }
  w.key("found").value(resp.found)
      .key("exhausted").value(resp.exhausted)
      .key("nodes").value(nodes)
      .key("cache_hit").value(cache_hit);
  // Degradation flags render only when raised, keeping the bytes of
  // every ordinary response identical to pre-deadline builds (the
  // cross-transport byte-compare tests pin this).
  if (resp.timed_out) w.key("timed_out").value(true);
  if (resp.degraded) w.key("degraded").value(true);
  if (resp.shed) w.key("shed").value(true);
  if (resp.validated) w.key("valid").value(resp.valid);
  if (resp.found) {
    w.key("cover").begin_array();
    for (const covering::Cycle& c : resp.cover.cycles) {
      w.begin_array();
      for (std::size_t j = 0; j < c.size(); ++j)
        w.value(static_cast<std::uint64_t>(c[j]));
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
}

void render_response_line(json::JsonWriter& w, std::uint64_t id,
                          const CoverResponse& resp) {
  render_response_line(w, id, resp, resp.cache_hit, resp.nodes);
}

void render_error_line(json::JsonWriter& w, std::uint64_t id,
                       const std::string& error) {
  w.begin_object()
      .key("id").value(id)
      .key("ok").value(false)
      .key("error").value_string(error)
      .end_object();
}

/// The in-band answer for a request whose deadline expired while it was
/// queued: ok (the protocol held up its end), nothing found, nothing
/// searched, shed:true. Solving it anyway would burn the engine on an
/// answer the client has already given up on.
CoverResponse shed_response(const CoverRequest& req) {
  CoverResponse resp;
  resp.ok = true;
  resp.algorithm = req.algorithm;
  resp.n = req.n;
  resp.shed = true;
  return resp;
}

}  // namespace

std::string serve_response_line(std::uint64_t id, const CoverResponse& resp) {
  json::JsonWriter w;
  render_response_line(w, id, resp);
  return w.take();
}

std::string serve_error_line(std::uint64_t id, const std::string& error) {
  json::JsonWriter w;
  render_error_line(w, id, error);
  return w.take();
}

std::string serve_stats_line(std::uint64_t id, const CoverCache& cache) {
  const CoverCache::Stats s = cache.stats();
  json::JsonWriter w;
  w.begin_object()
      .key("id").value(id)
      .key("op").value_string("stats")
      .key("ok").value(true)
      .key("size").value(static_cast<std::uint64_t>(cache.size()))
      .key("capacity").value(static_cast<std::uint64_t>(cache.capacity()))
      .key("shards").value(static_cast<std::uint64_t>(cache.shard_count()))
      .key("hits").value(s.hits)
      .key("misses").value(s.misses)
      .key("evictions").value(s.evictions)
      .end_object();
  return w.take();
}

LineReader::LineReader(ServeStream& io, std::size_t max_line)
    : io_(io),
      max_(max_line ? max_line : std::numeric_limits<std::size_t>::max()) {}

LineReader::Result LineReader::next(std::string* line) {
  line->clear();
  bool too_long = false;
  for (;;) {
    while (pos_ < len_) {
      const char c = buf_[pos_++];
      if (c == '\n') {
        if (too_long) return Result::kTooLong;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return Result::kLine;
      }
      if (!too_long) {
        line->push_back(c);
        if (line->size() > max_) {
          too_long = true;
          line->clear();
        }
      }
    }
    pos_ = len_ = 0;
    const std::ptrdiff_t r = io_.read_some(buf_, sizeof(buf_));
    if (r <= 0) {
      // End of stream: a partial final line (no trailing newline) is
      // still a line, as with std::getline; the next call sees an
      // empty buffer and reports EOF.
      if (too_long) return Result::kTooLong;
      if (!line->empty()) {
        if (line->back() == '\r') line->pop_back();
        return Result::kLine;
      }
      return Result::kEof;
    }
    len_ = static_cast<std::size_t>(r);
  }
}

namespace {

/// Wraps the session's transport to account every payload byte that
/// crosses the ServeStream seam, so byte-level throughput is visible in
/// /metrics for stdio, TCP, HTTP and shm alike.
class CountingStream final : public ServeStream {
 public:
  CountingStream(ServeStream& inner, Counter& bytes_read,
                 Counter& bytes_written)
      : inner_(inner), bytes_read_(bytes_read), bytes_written_(bytes_written) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    const std::ptrdiff_t r = inner_.read_some(buf, n);
    if (r > 0) bytes_read_.add(static_cast<std::uint64_t>(r));
    return r;
  }

  bool write_all(const char* data, std::size_t n) override {
    const bool ok = inner_.write_all(data, n);
    if (ok) bytes_written_.add(n);
    return ok;
  }

  bool flush() override { return inner_.flush(); }

 private:
  ServeStream& inner_;
  Counter& bytes_read_;
  Counter& bytes_written_;
};

/// ServeStream over an istream/ostream pair (the stdio transport).
class IostreamServeStream final : public ServeStream {
 public:
  IostreamServeStream(std::istream& in, std::ostream& out)
      : in_(in), out_(out) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    // Block for one byte, then drain whatever is already buffered
    // without blocking again. A full read(n) would stall an interactive
    // client (a coprocess writing one line and waiting for the answer)
    // until n bytes or EOF; this delivers every line as it arrives.
    if (n == 0 || !in_.good()) return 0;
    const int first = in_.get();
    if (first == std::char_traits<char>::eof()) return 0;
    buf[0] = static_cast<char>(first);
    std::ptrdiff_t got = 1;
    if (n > 1)
      got += static_cast<std::ptrdiff_t>(
          in_.readsome(buf + 1, static_cast<std::streamsize>(n - 1)));
    return got;
  }

  bool write_all(const char* data, std::size_t n) override {
    out_.write(data, static_cast<std::streamsize>(n));
    return static_cast<bool>(out_);
  }

  bool flush() override {
    out_.flush();
    return static_cast<bool>(out_);
  }

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace

int serve_session(ServeStream& raw_io, Engine& engine,
                  const ServeConfig& config) {
  struct Pending {
    std::uint64_t id = 0;
    bool is_request = false;
    CoverRequest req;
    std::string error;  ///< preformatted parse failure when !is_request
    bool shed = false;  ///< deadline expired while queued (set at flush)
  };

  // Session metrics: resolved once (one map lookup each), updated with
  // relaxed atomics on the hot path. Every transport shares these.
  MetricsRegistry& metrics = engine.metrics();
  Counter& m_sessions = metrics.counter("ccov_serve_sessions_total", "");
  Gauge& m_active = metrics.gauge("ccov_serve_sessions_active", "");
  Counter& m_requests = metrics.counter("ccov_serve_requests_total", "");
  Counter& m_verbs = metrics.counter("ccov_serve_verbs_total", "");
  Counter& m_errors = metrics.counter("ccov_serve_errors_total", "");
  Counter& m_shed = metrics.counter("ccov_requests_shed_total", "");
  Gauge& m_depth = metrics.gauge("ccov_serve_pipeline_depth", "");
  Counter& m_bytes_read = metrics.counter("ccov_serve_bytes_read_total", "");
  Counter& m_bytes_written =
      metrics.counter("ccov_serve_bytes_written_total", "");
  CountingStream io(raw_io, m_bytes_read, m_bytes_written);
  m_sessions.add(1);
  m_active.add(1);

  std::vector<Pending> pending;
  std::size_t pending_requests = 0;
  const std::size_t batch = std::max<std::size_t>(1, config.batch);
  BatchRunner runner(engine, {.jobs = config.jobs});
  // Pipeline-depth bookkeeping: the gauge rises on enqueue and falls when
  // a job finishes. Jobs a dying pipeline drops never run, so the
  // enqueued/completed counts reconcile the gauge after the pipeline is
  // destroyed (both outlive it by declaration order).
  std::atomic<std::size_t> jobs_completed{0};
  std::size_t jobs_enqueued = 0;
  {
    // Double-buffered flushes: one worker executes flush jobs strictly in
    // order while this thread keeps reading and parsing the next batch.
    // In-order execution keeps cache-state evolution — and therefore
    // every output byte — identical to a synchronous loop; a job returns
    // false when the peer is gone and the session tears down quietly.
    util::OrderedPipeline pipeline(/*depth=*/2);

    // Interactive sessions (one request per flush, one solver thread)
    // have nothing to overlap: the read-ahead the pipeline buys is an
    // empty parse, and its thread handoff is pure added latency — about
    // half the round trip on a co-located transport. Run those jobs
    // inline on the reader thread instead; execution order (and thus
    // every output byte) is the same either way.
    const bool inline_jobs = config.jobs == 1 && batch == 1;

    const auto enqueue_job = [&](std::function<bool()> job) {
      if (inline_jobs) {
        ++jobs_enqueued;
        const bool ok = job();
        jobs_completed.fetch_add(1, std::memory_order_relaxed);
        return ok;
      }
      m_depth.add(1);
      ++jobs_enqueued;
      const bool queued =
          pipeline.enqueue([&m_depth, &jobs_completed, job = std::move(job)] {
            const bool ok = job();
            jobs_completed.fetch_add(1, std::memory_order_relaxed);
            m_depth.add(-1);
            return ok;
          });
      if (!queued) {
        // The pipeline refused the job (already dead): it will never run.
        m_depth.add(-1);
        --jobs_enqueued;
      }
      return queued;
    };

    // Solve the buffered batch and write its responses — executed on the
    // pipeline worker, so the reader below is already parsing the next
    // batch while this one searches. Jobs run strictly in order, which
    // keeps cache-state evolution (and therefore every byte of output)
    // identical to a synchronous loop.
    // Reused across inline flushes so an interactive session allocates
    // no per-request scaffolding (the buffers grow once and then stay
    // put).
    json::JsonWriter inline_w;
    std::vector<CoverRequest> inline_requests;

    // One-line parse memo for interactive sessions: a client hammering
    // one hot request repeats the same bytes line after line, and both
    // the parse and the canonical key are pure functions of those
    // bytes. Capped so a stream of huge one-off lines isn't copied into
    // the memo for nothing.
    constexpr std::size_t kMemoMaxLine = 512;
    std::string memo_line;
    ServeCommand memo_cmd;
    CanonicalKey memo_ck;
    bool memo_valid = false;
    // Rendered-response memo: a hit's bytes are a pure function of
    // (id, stored entry), so everything after the id field can be
    // replayed as long as the entry's stamp still matches — any
    // store/import for the key issues a new stamp and re-renders.
    std::string memo_tail;
    std::uint64_t memo_stamp = 0;  // entry stamps start at 1
    // Set for the request currently in `pending` when its canonical key
    // is already known; consumed (and cleared) by the next flush.
    const CanonicalKey* ck_hint = nullptr;

    const auto enqueue_flush = [&]() -> bool {
      if (pending.empty()) return true;
      if (inline_jobs) {
        // Inline fast path: no std::function, no shared_ptr handoff —
        // render straight out of `pending` on this thread. Same
        // execution order as the pipeline path, so identical bytes.
        ++jobs_enqueued;
        inline_w.clear();
        // batch == 1 means `pending` holds exactly one entry; a cached
        // identity-frame answer renders straight out of the cache with
        // the hit overrides (cache_hit = true, nodes = 0) and skips the
        // cover deep copy entirely.
        const Pending& front = pending.front();
        const CanonicalKey* ck = ck_hint;
        ck_hint = nullptr;
        const auto render_hit = [&](const CoverResponse& hit,
                                    std::uint64_t stamp) {
          if (stamp == memo_stamp && !memo_tail.empty()) {
            // Same stored entry as the memoized render: replay the
            // tail, only the id differs.
            inline_w.value_raw("{\"id\":");
            char buf[20];
            const auto [end, ec] =
                std::to_chars(buf, buf + sizeof buf, front.id);
            (void)ec;
            inline_w.value_raw(
                std::string_view(buf, static_cast<std::size_t>(end - buf)));
            inline_w.value_raw(memo_tail);
            return;
          }
          const std::size_t start = inline_w.str().size();
          render_response_line(inline_w, front.id, hit,
                               /*cache_hit=*/true, /*nodes=*/0);
          if (ck == &memo_ck) {
            // Tail = everything from the comma after the id field on;
            // capture it together with the stamp it derives from.
            const std::string_view rendered =
                std::string_view(inline_w.str()).substr(start);
            const std::size_t comma = rendered.find(',');
            if (comma != std::string_view::npos) {
              memo_tail.assign(rendered.substr(comma));
              memo_stamp = stamp;
            }
          }
        };
        if (pending.size() == 1 && front.is_request &&
            (ck ? engine.run_cached(front.req, *ck, render_hit)
                : engine.run_cached(front.req, render_hit))) {
          inline_w.value_raw("\n");  // top level: appended verbatim
        } else {
          inline_requests.clear();
          for (Pending& p : pending) {
            if (!p.is_request) continue;
            // Deadline-aware load shedding: a request whose deadline
            // expired while queued is answered in-band without solving.
            if (p.req.deadline.expired()) {
              p.shed = true;
              m_shed.add(1);
            } else {
              inline_requests.push_back(p.req);
            }
          }
          const std::vector<CoverResponse> responses =
              runner.run(inline_requests);
          std::size_t k = 0;
          for (const Pending& p : pending) {
            if (!p.is_request)
              render_error_line(inline_w, p.id, p.error);
            else if (p.shed)
              render_response_line(inline_w, p.id, shed_response(p.req));
            else
              render_response_line(inline_w, p.id, responses[k++]);
            inline_w.value_raw("\n");
          }
        }
        pending.clear();
        pending_requests = 0;
        const std::string& out = inline_w.str();
        const bool ok = io.write_all(out.data(), out.size()) && io.flush();
        jobs_completed.fetch_add(1, std::memory_order_relaxed);
        return ok;
      }
      auto work = std::make_shared<std::vector<Pending>>(std::move(pending));
      pending.clear();
      pending_requests = 0;
      return enqueue_job([&io, &runner, &m_shed, work] {
        // The shed decision happens here, on the worker, at the moment
        // the batch would start solving — exactly when the queue wait
        // behind earlier flushes has been paid.
        std::vector<CoverRequest> requests;
        for (Pending& p : *work) {
          if (!p.is_request) continue;
          if (p.req.deadline.expired()) {
            p.shed = true;
            m_shed.add(1);
          } else {
            requests.push_back(p.req);
          }
        }
        const std::vector<CoverResponse> responses = runner.run(requests);
        std::string out;
        std::size_t k = 0;
        for (const Pending& p : *work) {
          if (!p.is_request)
            out += serve_error_line(p.id, p.error);
          else if (p.shed)
            out += serve_response_line(p.id, shed_response(p.req));
          else
            out += serve_response_line(p.id, responses[k++]);
          out += "\n";
        }
        return io.write_all(out.data(), out.size()) && io.flush();
      });
    };

    const auto enqueue_line_job = [&](std::function<std::string()> render) {
      return enqueue_job([&io, render = std::move(render)] {
        const std::string out = render() + "\n";
        return io.write_all(out.data(), out.size()) && io.flush();
      });
    };

    // Fix the absolute deadline the moment a request is accepted (queue
    // wait counts against it) and attach the server's cancel token. The
    // parse memo keeps the *wire* request; every accepted copy resolves
    // its own deadline afresh.
    const auto accept_request = [&config](CoverRequest* req) {
      if (req->deadline_ms == 0) req->deadline_ms = config.default_deadline_ms;
      if (req->deadline_ms > 0)
        req->deadline = util::Deadline::after_ms(
            static_cast<std::int64_t>(req->deadline_ms));
      req->cancel = config.cancel;
    };

    LineReader reader(io, config.max_line_bytes);
    std::uint64_t id = 0;
    std::string line;
    bool alive = true;
    while (alive) {
      // Shutdown check between lines: a cancelled server stops accepting
      // instead of blocking on the next read — the bounded-shutdown
      // guarantee for transports whose reads cannot be woken externally.
      if (config.cancel != nullptr && config.cancel->cancelled()) break;
      const LineReader::Result r = reader.next(&line);
      if (r == LineReader::Result::kEof) break;
      if (r == LineReader::Result::kTooLong) {
        m_errors.add(1);
        pending.push_back(
            {id++, false, {},
             "parse: line exceeds max line length (" +
                 std::to_string(config.max_line_bytes) + " bytes)"});
        if (pending.size() >= batch) alive = enqueue_flush();
        continue;
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      ServeCommand cmd;
      if (inline_jobs && memo_valid && line == memo_line) {
        // Same bytes as the previous request: reuse the parsed request
        // and canonical key (both pure functions of the line).
        m_requests.add(1);
        pending.push_back({id++, true, memo_cmd.req, {}, false});
        accept_request(&pending.back().req);
        ++pending_requests;
        ck_hint = &memo_ck;
        alive = enqueue_flush();  // batch == 1: flush immediately
        continue;
      }
      std::string error;
      if (!parse_serve_line(line, &cmd, &error)) {
        m_errors.add(1);
        pending.push_back({id++, false, {}, "parse: " + error});
        if (pending.size() >= batch) alive = enqueue_flush();
        continue;
      }
      if (cmd.is_request()) {
        m_requests.add(1);
        if (inline_jobs && line.size() <= kMemoMaxLine) {
          memo_line = line;
          memo_cmd = cmd;
          memo_ck = canonical_request_key(cmd.req);
          memo_valid = true;
          ck_hint = &memo_ck;
        }
        pending.push_back({id++, true, std::move(cmd.req), {}, false});
        accept_request(&pending.back().req);
        ++pending_requests;
        if (pending_requests >= batch) alive = enqueue_flush();
        continue;
      }
      // Control verbs flush first, then render *inside* the pipeline
      // job: the worker executes jobs in order, so whatever the handler
      // observes (cache stats, metrics) reflects exactly the requests
      // that preceded it in the stream.
      m_verbs.add(1);
      alive = enqueue_flush() &&
              enqueue_line_job(
                  [verb = cmd.verb, &engine, &config, verb_id = id] {
                    return verb->run({verb_id, engine, config});
                  });
      ++id;
    }
    if (alive) {
      enqueue_flush();
      pipeline.drain();
    }
  }  // ~OrderedPipeline joins the worker: no job runs past this point.
  m_depth.add(-static_cast<std::int64_t>(
      jobs_enqueued - jobs_completed.load(std::memory_order_relaxed)));
  m_active.add(-1);
  return 0;
}

int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeConfig& config) {
  IostreamServeStream io(in, out);
  return serve_session(io, engine, config);
}

}  // namespace ccov::engine
