#include "ccov/engine/serve.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "ccov/engine/batch.hpp"
#include "ccov/engine/store.hpp"
#include "ccov/util/pipeline.hpp"

namespace ccov::engine {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader: objects, arrays, strings (with escapes), integer
// numbers, booleans and null — exactly the subset the serve protocol
// uses. Errors are reported by message, never by exception.
// ---------------------------------------------------------------------------

struct JValue {
  enum class Type { kNull, kBool, kInt, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(p_ + text.size()) {}

  bool parse(JValue* out, std::string* error) {
    skip_ws();
    if (!value(out, error)) return false;
    skip_ws();
    if (p_ != end_) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool literal(const char* word, std::string* error) {
    for (const char* w = word; *w; ++w, ++p_) {
      if (p_ == end_ || *p_ != *w) {
        *error = std::string("expected '") + word + "'";
        return false;
      }
    }
    return true;
  }

  bool value(JValue* out, std::string* error) {
    if (p_ == end_) {
      *error = "unexpected end of input";
      return false;
    }
    switch (*p_) {
      case '{':
        return object(out, error);
      case '[':
        return array(out, error);
      case '"':
        out->type = JValue::Type::kString;
        return string(&out->string, error);
      case 't':
        out->type = JValue::Type::kBool;
        out->boolean = true;
        return literal("true", error);
      case 'f':
        out->type = JValue::Type::kBool;
        out->boolean = false;
        return literal("false", error);
      case 'n':
        out->type = JValue::Type::kNull;
        return literal("null", error);
      default:
        return number(out, error);
    }
  }

  bool object(JValue* out, std::string* error) {
    out->type = JValue::Type::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !string(&key, error)) {
        if (error->empty()) *error = "expected object key";
        return false;
      }
      skip_ws();
      if (p_ == end_ || *p_ != ':') {
        *error = "expected ':' after key '" + key + "'";
        return false;
      }
      ++p_;
      skip_ws();
      JValue val;
      if (!value(&val, error)) return false;
      out->object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      *error = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array(JValue* out, std::string* error) {
    out->type = JValue::Type::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      JValue val;
      if (!value(&val, error)) return false;
      out->array.push_back(std::move(val));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      *error = "expected ',' or ']' in array";
      return false;
    }
  }

  bool string(std::string* out, std::string* error) {
    ++p_;  // '"'
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) break;
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default:
            *error = "unsupported escape sequence";
            return false;
        }
      }
      out->push_back(c);
    }
    if (p_ == end_) {
      *error = "unterminated string";
      return false;
    }
    ++p_;  // closing '"'
    return true;
  }

  bool number(JValue* out, std::string* error) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ == start || (*start == '-' && p_ == start + 1)) {
      *error = "invalid number";
      return false;
    }
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      *error = "non-integer numbers are not part of the serve protocol";
      return false;
    }
    errno = 0;
    out->type = JValue::Type::kInt;
    out->integer = std::strtoll(std::string(start, p_).c_str(), nullptr, 10);
    if (errno == ERANGE) {
      *error = "integer out of range";
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_bool(std::string* out, const char* key, bool v) {
  *out += ",\"";
  *out += key;
  *out += v ? "\":true" : "\":false";
}

// ---------------------------------------------------------------------------
// Request extraction
// ---------------------------------------------------------------------------

bool to_uint(const JValue& v, std::uint64_t max, std::uint64_t* out,
             std::string* error, const std::string& key) {
  if (v.type != JValue::Type::kInt || v.integer < 0 ||
      static_cast<std::uint64_t>(v.integer) > max) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v.integer);
  return true;
}

bool extract_request(const JValue& obj, CoverRequest* req, std::string* error) {
  bool have_algo = false, have_n = false;
  for (const auto& [key, val] : obj.object) {
    std::uint64_t u = 0;
    if (key == "algo" || key == "algorithm") {
      if (val.type != JValue::Type::kString) {
        *error = "field 'algo' must be a string";
        return false;
      }
      req->algorithm = val.string;
      have_algo = true;
    } else if (key == "n") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->n = static_cast<std::uint32_t>(u);
      have_n = true;
    } else if (key == "budget") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->budget = u;
    } else if (key == "lambda") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->lambda = static_cast<std::uint32_t>(u);
    } else if (key == "threads") {
      if (!to_uint(val, 4096, &u, error, key)) return false;
      req->threads = static_cast<std::size_t>(u);
    } else if (key == "max_nodes") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_nodes = u;
    } else if (key == "max_cycle_len") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_cycle_len = static_cast<std::uint32_t>(u);
    } else if (key == "validate") {
      if (val.type != JValue::Type::kBool) {
        *error = "field 'validate' must be a boolean";
        return false;
      }
      req->validate = val.boolean;
    } else if (key == "demand") {
      if (val.type != JValue::Type::kArray) {
        *error = "field 'demand' must be an array of [u,v] pairs";
        return false;
      }
      for (const JValue& pair : val.array) {
        if (pair.type != JValue::Type::kArray || pair.array.size() != 2) {
          *error = "field 'demand' must be an array of [u,v] pairs";
          return false;
        }
        std::uint64_t u0 = 0, v0 = 0;
        if (!to_uint(pair.array[0], std::numeric_limits<std::uint32_t>::max(),
                     &u0, error, key) ||
            !to_uint(pair.array[1], std::numeric_limits<std::uint32_t>::max(),
                     &v0, error, key))
          return false;
        req->demand.push_back({static_cast<std::uint32_t>(u0),
                               static_cast<std::uint32_t>(v0)});
      }
    } else {
      *error = "unknown field '" + key + "'";
      return false;
    }
  }
  if (!have_algo) {
    *error = "missing required field 'algo'";
    return false;
  }
  if (!have_n) {
    *error = "missing required field 'n'";
    return false;
  }
  return true;
}

}  // namespace

bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error) {
  error->clear();
  JValue root;
  JsonReader reader(line);
  if (!reader.parse(&root, error)) return false;
  if (root.type != JValue::Type::kObject) {
    *error = "each line must be a JSON object";
    return false;
  }
  for (const auto& [key, val] : root.object) {
    if (key != "op") continue;
    if (val.type != JValue::Type::kString) {
      *error = "field 'op' must be a string";
      return false;
    }
    if (root.object.size() != 1) {
      *error = "control verbs take no other fields";
      return false;
    }
    if (val.string == "stats") {
      cmd->kind = ServeCommand::Kind::kStats;
    } else if (val.string == "save") {
      cmd->kind = ServeCommand::Kind::kSave;
    } else if (val.string == "clear") {
      cmd->kind = ServeCommand::Kind::kClear;
    } else {
      *error = "unknown control verb '" + val.string + "'";
      return false;
    }
    return true;
  }
  cmd->kind = ServeCommand::Kind::kRequest;
  cmd->req = CoverRequest{};
  return extract_request(root, &cmd->req, error);
}

std::string serve_response_line(std::uint64_t id, const CoverResponse& resp) {
  std::string out = "{\"id\":" + std::to_string(id);
  out += resp.ok ? ",\"ok\":true" : ",\"ok\":false";
  out += ",\"algo\":";
  append_escaped(&out, resp.algorithm);
  out += ",\"n\":" + std::to_string(resp.n);
  if (!resp.ok) {
    out += ",\"error\":";
    append_escaped(&out, resp.error);
    out += "}";
    return out;
  }
  append_bool(&out, "found", resp.found);
  append_bool(&out, "exhausted", resp.exhausted);
  out += ",\"nodes\":" + std::to_string(resp.nodes);
  append_bool(&out, "cache_hit", resp.cache_hit);
  if (resp.validated) append_bool(&out, "valid", resp.valid);
  if (resp.found) {
    out += ",\"cover\":[";
    for (std::size_t i = 0; i < resp.cover.cycles.size(); ++i) {
      if (i) out += ",";
      out += "[";
      const covering::Cycle& c = resp.cover.cycles[i];
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (j) out += ",";
        out += std::to_string(c[j]);
      }
      out += "]";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string serve_error_line(std::uint64_t id, const std::string& error) {
  std::string out =
      "{\"id\":" + std::to_string(id) + ",\"ok\":false,\"error\":";
  append_escaped(&out, error);
  out += "}";
  return out;
}

std::string serve_stats_line(std::uint64_t id, const CoverCache& cache) {
  const CoverCache::Stats s = cache.stats();
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"op\":\"stats\",\"ok\":true";
  out += ",\"size\":" + std::to_string(cache.size());
  out += ",\"capacity\":" + std::to_string(cache.capacity());
  out += ",\"shards\":" + std::to_string(cache.shard_count());
  out += ",\"hits\":" + std::to_string(s.hits);
  out += ",\"misses\":" + std::to_string(s.misses);
  out += ",\"evictions\":" + std::to_string(s.evictions);
  out += "}";
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Line framing over a ServeStream: newline-delimited, CRLF-tolerant
// (a single trailing '\r' is stripped), with a hard per-line byte limit
// enforced *while streaming* — an oversized line is discarded as it
// arrives instead of being buffered without bound, and reported as
// kTooLong so the session can answer in-band.
// ---------------------------------------------------------------------------

class LineReader {
 public:
  LineReader(ServeStream& io, std::size_t max_line)
      : io_(io),
        max_(max_line ? max_line : std::numeric_limits<std::size_t>::max()) {}

  enum class Result { kLine, kTooLong, kEof };

  Result next(std::string* line) {
    line->clear();
    bool too_long = false;
    for (;;) {
      while (pos_ < len_) {
        const char c = buf_[pos_++];
        if (c == '\n') {
          if (too_long) return Result::kTooLong;
          if (!line->empty() && line->back() == '\r') line->pop_back();
          return Result::kLine;
        }
        if (!too_long) {
          line->push_back(c);
          if (line->size() > max_) {
            too_long = true;
            line->clear();
          }
        }
      }
      pos_ = len_ = 0;
      const std::ptrdiff_t r = io_.read_some(buf_, sizeof(buf_));
      if (r <= 0) {
        // End of stream: a partial final line (no trailing newline) is
        // still a line, as with std::getline; the next call sees an
        // empty buffer and reports EOF.
        if (too_long) return Result::kTooLong;
        if (!line->empty()) {
          if (line->back() == '\r') line->pop_back();
          return Result::kLine;
        }
        return Result::kEof;
      }
      len_ = static_cast<std::size_t>(r);
    }
  }

 private:
  ServeStream& io_;
  std::size_t max_;
  char buf_[4096];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// ServeStream over an istream/ostream pair (the stdio transport).
class IostreamServeStream final : public ServeStream {
 public:
  IostreamServeStream(std::istream& in, std::ostream& out)
      : in_(in), out_(out) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    // Block for one byte, then drain whatever is already buffered
    // without blocking again. A full read(n) would stall an interactive
    // client (a coprocess writing one line and waiting for the answer)
    // until n bytes or EOF; this delivers every line as it arrives.
    if (n == 0 || !in_.good()) return 0;
    const int first = in_.get();
    if (first == std::char_traits<char>::eof()) return 0;
    buf[0] = static_cast<char>(first);
    std::ptrdiff_t got = 1;
    if (n > 1)
      got += static_cast<std::ptrdiff_t>(
          in_.readsome(buf + 1, static_cast<std::streamsize>(n - 1)));
    return got;
  }

  bool write_all(const char* data, std::size_t n) override {
    out_.write(data, static_cast<std::streamsize>(n));
    return static_cast<bool>(out_);
  }

  bool flush() override {
    out_.flush();
    return static_cast<bool>(out_);
  }

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace

int serve_session(ServeStream& io, Engine& engine, const ServeOptions& opts) {
  struct Pending {
    std::uint64_t id = 0;
    bool is_request = false;
    CoverRequest req;
    std::string error;  ///< preformatted parse failure when !is_request
  };

  std::vector<Pending> pending;
  std::size_t pending_requests = 0;
  const std::size_t batch = std::max<std::size_t>(1, opts.batch);
  BatchRunner runner(engine, {.jobs = opts.jobs});
  // Double-buffered flushes: one worker executes flush jobs strictly in
  // order while this thread keeps reading and parsing the next batch.
  // In-order execution keeps cache-state evolution — and therefore
  // every output byte — identical to a synchronous loop; a job returns
  // false when the peer is gone and the session tears down quietly.
  util::OrderedPipeline pipeline(/*depth=*/2);

  // Solve the buffered batch and write its responses — executed on the
  // pipeline worker, so the reader below is already parsing the next
  // batch while this one searches. Jobs run strictly in order, which
  // keeps cache-state evolution (and therefore every byte of output)
  // identical to a synchronous loop.
  const auto enqueue_flush = [&]() -> bool {
    if (pending.empty()) return true;
    auto work = std::make_shared<std::vector<Pending>>(std::move(pending));
    pending.clear();
    pending_requests = 0;
    return pipeline.enqueue([&io, &runner, work] {
      std::vector<CoverRequest> requests;
      for (const Pending& p : *work)
        if (p.is_request) requests.push_back(p.req);
      const std::vector<CoverResponse> responses = runner.run(requests);
      std::string out;
      std::size_t k = 0;
      for (const Pending& p : *work) {
        out += p.is_request ? serve_response_line(p.id, responses[k++])
                            : serve_error_line(p.id, p.error);
        out += "\n";
      }
      return io.write_all(out.data(), out.size()) && io.flush();
    });
  };

  const auto enqueue_line_job = [&](std::function<std::string()> render) {
    return pipeline.enqueue([&io, render = std::move(render)] {
      const std::string out = render() + "\n";
      return io.write_all(out.data(), out.size()) && io.flush();
    });
  };

  LineReader reader(io, opts.max_line_bytes);
  std::uint64_t id = 0;
  std::string line;
  bool alive = true;
  while (alive) {
    const LineReader::Result r = reader.next(&line);
    if (r == LineReader::Result::kEof) break;
    if (r == LineReader::Result::kTooLong) {
      pending.push_back({id++, false, {},
                         "parse: line exceeds max line length (" +
                             std::to_string(opts.max_line_bytes) + " bytes)"});
      if (pending.size() >= batch) alive = enqueue_flush();
      continue;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ServeCommand cmd;
    std::string error;
    if (!parse_serve_line(line, &cmd, &error)) {
      pending.push_back({id++, false, {}, "parse: " + error});
      if (pending.size() >= batch) alive = enqueue_flush();
      continue;
    }
    switch (cmd.kind) {
      case ServeCommand::Kind::kRequest:
        pending.push_back({id++, true, std::move(cmd.req), {}});
        ++pending_requests;
        if (pending_requests >= batch) alive = enqueue_flush();
        break;
      case ServeCommand::Kind::kStats:
        // Control verbs flush first, then render *inside* the pipeline
        // job: the worker executes jobs in order, so the stats snapshot
        // observes exactly the requests that preceded it in the stream.
        alive = enqueue_flush() &&
                enqueue_line_job([&engine, stats_id = id] {
                  return serve_stats_line(stats_id, engine.cache());
                });
        ++id;
        break;
      case ServeCommand::Kind::kSave:
        alive = enqueue_flush() &&
                enqueue_line_job([&engine, &opts, save_id = id] {
                  if (opts.cache_file.empty())
                    return serve_error_line(save_id,
                                            "save: no --cache-file configured");
                  try {
                    save_snapshot_file(opts.cache_file, engine.cache());
                    std::string out = "{\"id\":" + std::to_string(save_id);
                    out += ",\"op\":\"save\",\"ok\":true,\"entries\":";
                    out += std::to_string(engine.cache().size());
                    out += ",\"file\":";
                    append_escaped(&out, opts.cache_file);
                    out += "}";
                    return out;
                  } catch (const std::exception& e) {
                    return serve_error_line(save_id, e.what());
                  }
                });
        ++id;
        break;
      case ServeCommand::Kind::kClear:
        alive = enqueue_flush() && enqueue_line_job([&engine, clear_id = id] {
                  engine.cache().clear();
                  return "{\"id\":" + std::to_string(clear_id) +
                         ",\"op\":\"clear\",\"ok\":true}";
                });
        ++id;
        break;
    }
  }
  if (alive) {
    enqueue_flush();
    pipeline.drain();
  }
  return 0;
}

int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeOptions& opts) {
  IostreamServeStream io(in, out);
  return serve_session(io, engine, opts);
}

}  // namespace ccov::engine
