#include "ccov/engine/serve.hpp"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <algorithm>
#include <utility>
#include <vector>

#include "ccov/engine/batch.hpp"
#include "ccov/engine/store.hpp"

namespace ccov::engine {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader: objects, arrays, strings (with escapes), integer
// numbers, booleans and null — exactly the subset the serve protocol
// uses. Errors are reported by message, never by exception.
// ---------------------------------------------------------------------------

struct JValue {
  enum class Type { kNull, kBool, kInt, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(p_ + text.size()) {}

  bool parse(JValue* out, std::string* error) {
    skip_ws();
    if (!value(out, error)) return false;
    skip_ws();
    if (p_ != end_) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool literal(const char* word, std::string* error) {
    for (const char* w = word; *w; ++w, ++p_) {
      if (p_ == end_ || *p_ != *w) {
        *error = std::string("expected '") + word + "'";
        return false;
      }
    }
    return true;
  }

  bool value(JValue* out, std::string* error) {
    if (p_ == end_) {
      *error = "unexpected end of input";
      return false;
    }
    switch (*p_) {
      case '{':
        return object(out, error);
      case '[':
        return array(out, error);
      case '"':
        out->type = JValue::Type::kString;
        return string(&out->string, error);
      case 't':
        out->type = JValue::Type::kBool;
        out->boolean = true;
        return literal("true", error);
      case 'f':
        out->type = JValue::Type::kBool;
        out->boolean = false;
        return literal("false", error);
      case 'n':
        out->type = JValue::Type::kNull;
        return literal("null", error);
      default:
        return number(out, error);
    }
  }

  bool object(JValue* out, std::string* error) {
    out->type = JValue::Type::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !string(&key, error)) {
        if (error->empty()) *error = "expected object key";
        return false;
      }
      skip_ws();
      if (p_ == end_ || *p_ != ':') {
        *error = "expected ':' after key '" + key + "'";
        return false;
      }
      ++p_;
      skip_ws();
      JValue val;
      if (!value(&val, error)) return false;
      out->object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      *error = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array(JValue* out, std::string* error) {
    out->type = JValue::Type::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      JValue val;
      if (!value(&val, error)) return false;
      out->array.push_back(std::move(val));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      *error = "expected ',' or ']' in array";
      return false;
    }
  }

  bool string(std::string* out, std::string* error) {
    ++p_;  // '"'
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) break;
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default:
            *error = "unsupported escape sequence";
            return false;
        }
      }
      out->push_back(c);
    }
    if (p_ == end_) {
      *error = "unterminated string";
      return false;
    }
    ++p_;  // closing '"'
    return true;
  }

  bool number(JValue* out, std::string* error) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ == start || (*start == '-' && p_ == start + 1)) {
      *error = "invalid number";
      return false;
    }
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      *error = "non-integer numbers are not part of the serve protocol";
      return false;
    }
    errno = 0;
    out->type = JValue::Type::kInt;
    out->integer = std::strtoll(std::string(start, p_).c_str(), nullptr, 10);
    if (errno == ERANGE) {
      *error = "integer out of range";
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_bool(std::string* out, const char* key, bool v) {
  *out += ",\"";
  *out += key;
  *out += v ? "\":true" : "\":false";
}

// ---------------------------------------------------------------------------
// Request extraction
// ---------------------------------------------------------------------------

bool to_uint(const JValue& v, std::uint64_t max, std::uint64_t* out,
             std::string* error, const std::string& key) {
  if (v.type != JValue::Type::kInt || v.integer < 0 ||
      static_cast<std::uint64_t>(v.integer) > max) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v.integer);
  return true;
}

bool extract_request(const JValue& obj, CoverRequest* req, std::string* error) {
  bool have_algo = false, have_n = false;
  for (const auto& [key, val] : obj.object) {
    std::uint64_t u = 0;
    if (key == "algo" || key == "algorithm") {
      if (val.type != JValue::Type::kString) {
        *error = "field 'algo' must be a string";
        return false;
      }
      req->algorithm = val.string;
      have_algo = true;
    } else if (key == "n") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->n = static_cast<std::uint32_t>(u);
      have_n = true;
    } else if (key == "budget") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->budget = u;
    } else if (key == "lambda") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->lambda = static_cast<std::uint32_t>(u);
    } else if (key == "threads") {
      if (!to_uint(val, 4096, &u, error, key)) return false;
      req->threads = static_cast<std::size_t>(u);
    } else if (key == "max_nodes") {
      if (!to_uint(val, std::numeric_limits<std::uint64_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_nodes = u;
    } else if (key == "max_cycle_len") {
      if (!to_uint(val, std::numeric_limits<std::uint32_t>::max(), &u, error,
                   key))
        return false;
      req->solver.max_cycle_len = static_cast<std::uint32_t>(u);
    } else if (key == "validate") {
      if (val.type != JValue::Type::kBool) {
        *error = "field 'validate' must be a boolean";
        return false;
      }
      req->validate = val.boolean;
    } else if (key == "demand") {
      if (val.type != JValue::Type::kArray) {
        *error = "field 'demand' must be an array of [u,v] pairs";
        return false;
      }
      for (const JValue& pair : val.array) {
        if (pair.type != JValue::Type::kArray || pair.array.size() != 2) {
          *error = "field 'demand' must be an array of [u,v] pairs";
          return false;
        }
        std::uint64_t u0 = 0, v0 = 0;
        if (!to_uint(pair.array[0], std::numeric_limits<std::uint32_t>::max(),
                     &u0, error, key) ||
            !to_uint(pair.array[1], std::numeric_limits<std::uint32_t>::max(),
                     &v0, error, key))
          return false;
        req->demand.push_back({static_cast<std::uint32_t>(u0),
                               static_cast<std::uint32_t>(v0)});
      }
    } else {
      *error = "unknown field '" + key + "'";
      return false;
    }
  }
  if (!have_algo) {
    *error = "missing required field 'algo'";
    return false;
  }
  if (!have_n) {
    *error = "missing required field 'n'";
    return false;
  }
  return true;
}

}  // namespace

bool parse_serve_line(const std::string& line, ServeCommand* cmd,
                      std::string* error) {
  error->clear();
  JValue root;
  JsonReader reader(line);
  if (!reader.parse(&root, error)) return false;
  if (root.type != JValue::Type::kObject) {
    *error = "each line must be a JSON object";
    return false;
  }
  for (const auto& [key, val] : root.object) {
    if (key != "op") continue;
    if (val.type != JValue::Type::kString) {
      *error = "field 'op' must be a string";
      return false;
    }
    if (root.object.size() != 1) {
      *error = "control verbs take no other fields";
      return false;
    }
    if (val.string == "stats") {
      cmd->kind = ServeCommand::Kind::kStats;
    } else if (val.string == "save") {
      cmd->kind = ServeCommand::Kind::kSave;
    } else if (val.string == "clear") {
      cmd->kind = ServeCommand::Kind::kClear;
    } else {
      *error = "unknown control verb '" + val.string + "'";
      return false;
    }
    return true;
  }
  cmd->kind = ServeCommand::Kind::kRequest;
  cmd->req = CoverRequest{};
  return extract_request(root, &cmd->req, error);
}

std::string serve_response_line(std::uint64_t id, const CoverResponse& resp) {
  std::string out = "{\"id\":" + std::to_string(id);
  out += resp.ok ? ",\"ok\":true" : ",\"ok\":false";
  out += ",\"algo\":";
  append_escaped(&out, resp.algorithm);
  out += ",\"n\":" + std::to_string(resp.n);
  if (!resp.ok) {
    out += ",\"error\":";
    append_escaped(&out, resp.error);
    out += "}";
    return out;
  }
  append_bool(&out, "found", resp.found);
  append_bool(&out, "exhausted", resp.exhausted);
  out += ",\"nodes\":" + std::to_string(resp.nodes);
  append_bool(&out, "cache_hit", resp.cache_hit);
  if (resp.validated) append_bool(&out, "valid", resp.valid);
  if (resp.found) {
    out += ",\"cover\":[";
    for (std::size_t i = 0; i < resp.cover.cycles.size(); ++i) {
      if (i) out += ",";
      out += "[";
      const covering::Cycle& c = resp.cover.cycles[i];
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (j) out += ",";
        out += std::to_string(c[j]);
      }
      out += "]";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string serve_error_line(std::uint64_t id, const std::string& error) {
  std::string out =
      "{\"id\":" + std::to_string(id) + ",\"ok\":false,\"error\":";
  append_escaped(&out, error);
  out += "}";
  return out;
}

std::string serve_stats_line(std::uint64_t id, const CoverCache& cache) {
  const CoverCache::Stats s = cache.stats();
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"op\":\"stats\",\"ok\":true";
  out += ",\"size\":" + std::to_string(cache.size());
  out += ",\"capacity\":" + std::to_string(cache.capacity());
  out += ",\"shards\":" + std::to_string(cache.shard_count());
  out += ",\"hits\":" + std::to_string(s.hits);
  out += ",\"misses\":" + std::to_string(s.misses);
  out += ",\"evictions\":" + std::to_string(s.evictions);
  out += "}";
  return out;
}

int serve_loop(std::istream& in, std::ostream& out, Engine& engine,
               const ServeOptions& opts) {
  struct Pending {
    std::uint64_t id = 0;
    bool is_request = false;
    CoverRequest req;
    std::string error;  ///< preformatted parse failure when !is_request
  };

  std::vector<Pending> pending;
  std::size_t pending_requests = 0;
  const std::size_t batch = std::max<std::size_t>(1, opts.batch);
  BatchRunner runner(engine, {.jobs = opts.jobs});

  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<CoverRequest> requests;
    requests.reserve(pending_requests);
    for (const Pending& p : pending)
      if (p.is_request) requests.push_back(p.req);
    const std::vector<CoverResponse> responses = runner.run(requests);
    std::size_t k = 0;
    for (const Pending& p : pending) {
      if (p.is_request) {
        out << serve_response_line(p.id, responses[k++]) << "\n";
      } else {
        out << serve_error_line(p.id, p.error) << "\n";
      }
    }
    out.flush();
    pending.clear();
    pending_requests = 0;
  };

  std::uint64_t id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ServeCommand cmd;
    std::string error;
    if (!parse_serve_line(line, &cmd, &error)) {
      pending.push_back({id++, false, {}, "parse: " + error});
      if (pending.size() >= batch) flush();
      continue;
    }
    switch (cmd.kind) {
      case ServeCommand::Kind::kRequest:
        pending.push_back({id++, true, std::move(cmd.req), {}});
        ++pending_requests;
        if (pending_requests >= batch) flush();
        break;
      case ServeCommand::Kind::kStats:
        flush();
        out << serve_stats_line(id++, engine.cache()) << "\n";
        out.flush();
        break;
      case ServeCommand::Kind::kSave:
        flush();
        if (opts.cache_file.empty()) {
          out << serve_error_line(id++, "save: no --cache-file configured")
              << "\n";
        } else {
          try {
            save_snapshot_file(opts.cache_file, engine.cache());
            out << "{\"id\":" << id++ << ",\"op\":\"save\",\"ok\":true"
                << ",\"entries\":" << engine.cache().size() << ",\"file\":";
            std::string f;
            append_escaped(&f, opts.cache_file);
            out << f << "}\n";
          } catch (const std::exception& e) {
            out << serve_error_line(id++, e.what()) << "\n";
          }
        }
        out.flush();
        break;
      case ServeCommand::Kind::kClear:
        flush();
        engine.cache().clear();
        out << "{\"id\":" << id++ << ",\"op\":\"clear\",\"ok\":true}\n";
        out.flush();
        break;
    }
  }
  flush();
  return 0;
}

}  // namespace ccov::engine
