#include "ccov/engine/registry.hpp"

#include <stdexcept>
#include <utility>

#include "ccov/baselines/c4_cover.hpp"
#include "ccov/baselines/emz.hpp"
#include "ccov/baselines/triple_cover.hpp"
#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/greedy.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/extensions/lambda_cover.hpp"

namespace ccov::engine {

void AlgorithmRegistry::add(Algorithm algo) {
  if (algo.name.empty())
    throw std::invalid_argument("AlgorithmRegistry: empty algorithm name");
  if (!algo.run)
    throw std::invalid_argument("AlgorithmRegistry: algorithm '" + algo.name +
                                "' has no run function");
  util::MutexLock lk(mu_);
  const std::string name = algo.name;
  if (algos_.count(name))
    throw std::invalid_argument("AlgorithmRegistry: duplicate algorithm '" +
                                name + "'");
  algos_.emplace(name, std::move(algo));
}

const Algorithm* AlgorithmRegistry::find(const std::string& name) const {
  util::MutexLock lk(mu_);
  const auto it = algos_.find(name);
  return it == algos_.end() ? nullptr : &it->second;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  util::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const auto& [name, _] : algos_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

std::size_t AlgorithmRegistry::size() const {
  util::MutexLock lk(mu_);
  return algos_.size();
}

AlgorithmRegistry& AlgorithmRegistry::global() {
  static AlgorithmRegistry reg;
  // Magic-static init is thread-safe and runs exactly once; keeping the
  // built-in registration here (instead of static registrar objects in
  // this TU) means static-library dead-stripping can never lose it.
  static const bool initialized = (register_builtin_algorithms(reg), true);
  (void)initialized;
  return reg;
}

AlgorithmRegistrar::AlgorithmRegistrar(Algorithm algo) {
  AlgorithmRegistry::global().add(std::move(algo));
}

namespace {

/// Shared preconditions for the built-ins that only understand the plain
/// all-to-all instance.
void require_all_to_all(const CoverRequest& req, const char* name) {
  if (!req.demand.empty())
    throw std::invalid_argument(std::string(name) +
                                ": explicit demands are not supported");
  if (req.lambda != 1)
    throw std::invalid_argument(std::string(name) +
                                ": lambda != 1 is not supported");
}

std::uint64_t effective_budget(const CoverRequest& req) {
  return req.budget != 0 ? req.budget : covering::rho(req.n);
}

/// Solver options for this run: the request's search knobs plus its
/// runtime interruption controls (deadline fixed at accept time, the
/// server's cancel token).
covering::SolverOptions runtime_solver_options(const CoverRequest& req) {
  covering::SolverOptions opts = req.solver;
  opts.deadline = req.deadline;
  opts.cancel = req.cancel;
  return opts;
}

AlgorithmOutcome outcome_from(covering::SolverResult res) {
  AlgorithmOutcome out{std::move(res.cover), res.found, res.exhausted,
                       res.nodes};
  out.timed_out = res.timed_out;
  out.cancelled = res.cancelled;
  return out;
}

}  // namespace

void register_builtin_algorithms(AlgorithmRegistry& reg) {
  if (reg.contains("construct")) return;  // idempotent

  reg.add({"construct",
           "paper-optimal DRC-covering of K_n (Theorems 1 and 2)", true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "construct");
             return AlgorithmOutcome{covering::build_optimal_cover(req.n)};
           },
           nullptr});

  reg.add({"solve",
           "exact branch-and-bound search within --budget cycles "
           "(default rho(n))",
           true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "solve");
             return outcome_from(covering::solve_with_budget(
                 req.n, effective_budget(req), runtime_solver_options(req)));
           },
           nullptr});

  reg.add({"solve-parallel",
           "exact search fanned across --threads (shared node budget, "
           "witness identical to solve)",
           true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "solve-parallel");
             return outcome_from(covering::solve_with_budget_parallel(
                 req.n, effective_budget(req), runtime_solver_options(req),
                 req.threads));
           },
           nullptr});

  reg.add({"greedy",
           "greedy DRC-covering baseline (accepts an explicit demand)", true,
           [](const CoverRequest& req) {
             if (req.lambda != 1)
               throw std::invalid_argument(
                   "greedy: lambda != 1 is not supported");
             if (req.demand.empty())
               return AlgorithmOutcome{covering::greedy_cover(req.n)};
             return AlgorithmOutcome{covering::greedy_cover_demand(
                 req.n, demand_graph(req.n, req.demand))};
           },
           nullptr});

  reg.add({"emz",
           "greedy cover minimizing the Eilam-Moran-Zaks size objective",
           true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "emz");
             return AlgorithmOutcome{baselines::emz_greedy_cover(req.n)};
           },
           nullptr});

  reg.add({"c4",
           "classical C4 covering of K_n, no routing constraint (ref [2])",
           true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "c4");
             return AlgorithmOutcome{covering::RingCover{
                 req.n, baselines::greedy_c4_cover(req.n)}};
           },
           nullptr});

  reg.add({"triple",
           "classical triangle covering C(n,3,2), no routing constraint "
           "(refs [6,7])",
           true,
           [](const CoverRequest& req) {
             require_all_to_all(req, "triple");
             return AlgorithmOutcome{covering::RingCover{
                 req.n, baselines::greedy_triple_cover(req.n)}};
           },
           nullptr});

  reg.add({"lambda",
           "DRC-covering of lambda*K_n (--lambda copies of the optimum)",
           true,
           [](const CoverRequest& req) {
             if (!req.demand.empty())
               throw std::invalid_argument(
                   "lambda: explicit demands are not supported");
             return AlgorithmOutcome{
                 extensions::build_lambda_cover(req.n, req.lambda)};
           },
           [](const CoverRequest& req, const covering::RingCover& cover) {
             return extensions::validate_lambda_cover(cover, req.lambda);
           }});
}

}  // namespace ccov::engine
