#include "ccov/engine/cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ccov/covering/canonical.hpp"

namespace ccov::engine {

namespace {

using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Image of the demand multiset under g(v) = rot_shift(refl^r(v)),
/// normalized (u <= v per edge) and sorted so equal multisets compare
/// equal.
EdgeList transform_demand(const std::vector<graph::Edge>& demand,
                          std::uint32_t n, bool reflect,
                          std::uint32_t shift) {
  EdgeList out;
  out.reserve(demand.size());
  for (const auto& e : demand) {
    auto map = [&](std::uint32_t v) {
      const std::uint32_t r = reflect ? (n - v) % n : v;
      return (r + shift) % n;
    };
    std::uint32_t u = map(e.u), v = map(e.v);
    if (u > v) std::swap(u, v);
    out.emplace_back(u, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

CanonicalKey canonical_request_key(const CoverRequest& req) {
  std::ostringstream key;
  key << req.algorithm << "|n=" << req.n << "|b=" << req.budget
      << "|l=" << req.lambda << "|mcl=" << req.solver.max_cycle_len
      << "|mn=" << req.solver.max_nodes
      << "|cp=" << req.solver.use_capacity_prune << "|v=" << req.validate;

  CanonicalKey out;
  if (req.demand.empty() || req.n == 0) {
    // K_n is fixed by every element of D_n: the identity suffices.
    key << "|K_n";
  } else {
    // Lexicographically least D_n-image of the demand; the minimizing
    // element maps this request's frame onto the canonical frame.
    EdgeList best;
    bool have_best = false;
    for (int refl = 0; refl < 2; ++refl) {
      for (std::uint32_t s = 0; s < req.n; ++s) {
        EdgeList img = transform_demand(req.demand, req.n, refl != 0, s);
        if (!have_best || img < best) {
          best = std::move(img);
          out.to_canonical = {refl != 0, s};
          have_best = true;
        }
      }
    }
    key << "|D";
    for (const auto& [u, v] : best) key << " " << u << "-" << v;
  }
  out.key = key.str();
  return out;
}

covering::RingCover apply_element(const covering::RingCover& cover,
                                  const DihedralElement& g) {
  if (cover.n == 0 || (!g.reflect && g.shift % cover.n == 0)) return cover;
  const covering::RingCover tmp =
      g.reflect ? covering::reflect_cover(cover) : cover;
  return covering::rotate_cover(tmp, g.shift % cover.n);
}

covering::RingCover apply_inverse(const covering::RingCover& cover,
                                  const DihedralElement& g) {
  if (cover.n == 0 || (!g.reflect && g.shift % cover.n == 0)) return cover;
  // g = rot_s . refl^r, so g^{-1} = refl^r . rot_{-s}.
  const covering::RingCover tmp = covering::rotate_cover(
      cover, (cover.n - g.shift % cover.n) % cover.n);
  return g.reflect ? covering::reflect_cover(tmp) : tmp;
}

CoverCache::CoverCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<CoverResponse> CoverCache::lookup(const CoverRequest& req) {
  return lookup(canonical_request_key(req));
}

std::optional<CoverResponse> CoverCache::lookup(const CanonicalKey& ck) {
  std::lock_guard lk(mu_);
  const auto it = index_.find(ck.key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  ++stats_.hits;
  CoverResponse resp = it->second->resp;
  // Map the canonical-frame cover back into the request's own frame.
  if (resp.found) resp.cover = apply_inverse(resp.cover, ck.to_canonical);
  resp.cache_hit = true;
  resp.nodes = 0;  // nothing was searched
  resp.elapsed_ms = 0.0;
  return resp;
}

void CoverCache::insert(const CoverRequest& req, const CoverResponse& resp) {
  insert(canonical_request_key(req), resp);
}

void CoverCache::insert(const CanonicalKey& ck, const CoverResponse& resp) {
  if (!resp.ok) return;
  CoverResponse stored = resp;
  stored.cache_hit = false;
  // Store the cover in the canonical frame so every D_n-equivalent
  // request shares this one entry.
  if (stored.found) stored.cover = apply_element(stored.cover, ck.to_canonical);
  std::lock_guard lk(mu_);
  const auto it = index_.find(ck.key);
  if (it != index_.end()) {
    it->second->resp = std::move(stored);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{ck.key, std::move(stored)});
  index_[ck.key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CoverCache::Stats CoverCache::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t CoverCache::size() const {
  std::lock_guard lk(mu_);
  return lru_.size();
}

void CoverCache::clear() {
  std::lock_guard lk(mu_);
  lru_.clear();
  index_.clear();
  stats_ = {};
}

}  // namespace ccov::engine
