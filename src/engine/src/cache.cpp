#include "ccov/engine/cache.hpp"

#include <algorithm>
#include <charconv>
#include <functional>
#include <utility>

#include "ccov/covering/canonical.hpp"
#include "ccov/util/failpoint.hpp"

namespace ccov::engine {

namespace {

using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Image of the demand multiset under g(v) = rot_shift(refl^r(v)),
/// normalized (u <= v per edge) and sorted so equal multisets compare
/// equal.
EdgeList transform_demand(const std::vector<graph::Edge>& demand,
                          std::uint32_t n, bool reflect,
                          std::uint32_t shift) {
  EdgeList out;
  out.reserve(demand.size());
  for (const auto& e : demand) {
    auto map = [&](std::uint32_t v) {
      const std::uint32_t r = reflect ? (n - v) % n : v;
      return (r + shift) % n;
    };
    std::uint32_t u = map(e.u), v = map(e.v);
    if (u > v) std::swap(u, v);
    out.emplace_back(u, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Decimal append without a std::to_string temporary — key building sits
/// on the cache-hit hot path. Bytes match what ostringstream printed
/// (bools as 1/0 via the integer overloads).
void append_num(std::string* out, std::uint64_t v) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out->append(buf, end);
}

}  // namespace

CanonicalKey canonical_request_key(const CoverRequest& req) {
  std::string key;
  key.reserve(96);
  key += req.algorithm;
  key += "|n=";
  append_num(&key, req.n);
  key += "|b=";
  append_num(&key, req.budget);
  key += "|l=";
  append_num(&key, req.lambda);
  key += "|mcl=";
  append_num(&key, req.solver.max_cycle_len);
  key += "|mn=";
  append_num(&key, req.solver.max_nodes);
  key += "|cp=";
  append_num(&key, req.solver.use_capacity_prune ? 1 : 0);
  key += "|v=";
  append_num(&key, req.validate ? 1 : 0);

  CanonicalKey out;
  if (req.demand.empty() || req.n == 0) {
    // K_n is fixed by every element of D_n: the identity suffices.
    key += "|K_n";
  } else {
    // Lexicographically least D_n-image of the demand; the minimizing
    // element maps this request's frame onto the canonical frame.
    EdgeList best;
    bool have_best = false;
    for (int refl = 0; refl < 2; ++refl) {
      for (std::uint32_t s = 0; s < req.n; ++s) {
        EdgeList img = transform_demand(req.demand, req.n, refl != 0, s);
        if (!have_best || img < best) {
          best = std::move(img);
          out.to_canonical = {refl != 0, s};
          have_best = true;
        }
      }
    }
    key += "|D";
    for (const auto& [u, v] : best) {
      key += " ";
      append_num(&key, u);
      key += "-";
      append_num(&key, v);
    }
  }
  out.key = std::move(key);
  return out;
}

covering::RingCover apply_element(const covering::RingCover& cover,
                                  const DihedralElement& g) {
  if (cover.n == 0 || (!g.reflect && g.shift % cover.n == 0)) return cover;
  const covering::RingCover tmp =
      g.reflect ? covering::reflect_cover(cover) : cover;
  return covering::rotate_cover(tmp, g.shift % cover.n);
}

covering::RingCover apply_inverse(const covering::RingCover& cover,
                                  const DihedralElement& g) {
  if (cover.n == 0 || (!g.reflect && g.shift % cover.n == 0)) return cover;
  // g = rot_s . refl^r, so g^{-1} = refl^r . rot_{-s}.
  const covering::RingCover tmp = covering::rotate_cover(
      cover, (cover.n - g.shift % cover.n) % cover.n);
  return g.reflect ? covering::reflect_cover(tmp) : tmp;
}

CoverCache::CoverCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shards_(std::clamp<std::size_t>(shards, 1, capacity_)) {
  // Split the capacity exactly: base slice everywhere, one extra entry in
  // the first capacity % shards shards.
  const std::size_t count = shards_.size();
  const std::size_t base = capacity_ / count;
  const std::size_t extra = capacity_ % count;
  for (std::size_t i = 0; i < count; ++i)
    shards_[i].capacity = base + (i < extra ? 1 : 0);
}

CoverCache::Shard& CoverCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<CoverResponse> CoverCache::lookup(const CoverRequest& req) {
  return lookup(canonical_request_key(req));
}

std::optional<CoverResponse> CoverCache::lookup(const CanonicalKey& ck) {
  Shard& shard = shard_for(ck.key);
  CoverResponse resp;
  {
    util::MutexLock lk(shard.mu);
    const auto it = shard.index.find(ck.key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
    resp = it->second->resp;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Map the canonical-frame cover back into the request's own frame.
  // Skip the identity outright: apply_inverse would round-trip the
  // whole cover through a by-value copy just to hand it back unchanged.
  const DihedralElement& g = ck.to_canonical;
  const bool identity =
      !g.reflect && (resp.cover.n == 0 || g.shift % resp.cover.n == 0);
  if (resp.found && !identity)
    resp.cover = apply_inverse(resp.cover, g);
  resp.cache_hit = true;
  resp.nodes = 0;  // nothing was searched
  resp.elapsed_ms = 0.0;
  return resp;
}

bool CoverCache::should_cache(const CoverResponse& resp) {
  if (!resp.ok) return false;  // genuine error: transient, retryable
  // Deadline casualties are never proofs: a timed-out search could
  // settle given more wall clock, and a degraded (greedy-fallback)
  // answer is found==true yet deliberately non-minimal — caching either
  // would pin a transient condition onto a permanent key. Shed responses
  // never reach the cache path at all.
  if (resp.timed_out || resp.degraded) return false;
  // ok && !found && !exhausted means the budget ran out before the search
  // settled the instance — a bigger budget (or luckier parallel schedule)
  // could still answer, so only exhausted negatives are proofs.
  return resp.found || resp.exhausted;
}

void CoverCache::insert(const CoverRequest& req, const CoverResponse& resp) {
  insert(canonical_request_key(req), resp);
}

void CoverCache::insert(const CanonicalKey& ck, const CoverResponse& resp) {
  if (!should_cache(resp)) return;
  // Fault-injection seam: a failed insert models memory pressure. The
  // cache is an accelerator, so "fail" means "silently drop" — callers
  // never depend on an insert landing.
  if (CCOV_FAILPOINT("cache_insert")) return;
  CoverResponse stored = resp;
  stored.cache_hit = false;
  // Store the cover in the canonical frame so every D_n-equivalent
  // request shares this one entry.
  if (stored.found) stored.cover = apply_element(stored.cover, ck.to_canonical);
  store(ck.key, std::move(stored));
}

void CoverCache::store(const std::string& key, CoverResponse resp) {
  Shard& shard = shard_for(key);
  const std::uint64_t stamp =
      next_stamp_.fetch_add(1, std::memory_order_relaxed);
  bool evicted = false;
  {
    util::MutexLock lk(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->resp = std::move(resp);
      it->second->stamp = stamp;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(resp), stamp});
    shard.index[key] = shard.lru.begin();
    if (shard.lru.size() > shard.capacity) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evicted = true;
    }
  }
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
}

void CoverCache::import_entry(const std::string& key, CoverResponse resp) {
  resp.cache_hit = false;
  store(key, std::move(resp));
}

CoverCache::Stats CoverCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t CoverCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lk(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

void CoverCache::clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lk(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, CoverResponse>> CoverCache::export_entries()
    const {
  std::vector<std::pair<std::string, CoverResponse>> out;
  out.reserve(size());
  for (const Shard& shard : shards_) {
    util::MutexLock lk(shard.mu);
    for (const Entry& e : shard.lru) out.emplace_back(e.key, e.resp);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace ccov::engine
