#include "ccov/engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <unordered_map>

#include "ccov/util/thread_pool.hpp"

namespace ccov::engine {

BatchRunner::BatchRunner(Engine& engine, BatchOptions opts)
    : engine_(engine), opts_(opts) {}

std::vector<CoverResponse> BatchRunner::run(
    const std::vector<CoverRequest>& requests) {
  std::vector<CoverResponse> results(requests.size());
  const auto run_one = [&](std::size_t i) {
    try {
      results[i] = engine_.run(requests[i]);
    } catch (const std::exception& e) {
      // Engine::run never throws by contract; belt-and-braces so one bad
      // request can never take down a whole batch.
      results[i].algorithm = requests[i].algorithm;
      results[i].n = requests[i].n;
      results[i].error = e.what();
    }
  };
  if (opts_.jobs == 1 || requests.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) run_one(i);
    return results;
  }

  // Fan out only the first request of each canonical-key group; repeats
  // run afterwards, in input order, against the then-warm cache. Serially
  // they would have hit the cache too (nodes = 0, remapped frame), so the
  // output stays byte-identical across every --jobs value even when a
  // batch carries duplicate or D_n-equivalent requests.
  std::vector<std::size_t> primaries, repeats;
  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string key = canonical_request_key(requests[i]).key;
    if (seen.emplace(key, i).second) {
      primaries.push_back(i);
    } else {
      repeats.push_back(i);
    }
  }

  // Fan the primaries across the engine's shared pool: `jobs` pulling
  // workers bound the batch's concurrency even when the pool is larger,
  // and the TaskGroup token keeps this batch isolated from any other
  // batch running on the same pool.
  util::ThreadPool& pool = engine_.pool();
  const std::size_t jobs = opts_.jobs == 0 ? pool.size() : opts_.jobs;
  const std::size_t workers = std::min(jobs, primaries.size());
  std::atomic<std::size_t> next{0};
  util::TaskGroup group;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit(group, [&] {
      for (std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
           k < primaries.size();
           k = next.fetch_add(1, std::memory_order_relaxed))
        run_one(primaries[k]);
    });
  }
  group.wait();
  for (const std::size_t i : repeats) run_one(i);
  return results;
}

}  // namespace ccov::engine
