#include "ccov/engine/shm.hpp"

#include "ccov/engine/net.hpp"
#include "ccov/util/failpoint.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ccov::engine::shm {

namespace {

/// Header block padded out to its own cache lines so the rings behind
/// it start cache-line aligned.
constexpr std::size_t kHeaderBytes =
    (sizeof(ShmSegmentHeader) + 63) / 64 * 64;

}  // namespace

std::size_t segment_bytes(std::size_t ring_capacity) {
  return kHeaderBytes + 2 * util::ShmByteRing::region_bytes(ring_capacity);
}

bool normalize_shm_name(const std::string& name, std::string* out,
                        std::string* error) {
  std::string body = name;
  if (!body.empty() && body.front() == '/') body.erase(0, 1);
  if (body.empty()) {
    *error = "shm name must not be empty";
    return false;
  }
  if (body.size() > 200) {
    *error = "shm name too long";
    return false;
  }
  if (body.find('/') != std::string::npos) {
    *error = "shm name must not contain '/'";
    return false;
  }
  *out = "/" + body;
  error->clear();
  return true;
}

std::uint64_t proc_start_time(std::uint32_t pid) {
#ifdef __linux__
  // Field 22 of /proc/<pid>/stat (starttime, clock ticks since boot).
  // comm (field 2) may itself contain spaces and parentheses, so the
  // field scan starts from the *last* ')'.
  char path[48];
  std::snprintf(path, sizeof path, "/proc/%u/stat", pid);
  std::FILE* f = std::fopen(path, "r");
  if (!f) return 0;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  const char* p = std::strrchr(buf, ')');
  if (!p) return 0;
  ++p;  // at " S ppid pgrp ..." — state is field 3
  for (int field = 2; *p != '\0' && field < 22;) {
    while (*p == ' ') ++p;
    if (++field == 22) {
      char* end = nullptr;
      const std::uint64_t value = std::strtoull(p, &end, 10);
      return end == p ? 0 : value;
    }
    while (*p != '\0' && *p != ' ') ++p;
  }
  return 0;
#else
  (void)pid;
  return 0;
#endif
}

#ifdef _WIN32
// The shm transport is POSIX-only, like the net layer: fail cleanly so
// the rest of the library stays usable elsewhere.
ShmServer::ShmServer(Engine& engine, ServeConfig config)
    : engine_(engine), config_(std::move(config)) {
  throw std::runtime_error("shm: not supported on this platform");
}
ShmServer::~ShmServer() = default;
int ShmServer::run() { return 1; }
void ShmServer::shutdown() {}
bool ShmServer::shutdown_requested() const { return true; }
void ShmServer::reset_session() {}
ShmClient::~ShmClient() = default;
bool ShmClient::connect(const std::string&, std::string* error) {
  *error = "shm: not supported on this platform";
  return false;
}
bool ShmClient::ok() const { return false; }
bool ShmClient::send(const char*, std::size_t) { return false; }
bool ShmClient::send_line(const std::string&) { return false; }
std::size_t ShmClient::try_send(const char*, std::size_t) { return 0; }
void ShmClient::wait_send(int) {}
void ShmClient::finish() {}
bool ShmClient::read_line(std::string*) { return false; }
std::size_t ShmClient::drain_available(std::string*) { return 0; }
std::size_t ShmClient::read_some(std::string*) { return 0; }
bool ShmClient::server_finished() const { return false; }
void ShmClient::close() {}
bool ShmClient::session_over() const { return true; }
#else

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("shm: " + what + ": " + std::strerror(errno));
}

/// Poll interval for the blocking ring waits: long enough to stay off
/// the CPU, short enough that shutdown and peer-death checks feel
/// immediate. The steady-state hot path never reaches these waits.
constexpr int kWaitMs = 50;
/// Ring-wait timeouts between liveness probes of the peer pid (about
/// one kill(pid, 0) per second of idle blocking).
constexpr int kProbeEvery = 20;

bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// 32-bit fold of a start time, for packing next to a pid.
std::uint32_t start_token(std::uint64_t start) {
  return static_cast<std::uint32_t>(start ^ (start >> 32));
}

std::uint32_t slot_pid(std::uint64_t slot) {
  return static_cast<std::uint32_t>(slot);
}

std::uint64_t pack_slot(std::uint32_t pid, std::uint64_t start) {
  return (static_cast<std::uint64_t>(start_token(start)) << 32) | pid;
}

/// pid liveness hardened against pid reuse: when both the recorded
/// token and the pid's current start time are knowable they must
/// agree, so an unrelated process that recycled a dead peer's pid
/// reads as dead. Either side unknown (token 0, /proc unavailable)
/// falls back to the plain pid probe.
bool peer_alive(std::uint32_t pid, std::uint32_t token) {
  if (!pid_alive(pid)) return false;
  if (token == 0) return true;
  const std::uint64_t now = proc_start_time(pid);
  if (now == 0) return true;
  return start_token(now) == token;
}

bool slot_alive(std::uint64_t slot) {
  return peer_alive(slot_pid(slot), static_cast<std::uint32_t>(slot >> 32));
}

bool server_alive(const ShmSegmentHeader* header) {
  return peer_alive(header->server_pid.load(std::memory_order_acquire),
                    start_token(header->server_start));
}

/// Does `name` still resolve to the shm inode identified by dev/ino?
/// Guards every unlink: the name may have been recycled by a successor
/// since this server (or prober) last looked.
bool name_resolves_to(const std::string& name, std::uint64_t dev,
                      std::uint64_t ino) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0600);
  if (fd < 0) return false;
  struct stat st{};
  const bool same = ::fstat(fd, &st) == 0 &&
                    static_cast<std::uint64_t>(st.st_dev) == dev &&
                    static_cast<std::uint64_t>(st.st_ino) == ino;
  ::close(fd);
  return same;
}

/// Grace ticks (20 ms apart) a zero-magic segment gets before it is
/// declared stale: a live creator publishes its magic within
/// microseconds of creating the file, so only a creator that died
/// mid-constructor ever exhausts this.
constexpr int kStaleGraceTicks = 10;

/// The EEXIST path of server construction: decide whether the existing
/// segment is a leftover from a dead server and, if so, unlink it.
/// Throws when a live server owns the name. On return (stale segment
/// removed, or the name vanished underneath us) the caller retries its
/// O_EXCL create.
void recycle_stale_segment(const std::string& name) {
  const int old = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (old < 0) {
    if (errno == ENOENT) return;  // owner just unlinked; create afresh
    throw_errno("shm_open '" + name + "'");
  }
  // A live server holds LOCK_EX on its segment fd from birth to death,
  // so a failed nonblocking flock is proof of life — even for an owner
  // still mid-constructor whose magic is not yet published.
  if (::flock(old, LOCK_EX | LOCK_NB) != 0) {
    ::close(old);
    throw std::runtime_error("shm: segment '" + name +
                             "' is already being served");
  }
  struct stat self{};
  if (::fstat(old, &self) != 0 ||
      !name_resolves_to(name, static_cast<std::uint64_t>(self.st_dev),
                        static_cast<std::uint64_t>(self.st_ino))) {
    ::close(old);  // the name moved on while we were opening; retry
    return;
  }
  // Probe the header while holding the lock. A zero magic is re-read
  // across a short grace window before it is declared stale, so a
  // creator caught in its create-to-flock gap is never judged by a
  // probe that landed microseconds early.
  bool alive = false;
  bool initialized = false;
  for (int tick = 0; tick < kStaleGraceTicks && !initialized; ++tick) {
    if (tick > 0) {
      const timespec ts{0, 20 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }
    struct stat st{};
    if (::fstat(old, &st) != 0 ||
        st.st_size < static_cast<off_t>(sizeof(ShmSegmentHeader)))
      continue;  // creator has not ftruncated yet (or never did)
    void* peek = ::mmap(nullptr, sizeof(ShmSegmentHeader),
                        PROT_READ | PROT_WRITE, MAP_SHARED, old, 0);
    if (peek == MAP_FAILED) continue;
    auto* h = static_cast<ShmSegmentHeader*>(peek);
    if (h->magic.load(std::memory_order_acquire) == kShmMagic) {
      initialized = true;
      alive = server_alive(h);
    }
    ::munmap(peek, sizeof(ShmSegmentHeader));
  }
  if (alive) {
    ::close(old);
    throw std::runtime_error("shm: segment '" + name +
                             "' is already being served");
  }
  // Owner provably dead, or the magic never appeared across the grace
  // window (a creator died mid-constructor — a live one would also
  // have failed the flock above). Unlink while still holding the lock
  // so no concurrent prober recycles the same name twice.
  ::shm_unlink(name.c_str());
  ::close(old);
}

/// ServeStream over the two rings, server side: reads requests the
/// client produced, writes responses for it to consume. Tolerates the
/// session's one-reader-plus-one-writer threading (different rings,
/// each SPSC with this side holding exactly one role).
class ShmServerStream final : public ServeStream {
 public:
  ShmServerStream(ShmSegmentHeader* header, util::ShmByteRing request_ring,
                  util::ShmByteRing response_ring,
                  std::function<bool()> shutdown_requested, Counter& vanished)
      : header_(header),
        req_(request_ring),
        resp_(response_ring),
        shutdown_requested_(std::move(shutdown_requested)),
        vanished_(vanished) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    // Fault-injection seam: a failed ring read looks like the client
    // detaching (end of stream), the same way a vanished peer surfaces.
    if (CCOV_FAILPOINT("shm_read")) return 0;
    int idle = 0;
    for (;;) {
      const std::size_t r = req_.try_read(buf, n);
      if (r > 0) return static_cast<std::ptrdiff_t>(r);
      // The client publishes its last bytes *before* raising eof, so
      // one more read after observing the flag cannot miss data.
      if (header_->client_eof.load(std::memory_order_acquire) != 0) {
        const std::size_t last = req_.try_read(buf, n);
        return static_cast<std::ptrdiff_t>(last);
      }
      // Cheap in-segment flag every pass; the poll(2)-backed callback
      // (self-pipe promotion) only when a wait actually timed out, so a
      // busy session pays zero shutdown syscalls per round trip.
      if (header_->shutdown.load(std::memory_order_acquire) != 0) return 0;
      const std::uint64_t slot =
          header_->client_slot.load(std::memory_order_acquire);
      if (slot == 0) return 0;  // client detached without eof: end of stream
      if (++idle >= kProbeEvery) {
        idle = 0;
        if (!slot_alive(slot)) {
          // The client vanished mid-session: end the stream so the
          // session winds down and the server frees the slot, instead
          // of wedging in this read forever.
          vanished_.add(1);
          return 0;
        }
      }
      if (!req_.wait_readable(kWaitMs) && shutdown_requested_()) return 0;
    }
  }

  bool write_all(const char* data, std::size_t n) override {
    // Fault-injection seam: a failed ring write is a client that
    // stopped draining; only this session tears down.
    if (CCOV_FAILPOINT("shm_write")) return false;
    std::size_t off = 0;
    int idle = 0;
    int grace_ms = -1;  // bounded only once shutdown was observed
    while (off < n) {
      const std::size_t w = resp_.try_write(data + off, n - off);
      if (w > 0) {
        off += w;
        idle = 0;
        continue;
      }
      const std::uint64_t slot =
          header_->client_slot.load(std::memory_order_acquire);
      if (slot == 0) return false;  // nobody left to read these bytes
      if (++idle >= kProbeEvery) {
        idle = 0;
        if (!slot_alive(slot)) {
          vanished_.add(1);
          return false;
        }
      }
      if (!resp_.wait_writable(kWaitMs) && shutdown_requested_()) {
        // Responses already owed still get written, but a client that
        // stopped draining cannot hang the shutdown forever. Each pass
        // through here burned a full kWaitMs timeout.
        if (grace_ms < 0) grace_ms = net::SocketStream::kShutdownWriteGraceMs;
        if (grace_ms == 0) return false;
        grace_ms -= std::min(grace_ms, kWaitMs);
      }
    }
    return true;
  }

 private:
  ShmSegmentHeader* header_;
  util::ShmByteRing req_;
  util::ShmByteRing resp_;
  std::function<bool()> shutdown_requested_;
  Counter& vanished_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ShmServer
// ---------------------------------------------------------------------------

ShmServer::ShmServer(Engine& engine, ServeConfig config)
    : engine_(engine), config_(std::move(config)) {
  std::string err;
  if (!normalize_shm_name(config_.shm_name, &name_, &err))
    throw std::runtime_error("shm: " + err);
  if (!util::ShmByteRing::valid_capacity(config_.shm_ring_bytes))
    throw std::runtime_error(
        "shm: ring capacity must be a power of two >= 64 bytes");
  size_ = segment_bytes(config_.shm_ring_bytes);

  // Creation races other servers through an exclusive flock held on
  // the segment fd for this server's whole lifetime: a prober that
  // cannot take the lock knows the owner is alive even mid-constructor
  // (before the magic exists), a prober that can take it re-checks the
  // magic across a grace window before unlinking (and unlinks while
  // still holding the lock), and after creating we verify the name
  // still resolves to our inode — a concurrent prober may have judged
  // the freshly created, still-empty segment stale in the tiny gap
  // between our shm_open and our flock.
  int fd = -1;
  for (int attempt = 0;; ++attempt) {
    if (attempt >= 16)
      throw std::runtime_error("shm: segment '" + name_ +
                               "' is already being served");
    fd = ::shm_open(name_.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd < 0) {
      if (errno != EEXIST) throw_errno("shm_open '" + name_ + "'");
      recycle_stale_segment(name_);  // throws when the owner is alive
      continue;
    }
    struct stat st{};
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0 || ::fstat(fd, &st) != 0 ||
        !name_resolves_to(name_, static_cast<std::uint64_t>(st.st_dev),
                          static_cast<std::uint64_t>(st.st_ino))) {
      // A stale-prober grabbed (or already unlinked) our fresh inode:
      // back off and go again.
      ::close(fd);
      fd = -1;
      const timespec ts{0, 10 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      continue;
    }
    shm_dev_ = static_cast<std::uint64_t>(st.st_dev);
    shm_ino_ = static_cast<std::uint64_t>(st.st_ino);
    break;
  }
  shm_fd_ = fd;  // stays open: it carries the lifetime lock
  if (::ftruncate(fd, static_cast<off_t>(size_)) != 0) {
    const int saved = errno;
    ::shm_unlink(name_.c_str());
    ::close(fd);
    shm_fd_ = -1;
    errno = saved;
    throw_errno("ftruncate");
  }
  mem_ = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem_ == MAP_FAILED) {
    mem_ = nullptr;
    ::shm_unlink(name_.c_str());
    ::close(fd);
    shm_fd_ = -1;
    throw_errno("mmap");
  }

  char* base = static_cast<char*>(mem_);
  header_ = new (base) ShmSegmentHeader();
  header_->magic.store(0, std::memory_order_relaxed);
  header_->version = kShmVersion;
  header_->ring_capacity = static_cast<std::uint32_t>(config_.shm_ring_bytes);
  const auto pid = static_cast<std::uint32_t>(::getpid());
  header_->server_pid.store(pid, std::memory_order_relaxed);
  header_->server_start = proc_start_time(pid);
  header_->client_slot.store(0, std::memory_order_relaxed);
  header_->epoch.store(0, std::memory_order_relaxed);
  header_->client_eof.store(0, std::memory_order_relaxed);
  header_->server_eof.store(0, std::memory_order_relaxed);
  header_->shutdown.store(0, std::memory_order_relaxed);
  const std::size_t ring_bytes =
      util::ShmByteRing::region_bytes(config_.shm_ring_bytes);
  request_ring_ =
      util::ShmByteRing::init(base + kHeaderBytes, config_.shm_ring_bytes);
  response_ring_ = util::ShmByteRing::init(base + kHeaderBytes + ring_bytes,
                                           config_.shm_ring_bytes);
  // Publish the magic last: a client attaching mid-construction sees a
  // zero magic and rejects the segment instead of racing the init.
  header_->magic.store(kShmMagic, std::memory_order_release);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const int saved = errno;
    ::munmap(mem_, size_);
    mem_ = nullptr;
    ::shm_unlink(name_.c_str());
    ::close(shm_fd_);
    shm_fd_ = -1;
    errno = saved;
    throw_errno("pipe");
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
}

ShmServer::~ShmServer() {
  shutdown();
  if (mem_) {
    ::munmap(mem_, size_);
    mem_ = nullptr;
    // Unlink only while the name still resolves to the inode we
    // created: a successor that (rightly or wrongly) recycled the name
    // must not lose its live segment to our death throes. No TOCTOU
    // here — the flock on shm_fd_ is still held, so no prober can
    // recycle the name between this check and the unlink.
    if (name_resolves_to(name_, shm_dev_, shm_ino_))
      ::shm_unlink(name_.c_str());
  }
  if (shm_fd_ >= 0) ::close(shm_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void ShmServer::shutdown() {
  if (header_) {
    header_->shutdown.store(1, std::memory_order_release);
    request_ring_.wake_all();
    response_ring_.wake_all();
  }
  if (wake_wr_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t rc = ::write(wake_wr_, &byte, 1);
  }
}

bool ShmServer::shutdown_requested() const {
  if (header_->shutdown.load(std::memory_order_acquire) != 0) return true;
  // The signal path only writes the self-pipe byte (async-signal-safe);
  // promote it to the header flag here so both sides observe it.
  pollfd pfd{wake_rd_, POLLIN, 0};
  if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP))) {
    const_cast<ShmServer*>(this)->shutdown();
    return true;
  }
  return false;
}

void ShmServer::reset_session() {
  // Fence the slot with kSlotResetting before touching the rings: a
  // straggling live client keeps the slot until it detaches or dies
  // (re-initializing rings under a writer would tear the stream), and
  // the sentinel keeps a *new* client from claiming mid-rebuild. A
  // client that still squeezes into the clean-detach window sees
  // server_eof set and backs out of its claim.
  for (;;) {
    std::uint64_t slot = header_->client_slot.load(std::memory_order_acquire);
    if (slot == kSlotResetting) break;
    if (slot == 0 || !slot_alive(slot)) {
      if (header_->client_slot.compare_exchange_strong(
              slot, kSlotResetting, std::memory_order_acq_rel))
        break;
      continue;  // lost a race with a claim or detach; re-evaluate
    }
    if (shutdown_requested()) return;  // teardown unlinks the segment anyway
    pollfd pfd{wake_rd_, POLLIN, 0};
    ::poll(&pfd, 1, kWaitMs);
  }
  // Bump the epoch first so a stale client's next operation fails, then
  // empty the rings and finally reopen the slot. reset() (all-atomic)
  // rather than a fresh init(): shutdown() may wake_all() the rings
  // from another thread at any moment, and overlapping that with
  // init()'s plain stores would be a data race.
  header_->epoch.fetch_add(1, std::memory_order_acq_rel);
  request_ring_.reset();
  response_ring_.reset();
  header_->client_eof.store(0, std::memory_order_relaxed);
  header_->server_eof.store(0, std::memory_order_relaxed);
  header_->client_slot.store(0, std::memory_order_release);
}

int ShmServer::run() {
  Counter& sessions = engine_.metrics().counter(
      "ccov_shm_sessions_total", "shm client sessions served");
  Counter& vanished = engine_.metrics().counter(
      "ccov_shm_clients_vanished_total",
      "shm sessions torn down because the client process died");
  while (!shutdown_requested()) {
    const std::uint64_t slot =
        header_->client_slot.load(std::memory_order_acquire);
    if (slot == 0 || slot == kSlotResetting) {
      // Idle: no client holds the slot. Claim latency is off the hot
      // path (a session does millions of requests per claim), so a
      // plain poll tick is plenty.
      pollfd pfd{wake_rd_, POLLIN, 0};
      ::poll(&pfd, 1, 10);
      continue;
    }
    sessions.add(1);
    ShmServerStream stream(header_, request_ring_, response_ring_,
                           [this] { return shutdown_requested(); }, vanished);
    serve_session(stream, engine_, config_);
    // Every owed response byte is in the ring; tell the client the
    // stream is complete, then recycle the slot for the next client.
    header_->server_eof.store(1, std::memory_order_release);
    response_ring_.wake_all();
    reset_session();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// ShmClient
// ---------------------------------------------------------------------------

ShmClient::~ShmClient() { close(); }

bool ShmClient::connect(const std::string& name, std::string* error) {
  close();
  std::string normalized;
  if (!normalize_shm_name(name, &normalized, error)) return false;
  const int fd = ::shm_open(normalized.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    *error = "cannot open shm segment '" + normalized +
             "': " + std::strerror(errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(ShmSegmentHeader))) {
    ::close(fd);
    *error = "shm segment '" + normalized + "' is truncated";
    return false;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    *error = std::string("mmap: ") + std::strerror(errno);
    return false;
  }
  auto* header = static_cast<ShmSegmentHeader*>(mem);
  // The handshake: magic, version and capacity must all check out and
  // the mapped size must cover what the header claims — anything else
  // is a torn init, a foreign segment, or a corrupted one. The acquire
  // on the magic pairs with the server's release-store after init, so
  // a valid magic guarantees the rest of the header is visible.
  const bool magic_ok =
      header->magic.load(std::memory_order_acquire) == kShmMagic;
  const std::size_t cap = magic_ok ? header->ring_capacity : 0;
  if (!magic_ok) {
    *error = "shm segment '" + normalized + "' has a bad magic";
  } else if (header->version != kShmVersion) {
    *error = "shm segment '" + normalized + "' speaks protocol version " +
             std::to_string(header->version) + ", expected " +
             std::to_string(kShmVersion);
  } else if (!util::ShmByteRing::valid_capacity(cap)) {
    *error = "shm segment '" + normalized + "' has a bad ring capacity";
  } else if (size < segment_bytes(cap)) {
    *error = "shm segment '" + normalized + "' is smaller than its header "
             "claims";
  } else if (header->shutdown.load(std::memory_order_acquire) != 0) {
    *error = "shm segment '" + normalized + "' is shutting down";
  } else {
    error->clear();
  }
  if (!error->empty()) {
    ::munmap(mem, size);
    return false;
  }

  // Claim the client slot: exactly one client at a time (the rings are
  // SPSC). The pid and its start-time token travel in one CAS, so the
  // server can never observe the pid without the token. A dead holder
  // is the server's job to reap — stealing here would race its own
  // liveness probe.
  std::uint64_t expected = 0;
  const auto pid = static_cast<std::uint32_t>(::getpid());
  const std::uint64_t slot = pack_slot(pid, proc_start_time(pid));
  if (!header->client_slot.compare_exchange_strong(
          expected, slot, std::memory_order_acq_rel)) {
    *error = "shm segment '" + normalized + "' is busy (client pid " +
             std::to_string(slot_pid(expected)) + " holds the slot)";
    ::munmap(mem, size);
    return false;
  }
  if (header->server_eof.load(std::memory_order_acquire) != 0 ||
      header->client_eof.load(std::memory_order_acquire) != 0) {
    // We won a claim race against the tail of the previous session:
    // either the server's between-sessions reset hasn't finished
    // (server_eof still up), or the previous client finished and
    // detached before the server even noticed the EOF (client_eof
    // still up — joining now would attach us to a session that is
    // about to be torn down unanswered). Both flags are cleared only
    // by the reset, so back out; the caller may retry once it runs.
    std::uint64_t self = slot;
    header->client_slot.compare_exchange_strong(self, 0,
                                                std::memory_order_acq_rel);
    *error = "shm segment '" + normalized + "' is busy (session reset)";
    ::munmap(mem, size);
    return false;
  }

  mem_ = mem;
  size_ = size;
  header_ = header;
  epoch_ = header->epoch.load(std::memory_order_acquire);
  slot_ = slot;
  char* base = static_cast<char*>(mem);
  const std::size_t ring_bytes = util::ShmByteRing::region_bytes(cap);
  request_ring_ = util::ShmByteRing::attach(base + kHeaderBytes, cap);
  response_ring_ =
      util::ShmByteRing::attach(base + kHeaderBytes + ring_bytes, cap);
  rx_.clear();
  return true;
}

bool ShmClient::session_over() const {
  return header_->shutdown.load(std::memory_order_acquire) != 0 ||
         header_->epoch.load(std::memory_order_acquire) != epoch_;
}

bool ShmClient::ok() const {
  return connected() && !session_over() &&
         header_->server_eof.load(std::memory_order_acquire) == 0 &&
         server_alive(header_);
}

bool ShmClient::send(const char* data, std::size_t n) {
  if (!connected()) return false;
  std::size_t off = 0;
  while (off < n) {
    const std::size_t w = request_ring_.try_write(data + off, n - off);
    if (w > 0) {
      off += w;
      continue;
    }
    if (!ok()) return false;
    request_ring_.wait_writable(kWaitMs);
  }
  return true;
}

std::size_t ShmClient::try_send(const char* data, std::size_t n) {
  if (!connected()) return 0;
  return request_ring_.try_write(data, n);
}

void ShmClient::wait_send(int timeout_ms) {
  if (connected()) request_ring_.wait_writable(timeout_ms);
}

bool ShmClient::send_line(const std::string& line) {
  // Stage line + '\n' into one reused buffer so the ring sees a single
  // write — one publish (and at most one futex wake) per request
  // instead of two.
  tx_.assign(line);
  tx_.push_back('\n');
  return send(tx_.data(), tx_.size());
}

void ShmClient::finish() {
  if (!connected()) return;
  header_->client_eof.store(1, std::memory_order_release);
  request_ring_.wake_all();
}

std::size_t ShmClient::drain_available(std::string* out) {
  if (!connected()) return 0;
  std::size_t total = 0;
  for (;;) {
    // Size the tail by what is readable right now and copy straight
    // from the ring into the caller's buffer — no bounce buffer.
    const std::size_t avail = response_ring_.readable();
    if (avail == 0) break;
    const std::size_t old = out->size();
    out->resize(old + avail);
    const std::size_t r = response_ring_.try_read(out->data() + old, avail);
    out->resize(old + r);
    total += r;
  }
  return total;
}

std::size_t ShmClient::read_some(std::string* out) {
  if (!connected()) return 0;
  for (;;) {
    const std::size_t n = drain_available(out);
    if (n > 0) return n;
    // The server publishes the last response bytes before raising
    // server_eof, so one more drain after seeing the flag is complete.
    if (header_->server_eof.load(std::memory_order_acquire) != 0)
      return drain_available(out);
    if (session_over()) return 0;
    // kill(2)-probe the server only when a wait timed out: a live
    // server answers well inside kWaitMs, so the steady state pays no
    // liveness syscall per round trip, while a crashed one is still
    // detected within a tick.
    if (!response_ring_.wait_readable(kWaitMs) && !server_alive(header_))
      return 0;
  }
}

bool ShmClient::server_finished() const {
  return connected() &&
         header_->server_eof.load(std::memory_order_acquire) != 0;
}

bool ShmClient::read_line(std::string* line) {
  if (!connected()) return false;
  for (;;) {
    const std::size_t nl = rx_.find('\n');
    if (nl != std::string::npos) {
      line->assign(rx_, 0, nl);
      rx_.erase(0, nl + 1);
      return true;
    }
    if (read_some(&rx_) == 0) return false;
  }
}

void ShmClient::close() {
  if (!header_) return;
  std::uint64_t expected = slot_;
  header_->client_slot.compare_exchange_strong(expected, 0,
                                               std::memory_order_acq_rel);
  // Wake the server's request-ring wait so it notices the detach now
  // rather than at the next probe tick.
  request_ring_.wake_all();
  ::munmap(mem_, size_);
  mem_ = nullptr;
  size_ = 0;
  header_ = nullptr;
  slot_ = 0;
}

#endif  // _WIN32

}  // namespace ccov::engine::shm
