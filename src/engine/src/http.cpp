#include "ccov/engine/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ccov::engine::net {

namespace {

// ---------------------------------------------------------------------------
// Request head parsing (HttpRequest/find_head_end/parse_head are declared
// in http.hpp so tests and the fuzz harnesses reach them socket-free)
// ---------------------------------------------------------------------------

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool find_head_end(const std::string& buf, std::size_t* head_end,
                   std::size_t* body_start) {
  const std::size_t crlf = buf.find("\r\n\r\n");
  const std::size_t lflf = buf.find("\n\n");
  if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
    *head_end = crlf;
    *body_start = crlf + 4;
    return true;
  }
  if (lflf != std::string::npos) {
    *head_end = lflf;
    *body_start = lflf + 2;
    return true;
  }
  return false;
}

bool parse_head(const std::string& head, HttpRequest* req, std::string* error) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t nl = head.find('\n', pos);
    std::string line = head.substr(pos, nl == std::string::npos
                                            ? std::string::npos
                                            : nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    *error = "empty request line";
    return false;
  }
  // Request line: METHOD SP TARGET SP VERSION.
  const std::string& rl = lines[0];
  const std::size_t sp1 = rl.find(' ');
  const std::size_t sp2 = rl.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    *error = "malformed request line";
    return false;
  }
  req->method = rl.substr(0, sp1);
  req->target = trim(rl.substr(sp1 + 1, sp2 - sp1 - 1));
  req->version = rl.substr(sp2 + 1);
  if (req->method.empty() || req->target.empty() ||
      req->version.rfind("HTTP/", 0) != 0) {
    *error = "malformed request line";
    return false;
  }
  req->keep_alive = req->version != "HTTP/1.0";
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) {
      *error = "malformed header line";
      return false;
    }
    const std::string key = lower(trim(lines[i].substr(0, colon)));
    const std::string value = trim(lines[i].substr(colon + 1));
    if (key == "content-length") {
      if (value.empty()) {
        *error = "malformed Content-Length";
        return false;
      }
      std::uint64_t v = 0;
      for (const char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c)) ||
            v > (UINT64_MAX - 9) / 10) {
          *error = "malformed Content-Length";
          return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (req->has_content_length && req->content_length != v) {
        *error = "conflicting Content-Length";
        return false;
      }
      req->has_content_length = true;
      req->content_length = v;
    } else if (key == "transfer-encoding") {
      if (lower(value).find("chunked") != std::string::npos)
        req->chunked = true;
    } else if (key == "expect") {
      if (lower(value) == "100-continue") req->expect_continue = true;
    } else if (key == "connection") {
      const std::string v = lower(value);
      if (v.find("close") != std::string::npos) req->keep_alive = false;
      else if (v.find("keep-alive") != std::string::npos)
        req->keep_alive = true;
    }
  }
  return true;
}

namespace {

enum class HeadRead { kOk, kEof, kPartial, kTooLarge, kError };

/// Accumulate socket bytes into `buf` until a full request head is
/// present. `buf` may already hold pipelined bytes from the previous
/// request — they are consumed first and no extra read happens if a
/// head is already complete.
HeadRead read_head(SocketStream& sock, std::string* buf,
                   std::size_t max_header, std::size_t* head_end,
                   std::size_t* body_start) {
  for (;;) {
    // Leading blank lines between pipelined requests are ignored
    // (RFC 9112 §2.2).
    while (!buf->empty() && (buf->front() == '\r' || buf->front() == '\n'))
      buf->erase(0, 1);
    if (find_head_end(*buf, head_end, body_start)) return HeadRead::kOk;
    if (buf->size() > max_header) return HeadRead::kTooLarge;
    char tmp[4096];
    const std::ptrdiff_t r = sock.read_some(tmp, sizeof(tmp));
    if (r < 0) return HeadRead::kError;
    if (r == 0) return buf->empty() ? HeadRead::kEof : HeadRead::kPartial;
    buf->append(tmp, static_cast<std::size_t>(r));
  }
}

// ---------------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------------

const char* status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

using Headers = std::vector<std::pair<std::string, std::string>>;

/// A fixed-body response: status line, Content-Type/Length, Connection,
/// extra headers, body — one write.
bool write_response(SocketStream& sock, int code, const std::string& type,
                    const std::string& body, bool keep_alive,
                    const Headers& extra = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    status_text(code) + "\r\n";
  out += "Content-Type: " + type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += std::string("Connection: ") + (keep_alive ? "keep-alive" : "close") +
         "\r\n";
  for (const auto& [k, v] : extra) out += k + ": " + v + "\r\n";
  out += "\r\n";
  out += body;
  return sock.write_all(out.data(), out.size());
}

// ---------------------------------------------------------------------------
// Body transport: the ServeStream an HTTP batch request runs through
// ---------------------------------------------------------------------------

/// Frames serve_session inside one HTTP exchange. The read side hands
/// out exactly Content-Length bytes — pipelined bytes already buffered
/// first, then socket reads capped at the remainder, so the next
/// request on the connection is never consumed. The write side wraps
/// every write_all into one HTTP chunk (when chunked framing is on), so
/// each flushed batch of JSONL lines leaves as soon as the session
/// writes it. The payload bytes inside the chunks are exactly the
/// session's stdio output.
class HttpBodyStream final : public ServeStream {
 public:
  HttpBodyStream(SocketStream& sock, std::string* carry,
                 std::uint64_t content_length, bool chunked)
      : sock_(sock),
        carry_(carry),
        remaining_(content_length),
        chunked_(chunked) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    if (remaining_ == 0 || n == 0) return 0;
    if (!carry_->empty()) {
      const std::size_t k = std::min<std::uint64_t>(
          std::min<std::uint64_t>(n, carry_->size()), remaining_);
      std::memcpy(buf, carry_->data(), k);
      carry_->erase(0, k);
      remaining_ -= k;
      return static_cast<std::ptrdiff_t>(k);
    }
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, remaining_));
    const std::ptrdiff_t r = sock_.read_some(buf, want);
    if (r <= 0) {
      // The peer vanished (or shutdown fired) before delivering the
      // promised Content-Length: the connection is unusable afterwards.
      truncated_ = true;
      remaining_ = 0;
      return r;
    }
    remaining_ -= static_cast<std::uint64_t>(r);
    return r;
  }

  bool write_all(const char* data, std::size_t n) override {
    if (n == 0) return true;
    if (!chunked_) return sock_.write_all(data, n);
    char size_hex[32];
    const int len = std::snprintf(size_hex, sizeof(size_hex), "%zx",
                                  static_cast<std::size_t>(n));
    std::string frame;
    frame.reserve(static_cast<std::size_t>(len) + n + 4);
    frame.append(size_hex, static_cast<std::size_t>(len));
    frame += "\r\n";
    frame.append(data, n);
    frame += "\r\n";
    return sock_.write_all(frame.data(), frame.size());
  }

  /// True when the socket ended before Content-Length bytes arrived.
  bool truncated() const { return truncated_; }

 private:
  SocketStream& sock_;
  std::string* carry_;
  std::uint64_t remaining_;
  bool chunked_;
  bool truncated_ = false;
};

const char kEndpointsBody[] =
    "not found\n"
    "endpoints:\n"
    "  POST /v1/batch  (JSONL serve protocol)\n"
    "  GET  /metrics   (Prometheus text format)\n"
    "  GET  /healthz\n";

}  // namespace

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(Engine& engine, ServeConfig config)
    : engine_(engine),
      config_(std::move(config)),
      server_(config_.host, config_.port, config_.backlog,
              config_.max_clients),
      requests_(engine.metrics().counter(
          "ccov_http_requests_total",
          "HTTP requests parsed by the HTTP front end")),
      errors_(engine.metrics().counter(
          "ccov_http_errors_total",
          "HTTP requests answered with a 4xx or 5xx status")),
      connections_(engine.metrics().counter("ccov_http_connections_total",
                                            "HTTP connections accepted")) {}

int HttpServer::run() {
  return server_.run(
      [this](int fd, int wake_fd) { handle_connection(fd, wake_fd); },
      [this](int fd, int wake_fd) {
        SocketStream sock(fd, wake_fd);
        errors_.add(1);
        write_response(sock, 503, "text/plain; charset=utf-8",
                       "server busy: too many clients\n",
                       /*keep_alive=*/false, {{"Retry-After", "1"}});
      });
}

void HttpServer::handle_connection(int client_fd, int wake_fd) {
  connections_.add(1);
  SocketStream sock(client_fd, wake_fd);
  std::string buf;  // unconsumed bytes carried between pipelined requests
  for (;;) {
    std::size_t head_end = 0, body_start = 0;
    const HeadRead hr =
        read_head(sock, &buf, config_.max_header_bytes, &head_end, &body_start);
    if (hr == HeadRead::kEof || hr == HeadRead::kError) return;
    if (hr == HeadRead::kTooLarge) {
      errors_.add(1);
      write_response(sock, 431, "text/plain; charset=utf-8",
                     "request head exceeds " +
                         std::to_string(config_.max_header_bytes) + " bytes\n",
                     /*keep_alive=*/false);
      return;
    }
    if (hr == HeadRead::kPartial) {
      errors_.add(1);
      write_response(sock, 400, "text/plain; charset=utf-8",
                     "truncated request head\n", /*keep_alive=*/false);
      return;
    }
    HttpRequest req;
    std::string error;
    if (!parse_head(buf.substr(0, head_end), &req, &error)) {
      errors_.add(1);
      write_response(sock, 400, "text/plain; charset=utf-8", error + "\n",
                     /*keep_alive=*/false);
      return;
    }
    buf.erase(0, body_start);
    requests_.add(1);

    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
      errors_.add(1);
      write_response(sock, 505, "text/plain; charset=utf-8",
                     "only HTTP/1.0 and HTTP/1.1 are supported\n",
                     /*keep_alive=*/false);
      return;
    }
    if (req.chunked) {
      errors_.add(1);
      write_response(sock, 501, "text/plain; charset=utf-8",
                     "chunked request bodies are not supported; "
                     "send Content-Length\n",
                     /*keep_alive=*/false);
      return;
    }

    if (req.method == "POST" && req.target == "/v1/batch") {
      if (!req.has_content_length) {
        errors_.add(1);
        write_response(sock, 411, "text/plain; charset=utf-8",
                       "POST /v1/batch requires Content-Length\n",
                       /*keep_alive=*/false);
        return;
      }
      if (req.content_length > config_.max_body_bytes) {
        // Refused before reading one body byte; the unread body makes
        // the connection unusable, so it closes.
        errors_.add(1);
        write_response(sock, 413, "text/plain; charset=utf-8",
                       "body exceeds " +
                           std::to_string(config_.max_body_bytes) +
                           " bytes\n",
                       /*keep_alive=*/false);
        return;
      }
      if (req.expect_continue) {
        const char cont[] = "HTTP/1.1 100 Continue\r\n\r\n";
        if (!sock.write_all(cont, sizeof(cont) - 1)) return;
      }
      // HTTP/1.0 clients get an unframed body and a close; HTTP/1.1
      // gets chunked framing so batches stream out as they flush and
      // the connection can keep going.
      const bool use_chunked = req.version == "HTTP/1.1";
      if (!use_chunked) req.keep_alive = false;
      std::string head = "HTTP/1.1 200 OK\r\n";
      head += "Content-Type: application/x-ndjson\r\n";
      if (use_chunked) head += "Transfer-Encoding: chunked\r\n";
      head += std::string("Connection: ") +
              (req.keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
      if (!sock.write_all(head.data(), head.size())) return;
      HttpBodyStream body(sock, &buf, req.content_length, use_chunked);
      serve_session(body, engine_, config_);
      if (body.truncated()) return;
      if (use_chunked) {
        const char last[] = "0\r\n\r\n";
        if (!sock.write_all(last, sizeof(last) - 1)) return;
      }
      if (!req.keep_alive) return;
      continue;
    }

    // Every remaining route carries no request body; a body we will not
    // read would desynchronize the connection, so it closes afterwards.
    if (req.has_content_length && req.content_length > 0)
      req.keep_alive = false;

    if (req.method == "GET" && req.target == "/metrics") {
      if (!write_response(sock, 200,
                          "text/plain; version=0.0.4; charset=utf-8",
                          engine_.metrics().render_prometheus(),
                          req.keep_alive))
        return;
    } else if (req.method == "GET" && req.target == "/healthz") {
      if (!write_response(sock, 200, "text/plain; charset=utf-8", "ok\n",
                          req.keep_alive))
        return;
    } else if (req.target == "/v1/batch" || req.target == "/metrics" ||
               req.target == "/healthz") {
      errors_.add(1);
      const std::string allow = req.target == "/v1/batch" ? "POST" : "GET";
      if (!write_response(sock, 405, "text/plain; charset=utf-8",
                          "method not allowed; use " + allow + " " +
                              req.target + "\n",
                          req.keep_alive, {{"Allow", allow}}))
        return;
    } else if (req.method != "GET" && req.method != "POST") {
      errors_.add(1);
      if (!write_response(sock, 501, "text/plain; charset=utf-8",
                          "method '" + req.method + "' not implemented\n",
                          req.keep_alive))
        return;
    } else {
      errors_.add(1);
      if (!write_response(sock, 404, "text/plain; charset=utf-8",
                          kEndpointsBody, req.keep_alive))
        return;
    }
    if (!req.keep_alive) return;
  }
}

}  // namespace ccov::engine::net
