#pragma once
/// \file generators.hpp
/// Standard graph families. complete_graph(n) is the paper's all-to-all
/// instance; cycle_graph(n) is the physical ring; the grid/torus/tree-of-
/// rings families support the extensions section.

#include <cstdint>

#include "ccov/graph/graph.hpp"

namespace ccov::graph {

Graph cycle_graph(std::uint32_t n);
Graph path_graph(std::uint32_t n);
Graph complete_graph(std::uint32_t n);
/// lambda parallel copies of each K_n edge (the paper's lambda*K_n instance).
Graph complete_multigraph(std::uint32_t n, std::uint32_t lambda);
Graph star_graph(std::uint32_t n);  // center 0, leaves 1..n-1
Graph grid_graph(std::uint32_t rows, std::uint32_t cols);
Graph torus_graph(std::uint32_t rows, std::uint32_t cols);

/// Chain of `rings` rings of size `ring_size`, consecutive rings sharing one
/// vertex (the simplest "tree of rings" from the paper's future work).
Graph tree_of_rings_chain(std::uint32_t rings, std::uint32_t ring_size);

}  // namespace ccov::graph
