#pragma once
/// \file io.hpp
/// Graph serialization: Graphviz DOT export (for the examples) and a simple
/// whitespace edge-list format (round-trippable, for test fixtures).

#include <iosfwd>
#include <string>

#include "ccov/graph/graph.hpp"

namespace ccov::graph {

/// Emit the graph as an undirected DOT document.
void write_dot(std::ostream& os, const Graph& g,
               const std::string& name = "G");

/// Format: first line "n m", then m lines "u v".
void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

}  // namespace ccov::graph
