#pragma once
/// \file graph.hpp
/// Undirected multigraph with an adjacency index. Logical (demand) graphs
/// of the paper — K_n, lambda*K_n, and arbitrary instances — are represented
/// with this class; edge multiplicity carries demand multiplicity.

#include <cstdint>
#include <utility>
#include <vector>

namespace ccov::graph {

using Vertex = std::uint32_t;

struct Edge {
  Vertex u;
  Vertex v;
  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Normalize so that u <= v.
constexpr Edge normalized(Edge e) {
  return e.u <= e.v ? e : Edge{e.v, e.u};
}

class Graph {
 public:
  explicit Graph(std::uint32_t n = 0) : n_(n), adj_(n) {}

  std::uint32_t num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Add an undirected edge (parallel edges allowed, self-loops rejected).
  /// Returns the edge index.
  std::size_t add_edge(Vertex u, Vertex v);

  /// Multiplicity of edge {u, v}.
  std::uint32_t multiplicity(Vertex u, Vertex v) const;
  bool has_edge(Vertex u, Vertex v) const { return multiplicity(u, v) > 0; }

  std::uint32_t degree(Vertex v) const {
    return static_cast<std::uint32_t>(adj_[v].size());
  }

  /// Neighbour list of v (with repetition for parallel edges).
  const std::vector<Vertex>& neighbors(Vertex v) const { return adj_[v]; }

  /// All edges in insertion order, normalized u <= v.
  const std::vector<Edge>& edges() const { return edges_; }

  /// True when this is a simple graph (no parallel edges).
  bool is_simple() const;

  /// Grow the vertex set to n (never shrinks).
  void ensure_vertices(std::uint32_t n);

 private:
  std::uint32_t n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Vertex>> adj_;
};

}  // namespace ccov::graph
