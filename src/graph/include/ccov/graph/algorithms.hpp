#pragma once
/// \file algorithms.hpp
/// Basic graph algorithms needed by the covering machinery and the
/// extension modules (connectivity, BFS distances, cycle recognition,
/// articulation points for tree-of-rings decomposition).

#include <cstdint>
#include <vector>

#include "ccov/graph/graph.hpp"

namespace ccov::graph {

/// Component id per vertex (ids are 0..k-1 in discovery order).
std::vector<std::uint32_t> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// True when g is a single simple cycle through all its vertices.
bool is_cycle_graph(const Graph& g);

/// BFS hop distances from src (UINT32_MAX when unreachable).
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex src);

/// One shortest path between s and t (empty when unreachable); vertices
/// listed s..t inclusive.
std::vector<Vertex> shortest_path(const Graph& g, Vertex s, Vertex t);

/// Articulation (cut) vertices; for a tree of rings these are exactly the
/// ring attachment points.
std::vector<Vertex> articulation_points(const Graph& g);

/// True when every vertex has even degree and the graph is connected on its
/// non-isolated vertices (Eulerian circuit exists). K_n has this for odd n.
bool has_eulerian_circuit(const Graph& g);

}  // namespace ccov::graph
