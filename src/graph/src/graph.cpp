#include "ccov/graph/graph.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ccov::graph {

std::size_t Graph::add_edge(Vertex u, Vertex v) {
  if (u == v) throw std::invalid_argument("Graph: self-loops not supported");
  ensure_vertices(std::max(u, v) + 1);
  edges_.push_back(normalized(Edge{u, v}));
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  return edges_.size() - 1;
}

std::uint32_t Graph::multiplicity(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return 0;
  const auto& nb = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const Vertex other = adj_[u].size() <= adj_[v].size() ? v : u;
  return static_cast<std::uint32_t>(std::count(nb.begin(), nb.end(), other));
}

bool Graph::is_simple() const {
  std::set<std::pair<Vertex, Vertex>> seen;
  for (const Edge& e : edges_)
    if (!seen.insert({e.u, e.v}).second) return false;
  return true;
}

void Graph::ensure_vertices(std::uint32_t n) {
  if (n > n_) {
    n_ = n;
    adj_.resize(n);
  }
}

}  // namespace ccov::graph
