#include "ccov/graph/io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace ccov::graph {

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
  os << "graph " << name << " {\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) os << "  " << v << ";\n";
  for (const Edge& e : g.edges()) os << "  " << e.u << " -- " << e.v << ";\n";
  os << "}\n";
}

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::uint32_t n = 0;
  std::size_t m = 0;
  if (!(is >> n >> m)) throw std::runtime_error("read_edge_list: bad header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    Vertex u, v;
    if (!(is >> u >> v)) throw std::runtime_error("read_edge_list: bad edge");
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace ccov::graph
