#include "ccov/graph/generators.hpp"

#include <stdexcept>

namespace ccov::graph {

Graph cycle_graph(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n >= 3 required");
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph path_graph(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph complete_graph(std::uint32_t n) { return complete_multigraph(n, 1); }

Graph complete_multigraph(std::uint32_t n, std::uint32_t lambda) {
  Graph g(n);
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v)
      for (std::uint32_t k = 0; k < lambda; ++k) g.add_edge(u, v);
  return g;
}

Graph star_graph(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: n >= 2 required");
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid_graph(std::uint32_t rows, std::uint32_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph torus_graph(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("torus_graph: both dimensions >= 3");
  Graph g(rows * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  return g;
}

Graph tree_of_rings_chain(std::uint32_t rings, std::uint32_t ring_size) {
  if (rings == 0 || ring_size < 3)
    throw std::invalid_argument("tree_of_rings_chain: rings >= 1, size >= 3");
  // Each new ring shares exactly one vertex with the previous one.
  const std::uint32_t n = rings * (ring_size - 1) + 1;
  Graph g(n);
  std::uint32_t anchor = 0;
  std::uint32_t next_free = 1;
  for (std::uint32_t k = 0; k < rings; ++k) {
    std::uint32_t prev = anchor;
    for (std::uint32_t i = 1; i < ring_size; ++i) {
      const std::uint32_t cur = next_free++;
      g.add_edge(prev, cur);
      prev = cur;
    }
    g.add_edge(prev, anchor);
    anchor = prev;  // chain: glue the next ring at the last created vertex
  }
  return g;
}

}  // namespace ccov::graph
