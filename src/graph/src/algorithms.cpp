#include "ccov/graph/algorithms.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>

namespace ccov::graph {

namespace {
constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint32_t> comp(n, kUnset);
  std::uint32_t next = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != kUnset) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (Vertex w : g.neighbors(v))
        if (comp[w] == kUnset) {
          comp[w] = next;
          stack.push_back(w);
        }
    }
    ++next;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](std::uint32_t c) { return c == 0; });
}

bool is_cycle_graph(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  if (n < 3 || g.num_edges() != n || !g.is_simple()) return false;
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) != 2) return false;
  return is_connected(g);
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex src) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnset);
  std::queue<Vertex> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (Vertex w : g.neighbors(v))
      if (dist[w] == kUnset) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
  }
  return dist;
}

std::vector<Vertex> shortest_path(const Graph& g, Vertex s, Vertex t) {
  std::vector<Vertex> parent(g.num_vertices(), kUnset);
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  std::queue<Vertex> q;
  seen[s] = 1;
  q.push(s);
  while (!q.empty() && !seen[t]) {
    const Vertex v = q.front();
    q.pop();
    for (Vertex w : g.neighbors(v))
      if (!seen[w]) {
        seen[w] = 1;
        parent[w] = v;
        q.push(w);
      }
  }
  if (!seen[t]) return {};
  std::vector<Vertex> path{t};
  for (Vertex v = t; v != s; v = parent[v]) path.push_back(parent[v]);
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

struct ArtState {
  const Graph& g;
  std::vector<std::uint32_t> disc, low;
  std::vector<std::uint8_t> is_art;
  std::uint32_t timer = 0;

  explicit ArtState(const Graph& gg)
      : g(gg),
        disc(gg.num_vertices(), kUnset),
        low(gg.num_vertices(), 0),
        is_art(gg.num_vertices(), 0) {}

  void dfs(Vertex v, Vertex parent) {
    disc[v] = low[v] = timer++;
    std::uint32_t children = 0;
    bool skipped_parent_edge = false;
    for (Vertex w : g.neighbors(v)) {
      if (w == parent && !skipped_parent_edge) {
        // Skip exactly one copy of the tree edge; a parallel edge back to the
        // parent legitimately lowers low[v].
        skipped_parent_edge = true;
        continue;
      }
      if (disc[w] != kUnset) {
        low[v] = std::min(low[v], disc[w]);
        continue;
      }
      ++children;
      dfs(w, v);
      low[v] = std::min(low[v], low[w]);
      if (parent != kUnset && low[w] >= disc[v]) is_art[v] = 1;
    }
    if (parent == kUnset && children > 1) is_art[v] = 1;
  }
};

}  // namespace

std::vector<Vertex> articulation_points(const Graph& g) {
  ArtState st(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (st.disc[v] == kUnset) st.dfs(v, kUnset);
  std::vector<Vertex> out;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (st.is_art[v]) out.push_back(v);
  return out;
}

bool has_eulerian_circuit(const Graph& g) {
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (g.degree(v) % 2 != 0) return false;
  // Connectivity restricted to non-isolated vertices.
  const auto comp = connected_components(g);
  std::uint32_t used_comp = kUnset;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) continue;
    if (used_comp == kUnset) used_comp = comp[v];
    if (comp[v] != used_comp) return false;
  }
  return true;
}

}  // namespace ccov::graph
