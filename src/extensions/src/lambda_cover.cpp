#include "ccov/extensions/lambda_cover.hpp"

#include <stdexcept>

#include "ccov/covering/construct.hpp"
#include "ccov/graph/generators.hpp"
#include "ccov/ring/routing.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::extensions {

std::uint64_t rho_lambda_lower_bound(std::uint32_t n, std::uint32_t lambda) {
  if (n < 3 || lambda == 0)
    throw std::invalid_argument("rho_lambda_lower_bound: n >= 3, lambda >= 1");
  const std::uint64_t load =
      static_cast<std::uint64_t>(lambda) * ring::all_to_all_min_load(n);
  std::uint64_t lb = util::ceil_div<std::uint64_t>(load, n);
  // Antipodal parity argument (see covering/bounds.hpp): with lambda
  // copies per chord, stepping one ring edge forward changes the antipodal
  // coverage count by a value of parity lambda mod 2, so a constant count
  // lambda*p/2 (required for tightness) is impossible when lambda is odd.
  // The +1 matters only when the capacity bound lambda*p^2/2 is itself an
  // integer, i.e. when p is even (odd p already pays the ceiling).
  if (n % 2 == 0 && lambda % 2 == 1 && (n / 2) % 2 == 0) lb += 1;
  return lb;
}

covering::RingCover build_lambda_cover(std::uint32_t n, std::uint32_t lambda) {
  covering::RingCover base = covering::build_optimal_cover(n);
  covering::RingCover out;
  out.n = n;
  out.cycles.reserve(base.cycles.size() * lambda);
  for (std::uint32_t k = 0; k < lambda; ++k)
    for (const auto& c : base.cycles) out.cycles.push_back(c);
  return out;
}

bool validate_lambda_cover(const covering::RingCover& cover,
                           std::uint32_t lambda) {
  const auto demand = graph::complete_multigraph(cover.n, lambda);
  return covering::validate_cover_against(cover, demand).ok;
}

}  // namespace ccov::extensions
