#include "ccov/extensions/torus_cover.hpp"

#include <set>
#include <stdexcept>

#include "ccov/covering/greedy.hpp"
#include "ccov/graph/graph.hpp"
#include "ccov/ring/ring.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::extensions {

namespace {

using graph::Vertex;

std::uint64_t demand_load_bound(std::uint32_t n, const graph::Graph& demand) {
  const ring::Ring r(n);
  std::set<std::pair<Vertex, Vertex>> distinct;
  for (const auto& e : demand.edges()) distinct.insert({e.u, e.v});
  std::uint64_t load = 0;
  for (const auto& [u, v] : distinct) load += r.dist(u, v);
  return ccov::util::ceil_div<std::uint64_t>(load, n);
}

}  // namespace

TorusCover cover_torus_all_to_all(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("cover_torus_all_to_all: rows, cols >= 3");
  TorusCover tc;
  tc.rows = rows;
  tc.cols = cols;

  // Dimension-ordered routing (r1,c1) -> (r1,c2) -> (r2,c2):
  //  * the row leg projects onto row r1's ring as chord (c1, c2);
  //  * the column leg projects onto column c2's ring as chord (r1, r2).
  std::vector<graph::Graph> row_demand(rows), col_demand(cols);
  for (auto& d : row_demand) d = graph::Graph(cols);
  for (auto& d : col_demand) d = graph::Graph(rows);

  const std::uint32_t n = rows * cols;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const std::uint32_t r1 = a / cols, c1 = a % cols;
      const std::uint32_t r2 = b / cols, c2 = b % cols;
      if (c1 != c2) row_demand[r1].add_edge(c1, c2);
      if (r1 != r2) col_demand[c2].add_edge(r1, r2);
    }
  }

  for (std::uint32_t r = 0; r < rows; ++r) {
    auto cov = covering::greedy_cover_demand(cols, row_demand[r]);
    tc.total_cycles += cov.size();
    tc.lower_bound += demand_load_bound(cols, row_demand[r]);
    tc.row_covers.push_back(std::move(cov));
  }
  for (std::uint32_t c = 0; c < cols; ++c) {
    auto cov = covering::greedy_cover_demand(rows, col_demand[c]);
    tc.total_cycles += cov.size();
    tc.lower_bound += demand_load_bound(rows, col_demand[c]);
    tc.col_covers.push_back(std::move(cov));
  }
  return tc;
}

bool validate_torus_cover(const TorusCover& tc) {
  // Rebuild the projected demands and validate each per-ring cover.
  std::vector<graph::Graph> row_demand(tc.rows), col_demand(tc.cols);
  for (auto& d : row_demand) d = graph::Graph(tc.cols);
  for (auto& d : col_demand) d = graph::Graph(tc.rows);
  const std::uint32_t n = tc.rows * tc.cols;
  std::vector<std::set<std::pair<Vertex, Vertex>>> row_seen(tc.rows),
      col_seen(tc.cols);
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const std::uint32_t r1 = a / tc.cols, c1 = a % tc.cols;
      const std::uint32_t r2 = b / tc.cols, c2 = b % tc.cols;
      if (c1 != c2 && row_seen[r1].insert({std::min(c1, c2),
                                           std::max(c1, c2)}).second)
        row_demand[r1].add_edge(c1, c2);
      if (r1 != r2 && col_seen[c2].insert({std::min(r1, r2),
                                           std::max(r1, r2)}).second)
        col_demand[c2].add_edge(r1, r2);
    }
  for (std::uint32_t r = 0; r < tc.rows; ++r)
    if (!covering::validate_cover_against(tc.row_covers[r], row_demand[r]).ok)
      return false;
  for (std::uint32_t c = 0; c < tc.cols; ++c)
    if (!covering::validate_cover_against(tc.col_covers[c], col_demand[c]).ok)
      return false;
  return true;
}

}  // namespace ccov::extensions
