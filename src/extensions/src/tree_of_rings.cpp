#include "ccov/extensions/tree_of_rings.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "ccov/covering/greedy.hpp"
#include "ccov/graph/algorithms.hpp"
#include "ccov/ring/routing.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::extensions {

namespace {

using graph::Graph;
using graph::Vertex;

}  // namespace

std::vector<RingComponent> decompose_rings(const Graph& g) {
  // Biconnected components via edge-removal of articulation points would be
  // heavy; for trees of rings it suffices to peel rings: find cycles in the
  // graph where non-articulation vertices have degree exactly 2.
  const auto arts = graph::articulation_points(g);
  std::set<Vertex> art_set(arts.begin(), arts.end());

  // Group edges into rings: run a DFS assigning each edge to the cycle it
  // closes. For tree-of-rings graphs each vertex of degree 2 belongs to
  // exactly one ring, and articulation vertices join several.
  std::vector<RingComponent> rings;
  std::set<std::pair<Vertex, Vertex>> used;
  auto norm = [](Vertex a, Vertex b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    for (Vertex t : g.neighbors(s)) {
      if (used.count(norm(s, t))) continue;
      // Trace the ring containing edge (s, t): follow degree-2 vertices;
      // at articulation vertices, the ring continues on the unique unused
      // edge closing back towards s.
      std::vector<Vertex> cyc{s};
      Vertex prev = s;
      Vertex cur = t;
      used.insert(norm(s, t));
      bool closed = false;
      while (cyc.size() <= g.num_vertices()) {
        cyc.push_back(cur);
        Vertex next = cur;
        for (Vertex w : g.neighbors(cur)) {
          if (w == prev) continue;
          if (used.count(norm(cur, w))) continue;
          // Prefer non-articulation continuation; at articulations the
          // correct ring edge is the one whose component leads back to s —
          // for tree-of-rings inputs any unused edge within the same ring
          // works because rings meet only at single vertices.
          next = w;
          if (!art_set.count(w) || w == s) break;
        }
        if (next == cur) break;
        used.insert(norm(cur, next));
        if (next == s) {
          closed = true;
          break;
        }
        prev = cur;
        cur = next;
      }
      if (!closed)
        throw std::invalid_argument(
            "decompose_rings: graph is not a tree of rings");
      rings.push_back(RingComponent{std::move(cyc)});
    }
  }
  return rings;
}

TreeOfRingsCover cover_all_to_all(const Graph& g) {
  if (!graph::is_connected(g))
    throw std::invalid_argument("cover_all_to_all: graph must be connected");
  auto rings = decompose_rings(g);

  // Map each vertex to the rings containing it.
  std::map<Vertex, std::vector<std::size_t>> vertex_rings;
  for (std::size_t k = 0; k < rings.size(); ++k)
    for (Vertex v : rings[k].vertices) vertex_rings[v].push_back(k);

  // Ring adjacency graph over shared (articulation) vertices, used to find
  // the unique ring path for each request.
  const std::size_t R = rings.size();
  std::vector<std::vector<std::pair<std::size_t, Vertex>>> ring_adj(R);
  for (const auto& [v, ks] : vertex_rings)
    for (std::size_t i = 0; i < ks.size(); ++i)
      for (std::size_t j = i + 1; j < ks.size(); ++j) {
        ring_adj[ks[i]].push_back({ks[j], v});
        ring_adj[ks[j]].push_back({ks[i], v});
      }

  // Per-ring demand graphs in local indices.
  std::vector<graph::Graph> demands(R);
  std::vector<std::map<Vertex, std::uint32_t>> local(R);
  for (std::size_t k = 0; k < R; ++k) {
    demands[k] = graph::Graph(
        static_cast<std::uint32_t>(rings[k].vertices.size()));
    for (std::uint32_t i = 0; i < rings[k].vertices.size(); ++i)
      local[k][rings[k].vertices[i]] = i;
  }

  auto ring_path = [&](std::size_t from, std::size_t to) {
    std::vector<std::ptrdiff_t> par(R, -1);
    std::vector<Vertex> via(R, 0);
    std::queue<std::size_t> q;
    std::vector<char> seen(R, 0);
    q.push(from);
    seen[from] = 1;
    while (!q.empty()) {
      auto k = q.front();
      q.pop();
      if (k == to) break;
      for (auto [k2, v] : ring_adj[k])
        if (!seen[k2]) {
          seen[k2] = 1;
          par[k2] = static_cast<std::ptrdiff_t>(k);
          via[k2] = v;
          q.push(k2);
        }
    }
    std::vector<std::pair<std::size_t, Vertex>> path;  // (ring, entry vertex)
    for (std::size_t k = to; k != from;
         k = static_cast<std::size_t>(par[k]))
      path.push_back({k, via[k]});
    std::reverse(path.begin(), path.end());
    return path;
  };

  // Project each request of K_n onto its ring sequence.
  const std::uint32_t n = g.num_vertices();
  TreeOfRingsCover result;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const std::size_t ku = vertex_rings[u].front();
      const std::size_t kv = vertex_rings[v].front();
      Vertex enter = u;
      std::size_t cur = ku;
      if (ku != kv) {
        for (auto [k2, via] : ring_path(ku, kv)) {
          // segment within `cur` from `enter` to the shared vertex `via`
          if (local[cur][enter] != local[cur][via])
            demands[cur].add_edge(local[cur][enter], local[cur][via]);
          enter = via;
          cur = k2;
        }
      }
      if (local[cur][enter] != local[cur][v])
        demands[cur].add_edge(local[cur][enter], local[cur][v]);
      result.total_demand_edges += 1;
    }
  }

  for (std::size_t k = 0; k < R; ++k) {
    const auto nk = static_cast<std::uint32_t>(rings[k].vertices.size());
    covering::RingCover cov = covering::greedy_cover_demand(nk, demands[k]);
    result.total_cycles += cov.size();
    // Load lower bound for this ring's demand. The covering abstraction
    // treats the induced demand as a simple graph (requests sharing a ring
    // segment share the covering chord), so deduplicate before summing.
    const ring::Ring rk(nk);
    std::set<std::pair<Vertex, Vertex>> distinct;
    for (const auto& e : demands[k].edges()) distinct.insert({e.u, e.v});
    std::uint64_t load = 0;
    for (const auto& [u, v] : distinct) load += rk.dist(u, v);
    result.lower_bound += util::ceil_div<std::uint64_t>(load, nk);
    result.ring_covers.push_back(std::move(cov));
  }
  return result;
}

}  // namespace ccov::extensions
