#include "ccov/extensions/general_drc.hpp"

#include <algorithm>
#include <set>

namespace ccov::extensions {

namespace {

using graph::Vertex;

struct Router {
  const graph::Graph& g;
  std::uint64_t budget;
  std::set<std::pair<Vertex, Vertex>> used;  // directed-normalized edges
  std::vector<Path> paths;

  bool edge_free(Vertex u, Vertex v) const {
    return !used.count({std::min(u, v), std::max(u, v)});
  }
  void take(Vertex u, Vertex v) {
    used.insert({std::min(u, v), std::max(u, v)});
  }
  void release(Vertex u, Vertex v) {
    used.erase({std::min(u, v), std::max(u, v)});
  }

  /// DFS over simple paths from cur to target avoiding used edges.
  bool extend(Path& path, Vertex target,
              const std::vector<Request>& requests, std::size_t idx) {
    if (budget == 0) return false;
    --budget;
    const Vertex cur = path.back();
    if (cur == target) {
      paths.push_back(path);
      if (route(requests, idx + 1)) return true;
      paths.pop_back();
      return false;
    }
    for (Vertex w : g.neighbors(cur)) {
      if (!edge_free(cur, w)) continue;
      if (std::find(path.begin(), path.end(), w) != path.end()) continue;
      take(cur, w);
      path.push_back(w);
      if (extend(path, target, requests, idx)) return true;
      path.pop_back();
      release(cur, w);
    }
    return false;
  }

  bool route(const std::vector<Request>& requests, std::size_t idx) {
    if (idx == requests.size()) return true;
    Path path{requests[idx].first};
    return extend(path, requests[idx].second, requests, idx);
  }
};

}  // namespace

std::optional<std::vector<Path>> edge_disjoint_routing(
    const graph::Graph& g, const std::vector<Request>& requests,
    std::uint64_t max_nodes) {
  Router router{g, max_nodes, {}, {}};
  if (!router.route(requests, 0)) return std::nullopt;
  return router.paths;
}

bool satisfies_drc_general(const graph::Graph& g,
                           const std::vector<graph::Vertex>& cycle,
                           std::uint64_t max_nodes) {
  if (cycle.size() < 3) return false;
  std::vector<Request> reqs;
  reqs.reserve(cycle.size());
  for (std::size_t i = 0; i < cycle.size(); ++i)
    reqs.push_back({cycle[i], cycle[(i + 1) % cycle.size()]});
  return edge_disjoint_routing(g, reqs, max_nodes).has_value();
}

}  // namespace ccov::extensions
