#pragma once
/// \file general_drc.hpp
/// DRC on arbitrary physical graphs (the paper's grid/torus extension):
/// does a set of requests admit pairwise edge-disjoint paths? On general
/// graphs this is the edge-disjoint paths problem; the backtracking solver
/// here handles the small cycles (C3/C4/C5) the covering framework uses.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ccov/graph/graph.hpp"

namespace ccov::extensions {

using Request = std::pair<graph::Vertex, graph::Vertex>;
using Path = std::vector<graph::Vertex>;

/// Find pairwise edge-disjoint paths for the requests on g, or nullopt.
/// Exponential in the worst case; `max_nodes` bounds the search.
std::optional<std::vector<Path>> edge_disjoint_routing(
    const graph::Graph& g, const std::vector<Request>& requests,
    std::uint64_t max_nodes = 1'000'000);

/// DRC check for a logical cycle on an arbitrary physical graph: its
/// cyclically consecutive requests must be routable edge-disjointly.
bool satisfies_drc_general(const graph::Graph& g,
                           const std::vector<graph::Vertex>& cycle,
                           std::uint64_t max_nodes = 1'000'000);

}  // namespace ccov::extensions
