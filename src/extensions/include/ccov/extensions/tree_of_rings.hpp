#pragma once
/// \file tree_of_rings.hpp
/// The paper's topology extension: physical networks made of rings glued
/// at articulation vertices ("trees of rings"). Every request follows the
/// unique sequence of rings between its endpoints, inducing a per-ring
/// demand graph which is covered independently with DRC cycles (each ring
/// protects its own sub-networks, exactly the paper's scheme applied
/// ring-by-ring).

#include <cstdint>
#include <vector>

#include "ccov/covering/cover.hpp"
#include "ccov/graph/graph.hpp"

namespace ccov::extensions {

/// One ring of the tree, as the (cyclically ordered) list of global
/// vertex ids around it.
struct RingComponent {
  std::vector<graph::Vertex> vertices;
};

/// Decompose a tree-of-rings graph into its rings (biconnected components,
/// each of which must be a cycle). Throws if a component is not a cycle.
std::vector<RingComponent> decompose_rings(const graph::Graph& g);

struct TreeOfRingsCover {
  /// Per-ring covers, in decompose_rings order; cycles use LOCAL ring
  /// indices (position within RingComponent::vertices).
  std::vector<covering::RingCover> ring_covers;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_demand_edges = 0;
  std::uint64_t lower_bound = 0;  ///< sum of per-ring load lower bounds
};

/// Cover the all-to-all instance on a tree of rings: project every request
/// onto each ring it traverses and cover the projected demands per ring.
TreeOfRingsCover cover_all_to_all(const graph::Graph& g);

}  // namespace ccov::extensions
