#pragma once
/// \file lambda_cover.hpp
/// The paper's first announced extension: DRC-coverings of lambda*K_n
/// (every pair communicates lambda times). Capacity scales linearly, so
/// for odd n taking lambda copies of the optimal K_n covering is exactly
/// optimal; for even n the parity obstruction applies only when lambda is
/// odd, which the lower bound reflects.

#include <cstdint>

#include "ccov/covering/cover.hpp"

namespace ccov::extensions {

/// Lower bound on the number of cycles in a DRC-covering of lambda*K_n:
/// lambda * L(n) / n rounded up, plus 1 for even n with odd lambda and
/// even p = n/2 (the antipodal parity argument survives exactly when
/// lambda is odd, and only binds when lambda*p^2/2 is an integer).
std::uint64_t rho_lambda_lower_bound(std::uint32_t n, std::uint32_t lambda);

/// Construction: lambda relabelled copies of the optimal K_n covering.
/// Optimal for odd n (matches the lower bound); within lambda-1 of the
/// bound for even n.
covering::RingCover build_lambda_cover(std::uint32_t n, std::uint32_t lambda);

/// Validate a cover against the lambda*K_n demand (every chord covered at
/// least lambda times).
bool validate_lambda_cover(const covering::RingCover& cover,
                           std::uint32_t lambda);

}  // namespace ccov::extensions
