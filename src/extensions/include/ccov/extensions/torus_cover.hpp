#pragma once
/// \file torus_cover.hpp
/// The paper's grid/torus extension: cover the all-to-all instance on an
/// R x C torus whose physical links are the row rings and column rings.
/// Requests are routed dimension-ordered (row first, then column), which
/// projects the demand onto per-row and per-column ring instances; each
/// ring instance is covered independently with DRC cycles, giving a
/// survivable design with per-ring loop-back, exactly the paper's scheme
/// lifted to product topologies.

#include <cstdint>
#include <vector>

#include "ccov/covering/cover.hpp"

namespace ccov::extensions {

struct TorusCover {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  /// Row ring covers (local indices 0..cols-1), one per row.
  std::vector<covering::RingCover> row_covers;
  /// Column ring covers (local indices 0..rows-1), one per column.
  std::vector<covering::RingCover> col_covers;
  std::uint64_t total_cycles = 0;
  std::uint64_t lower_bound = 0;  ///< sum of per-ring load bounds
};

/// Cover all-to-all on the R x C torus with dimension-ordered routing.
/// Requires rows, cols >= 3 (each dimension must be a real ring).
TorusCover cover_torus_all_to_all(std::uint32_t rows, std::uint32_t cols);

/// Validate: every per-ring cover must be a valid DRC covering of its
/// projected demand.
bool validate_torus_cover(const TorusCover& tc);

}  // namespace ccov::extensions
