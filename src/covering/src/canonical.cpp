#include "ccov/covering/canonical.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace ccov::covering {

namespace {

std::vector<Cycle> normalized_cycles(const RingCover& cover) {
  std::vector<Cycle> cs;
  cs.reserve(cover.cycles.size());
  for (const Cycle& c : cover.cycles) cs.push_back(canonical(c));
  std::sort(cs.begin(), cs.end());
  return cs;
}

RingCover map_cover(const RingCover& cover,
                    const std::function<Vertex(Vertex)>& f) {
  RingCover out;
  out.n = cover.n;
  out.cycles.reserve(cover.cycles.size());
  for (const Cycle& c : cover.cycles) {
    Cycle m;
    m.reserve(c.size());
    for (Vertex v : c) m.push_back(f(v));
    out.cycles.push_back(std::move(m));
  }
  return out;
}

}  // namespace

RingCover rotate_cover(const RingCover& cover, std::uint32_t shift) {
  const std::uint32_t n = cover.n;
  return map_cover(cover, [n, shift](Vertex v) {
    return static_cast<Vertex>((v + shift) % n);
  });
}

RingCover reflect_cover(const RingCover& cover) {
  const std::uint32_t n = cover.n;
  return map_cover(cover,
                   [n](Vertex v) { return static_cast<Vertex>((n - v) % n); });
}

RingCover canonical_cover(const RingCover& cover) {
  RingCover best;
  best.n = cover.n;
  std::vector<Cycle> best_cycles;
  for (int refl = 0; refl < 2; ++refl) {
    const RingCover base = refl ? reflect_cover(cover) : cover;
    for (std::uint32_t s = 0; s < cover.n; ++s) {
      auto cs = normalized_cycles(rotate_cover(base, s));
      if (best_cycles.empty() || cs < best_cycles) best_cycles = std::move(cs);
    }
  }
  best.cycles = std::move(best_cycles);
  return best;
}

bool covers_isomorphic(const RingCover& a, const RingCover& b) {
  if (a.n != b.n || a.cycles.size() != b.cycles.size()) return false;
  return canonical_cover(a).cycles == canonical_cover(b).cycles;
}

std::size_t orbit_size(const RingCover& cover) {
  std::set<std::vector<Cycle>> images;
  for (int refl = 0; refl < 2; ++refl) {
    const RingCover base = refl ? reflect_cover(cover) : cover;
    for (std::uint32_t s = 0; s < cover.n; ++s)
      images.insert(normalized_cycles(rotate_cover(base, s)));
  }
  return images.size();
}

}  // namespace ccov::covering
