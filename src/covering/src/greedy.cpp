#include "ccov/covering/greedy.hpp"

#include <stdexcept>
#include <string>

#include "ccov/covering/chord_bitset.hpp"
#include "ccov/graph/generators.hpp"
#include "ccov/ring/ring.hpp"

namespace ccov::covering {

namespace {

// The uncovered chords live in a ChordBitset (the same packed
// representation the exact solver uses): membership is a single bit
// probe instead of a std::set<std::pair> lookup, and the
// lexicographically first uncovered chord is a word scan. Candidate
// cycles are built in fixed-capacity SmallCycles, so a full greedy run
// allocates nothing beyond the bitset and the returned cover.

SmallCycle sorted3(Vertex a, Vertex b, Vertex c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return {a, b, c};
}

SmallCycle sorted4(Vertex a, Vertex b, Vertex c, Vertex d) {
  if (a > b) std::swap(a, b);
  if (c > d) std::swap(c, d);
  if (a > c) std::swap(a, c);
  if (b > d) std::swap(b, d);
  if (b > c) std::swap(b, c);
  return {a, b, c, d};
}

int fresh(const ChordBitset& uncovered, const SmallCycle& c) {
  int f = 0;
  for_each_chord(c, [&](Vertex u, Vertex v) { f += uncovered.test(u, v); });
  return f;
}

/// Best C3/C4 through chord (a, b): greedily extend with the vertex adding
/// the most uncovered chords; O(n) per step.
SmallCycle best_cycle_through(const ring::Ring& r, Vertex a, Vertex b,
                              const ChordBitset& uncovered) {
  const std::uint32_t n = r.size();
  SmallCycle best;
  int best_fresh = -1;
  for (Vertex w = 0; w < n; ++w) {
    if (w == a || w == b) continue;
    const SmallCycle tri = sorted3(a, b, w);
    const int f3 = fresh(uncovered, tri);
    if (f3 > best_fresh) {
      best_fresh = f3;
      best = tri;
    }
    // Try upgrading to a quad with a second vertex on the same side of
    // (a, b) as w (keeps (a, b) an edge of the sorted cycle).
    for (Vertex z = w + 1; z < n; ++z) {
      if (z == a || z == b) continue;
      const bool same_ab = (r.cw_dist(a, w) < r.cw_dist(a, b)) ==
                           (r.cw_dist(a, z) < r.cw_dist(a, b));
      if (!same_ab) continue;
      const SmallCycle quad = sorted4(a, b, w, z);
      const int f4 = fresh(uncovered, quad);
      if (f4 > best_fresh) {
        best_fresh = f4;
        best = quad;
      }
    }
  }
  return best;
}

RingCover greedy_impl(std::uint32_t n, ChordBitset uncovered,
                      std::size_t remaining) {
  const ring::Ring r(n);
  RingCover cover;
  cover.n = n;
  Vertex a = 0, b = 0;
  while (remaining > 0 && uncovered.first(a, b)) {
    const SmallCycle c = best_cycle_through(r, a, b, uncovered);
    for_each_chord(c, [&](Vertex u, Vertex v) {
      if (uncovered.test(u, v)) {
        uncovered.clear(u, v);
        --remaining;
      }
    });
    cover.cycles.push_back(c.to_cycle());
  }
  return cover;
}

}  // namespace

RingCover greedy_cover(std::uint32_t n) {
  ChordBitset uncovered(n);
  uncovered.set_all_chords();
  return greedy_impl(n, std::move(uncovered),
                     static_cast<std::size_t>(n) * (n - 1) / 2);
}

RingCover greedy_cover_demand(std::uint32_t n, const graph::Graph& demand) {
  ChordBitset uncovered(n);
  std::size_t remaining = 0;
  for (const auto& e : demand.edges()) {
    if (e.u >= n || e.v >= n)
      throw std::invalid_argument(
          "greedy_cover_demand: demand vertex out of range for ring size " +
          std::to_string(n));
    const Vertex u = e.u < e.v ? e.u : e.v;
    const Vertex v = e.u < e.v ? e.v : e.u;
    if (!uncovered.test(u, v)) {
      uncovered.set(u, v);
      ++remaining;
    }
  }
  return greedy_impl(n, std::move(uncovered), remaining);
}

}  // namespace ccov::covering
