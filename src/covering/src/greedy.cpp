#include "ccov/covering/greedy.hpp"

#include <algorithm>
#include <set>

#include "ccov/graph/generators.hpp"
#include "ccov/ring/ring.hpp"

namespace ccov::covering {

namespace {

using ChordSet = std::set<std::pair<Vertex, Vertex>>;

std::pair<Vertex, Vertex> norm_chord(Vertex a, Vertex b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Best C3/C4 through chord (a, b): greedily extend with the vertex adding
/// the most uncovered chords; O(n) per step.
Cycle best_cycle_through(const ring::Ring& r, Vertex a, Vertex b,
                         const ChordSet& uncovered) {
  const std::uint32_t n = r.size();
  auto fresh = [&](const Cycle& c) {
    int f = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
      f += uncovered.count(norm_chord(c[i], c[(i + 1) % c.size()])) ? 1 : 0;
    return f;
  };
  Cycle best;
  int best_fresh = -1;
  for (Vertex w = 0; w < n; ++w) {
    if (w == a || w == b) continue;
    Cycle tri{a, b, w};
    std::sort(tri.begin(), tri.end());
    const int f3 = fresh(tri);
    if (f3 > best_fresh) {
      best_fresh = f3;
      best = tri;
    }
    // Try upgrading to a quad with a second vertex on the same side of
    // (a, b) as w (keeps (a, b) an edge of the sorted cycle).
    for (Vertex z = w + 1; z < n; ++z) {
      if (z == a || z == b) continue;
      const bool same_ab = (r.cw_dist(a, w) < r.cw_dist(a, b)) ==
                           (r.cw_dist(a, z) < r.cw_dist(a, b));
      if (!same_ab) continue;
      Cycle quad{a, b, w, z};
      std::sort(quad.begin(), quad.end());
      const int f4 = fresh(quad);
      if (f4 > best_fresh) {
        best_fresh = f4;
        best = quad;
      }
    }
  }
  return best;
}

RingCover greedy_impl(std::uint32_t n, ChordSet uncovered) {
  const ring::Ring r(n);
  RingCover cover;
  cover.n = n;
  while (!uncovered.empty()) {
    const auto [a, b] = *uncovered.begin();
    Cycle c = best_cycle_through(r, a, b, uncovered);
    for (std::size_t i = 0; i < c.size(); ++i)
      uncovered.erase(norm_chord(c[i], c[(i + 1) % c.size()]));
    cover.cycles.push_back(std::move(c));
  }
  return cover;
}

}  // namespace

RingCover greedy_cover(std::uint32_t n) {
  ChordSet uncovered;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) uncovered.insert({a, b});
  return greedy_impl(n, std::move(uncovered));
}

RingCover greedy_cover_demand(std::uint32_t n, const graph::Graph& demand) {
  ChordSet uncovered;
  for (const auto& e : demand.edges()) uncovered.insert(norm_chord(e.u, e.v));
  return greedy_impl(n, std::move(uncovered));
}

}  // namespace ccov::covering
