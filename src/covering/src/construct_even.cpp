#include <algorithm>
#include <stdexcept>

#include "ccov/covering/construct.hpp"
#include "ccov/covering/drc.hpp"

namespace ccov::covering {

namespace {

/// Relabel old vertex labels after inserting two vertices at old edges
/// eA < eB: the new labels of the inserted vertices are eA+1 and eB+2.
Vertex relabel_after_insert(Vertex old, std::uint32_t eA, std::uint32_t eB) {
  if (old <= eA) return old;
  if (old <= eB) return old + 1;
  return old + 2;
}

/// The circularly ordered cycle on a vertex set is unique: sort ascending.
Cycle sorted_cycle(std::vector<Vertex> vs) {
  std::sort(vs.begin(), vs.end());
  return vs;
}

/// Hand-verified optimal base coverings.
RingCover base4() {
  // The covering from the paper's in-text example (0-indexed):
  // one C4 (0,1,2,3) plus triangles (0,1,3) and (0,2,3).
  return RingCover{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}};
}

RingCover base6() {
  // rho(6) = 5 with the Theorem 2 composition 2 C3 + 3 C4.
  return RingCover{
      6, {{0, 2, 4}, {1, 3, 5}, {0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 4, 5}}};
}

RingCover base10() {
  // Found by the exact solver (solve_with_budget(10, 13), search exhausted):
  // rho(10) = 13 with the Theorem 2 composition 2 C3 + 11 C4.
  return RingCover{10,
                   {{0, 1, 2, 5},
                    {0, 2, 3, 6},
                    {0, 3, 4, 7},
                    {0, 4, 5, 8},
                    {0, 1, 5, 9},
                    {1, 3, 5, 7},
                    {1, 4, 6, 8},
                    {1, 6, 7, 9},
                    {2, 4, 8, 9},
                    {2, 6, 7, 8},
                    {2, 3, 7},
                    {3, 8, 9},
                    {4, 5, 6, 9}}};
}

/// p-even insertion step: K_{2p-2} -> K_{2p} with p even, adding exactly
/// rho(2p) - rho(2p-2) = p cycles.
///
/// Two new vertices u, v are inserted at antipodal cuts. Order-preserving
/// relabelling keeps every old cycle circularly ordered (hence DRC) and
/// covering all old chords. The new chords are covered by p-2 "standard"
/// quads (a_i, v, b_i, u) pairing the two sides, plus two triangles
/// handling the leftover side vertices; both triangles contain the edge
/// u-v, which is therefore covered twice. Used for n = 8 (from K_6) and
/// n = 12 (from K_10): together with the bases this realises Theorem 2's
/// optimal values and compositions for every even n <= 12.
void even_step(RingCover& cover, std::uint32_t m) {
  const Vertex p = m / 2;
  const std::uint32_t eA = p - 2;  // v inserted here -> label p-1
  const std::uint32_t eB = m - 3;  // u inserted here -> label 2p-1
  for (Cycle& c : cover.cycles)
    for (Vertex& x : c) x = relabel_after_insert(x, eA, eB);
  const Vertex v = p - 1;
  const Vertex u = static_cast<Vertex>(m - 1);

  for (Vertex i = 0; i + 3 <= p; ++i)  // i = 0..p-3
    cover.cycles.push_back({i, v, static_cast<Vertex>(p + i), u});
  cover.cycles.push_back(sorted_cycle({static_cast<Vertex>(p - 2), v, u}));
  cover.cycles.push_back(sorted_cycle({v, static_cast<Vertex>(m - 2), u}));
  cover.n = m;
}

/// General valid covering for even n = 2p (used for n >= 14):
///   - p antipodal triangles (x, x+1, x+p), x in [0, p-1], covering every
///     antipodal chord plus half of the distance-1 and distance-(p-1)
///     chords;
///   - p quads (a, a+1, a+p, a+p+1), a in [p, 2p-1], closing the other
///     half of distances 1 and p-1;
///   - full pair-quad families Q(x, d) = (x, x+d, x+p, x+p+d) for every
///     remaining distance class pair {d, p-d} (self-paired class p/2 needs
///     only p/2 quads).
///
/// Size: (p^2+p)/2 = rho(n) + floor((p-1)/2) cycles — valid for every even
/// n but additively above the optimum. Closing this gap constructively for
/// all even n is the one part of Theorem 2 this library reproduces exactly
/// only for n <= 12 (where the exact solver certifies the theorem); see
/// EXPERIMENTS.md for the measured gap.
RingCover fallback_even(std::uint32_t n) {
  const Vertex p = n / 2;
  RingCover cover;
  cover.n = n;
  auto at = [n](std::uint32_t v) { return static_cast<Vertex>(v % n); };
  for (Vertex x = 0; x < p; ++x)
    cover.cycles.push_back(sorted_cycle({at(x), at(x + 1), at(x + p)}));
  for (Vertex a = p; a < 2 * p; ++a)
    cover.cycles.push_back(
        sorted_cycle({at(a), at(a + 1), at(a + p), at(a + p + 1)}));
  for (Vertex d = 2; d < p - d; ++d)
    for (Vertex x = 0; x < p; ++x)
      cover.cycles.push_back(
          sorted_cycle({at(x), at(x + d), at(x + p), at(x + p + d)}));
  if (p % 2 == 0 && p / 2 >= 2)
    for (Vertex x = 0; x < p / 2; ++x)
      cover.cycles.push_back(
          sorted_cycle({at(x), at(x + p / 2), at(x + p), at(x + p + p / 2)}));
  return cover;
}

}  // namespace

RingCover construct_even_cover(std::uint32_t n) {
  if (n < 4 || n % 2 == 1)
    throw std::invalid_argument("construct_even_cover: even n >= 4 required");
  if (n == 4) return base4();
  if (n == 6) return base6();
  if (n == 10) return base10();
  if (n == 8) {
    RingCover cover = base6();
    even_step(cover, 8);
    return cover;
  }
  if (n == 12) {
    RingCover cover = base10();
    even_step(cover, 12);
    return cover;
  }
  return fallback_even(n);
}

}  // namespace ccov::covering
