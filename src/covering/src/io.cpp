#include "ccov/covering/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccov::covering {

void write_cover(std::ostream& os, const RingCover& cover) {
  os << "drc-cover v1\n";
  os << "n " << cover.n << "\n";
  os << "cycles " << cover.cycles.size() << "\n";
  for (const Cycle& c : cover.cycles) {
    os << c.size();
    for (Vertex v : c) os << ' ' << v;
    os << '\n';
  }
}

RingCover read_cover(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "drc-cover" || version != "v1")
    throw std::runtime_error("read_cover: bad header");
  std::string key;
  RingCover cover;
  std::size_t count = 0;
  if (!(is >> key >> cover.n) || key != "n")
    throw std::runtime_error("read_cover: missing ring size");
  if (!(is >> key >> count) || key != "cycles")
    throw std::runtime_error("read_cover: missing cycle count");
  cover.cycles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t k = 0;
    if (!(is >> k) || k < 3)
      throw std::runtime_error("read_cover: bad cycle length");
    Cycle c(k);
    for (std::size_t j = 0; j < k; ++j)
      if (!(is >> c[j]))
        throw std::runtime_error("read_cover: truncated cycle");
    cover.cycles.push_back(std::move(c));
  }
  return cover;
}

void save_cover(const std::string& path, const RingCover& cover) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_cover: cannot open " + path);
  write_cover(out, cover);
  if (!out) throw std::runtime_error("save_cover: write failed " + path);
}

RingCover load_cover(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_cover: cannot open " + path);
  return read_cover(in);
}

}  // namespace ccov::covering
