#include "ccov/covering/bounds.hpp"

#include <stdexcept>

#include "ccov/ring/routing.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::covering {

std::uint64_t rho(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("rho: n >= 3 required");
  const std::uint64_t N = n;
  if (n % 2 == 1) {
    const std::uint64_t p = (N - 1) / 2;
    return p * (p + 1) / 2;
  }
  const std::uint64_t p = N / 2;
  return (p * p + 1 + 1) / 2;  // ceil((p^2+1)/2)
}

std::uint64_t capacity_lower_bound(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("capacity_lower_bound: n >= 3");
  return util::ceil_div<std::uint64_t>(ring::all_to_all_min_load(n), n);
}

std::uint64_t parity_lower_bound(std::uint32_t n) {
  const std::uint64_t cap = capacity_lower_bound(n);
  if (n % 2 == 1) return cap;
  const std::uint64_t p = static_cast<std::uint64_t>(n) / 2;
  // Tightness is impossible for even n (see header), so the bound is
  // floor(p^2/2) + 1, which equals ceil((p^2+1)/2) for both parities of p.
  return p * p / 2 + 1;
}

Composition theorem_composition(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("theorem_composition: n >= 3");
  Composition comp;
  const std::uint64_t N = n;
  if (n % 2 == 1) {  // Theorem 1: p C3 + p(p-1)/2 C4
    const std::uint64_t p = (N - 1) / 2;
    comp.c3 = p;
    comp.c4 = p * (p - 1) / 2;
    return comp;
  }
  if (n % 4 == 0) {  // Theorem 2, n = 4q: 4 C3 + 2q^2-3 C4
    const std::uint64_t q = N / 4;
    if (n < 8) throw std::invalid_argument("theorem_composition: even n >= 6");
    comp.c3 = 4;
    comp.c4 = 2 * q * q - 3;
    return comp;
  }
  // Theorem 2, n = 4q+2: 2 C3 + 2q^2+2q-1 C4
  const std::uint64_t q = (N - 2) / 4;
  if (n < 6) throw std::invalid_argument("theorem_composition: even n >= 6");
  comp.c3 = 2;
  comp.c4 = 2 * q * q + 2 * q - 1;
  return comp;
}

}  // namespace ccov::covering
