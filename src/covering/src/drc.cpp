#include "ccov/covering/drc.hpp"

#include <algorithm>

#include "ccov/ring/tiling.hpp"

namespace ccov::covering {

namespace {

/// Sum of forward (clockwise) gaps along the cycle; the cycle is clockwise
/// circularly ordered iff this equals n (the walk winds exactly once).
std::uint64_t forward_gap_sum(const ring::Ring& r, const Cycle& c) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Vertex u = c[i];
    const Vertex v = c[(i + 1) % c.size()];
    if (u == v) return 0;  // invalid cycle; reject
    sum += r.cw_dist(u, v);
  }
  return sum;
}

}  // namespace

bool is_circularly_ordered(const ring::Ring& r, const Cycle& c) {
  if (!is_valid_cycle(c, r.size())) return false;
  if (forward_gap_sum(r, c) == r.size()) return true;
  Cycle rev(c.rbegin(), c.rend());
  return forward_gap_sum(r, rev) == r.size();
}

std::optional<std::vector<ring::Arc>> drc_route(const ring::Ring& r,
                                                const Cycle& c) {
  if (!is_valid_cycle(c, r.size())) return std::nullopt;
  Cycle seq = c;
  if (forward_gap_sum(r, seq) != r.size()) {
    std::reverse(seq.begin(), seq.end());
    if (forward_gap_sum(r, seq) != r.size()) return std::nullopt;
  }
  std::vector<ring::Arc> arcs;
  arcs.reserve(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Vertex u = seq[i];
    const Vertex v = seq[(i + 1) % seq.size()];
    arcs.push_back(ring::Arc{u, r.cw_dist(u, v)});
  }
  return arcs;
}

bool satisfies_drc_bruteforce(const ring::Ring& r, const Cycle& c) {
  if (!is_valid_cycle(c, r.size())) return false;
  const std::size_t k = c.size();
  // Each logical edge picks the clockwise (bit 0) or counterclockwise
  // (bit 1) arc; check all 2^k assignments for pairwise disjointness.
  for (std::uint64_t mask = 0; mask < (1ULL << k); ++mask) {
    std::vector<ring::Arc> arcs;
    arcs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const Vertex u = c[i];
      const Vertex v = c[(i + 1) % k];
      const std::uint32_t d = r.cw_dist(u, v);
      arcs.push_back((mask >> i) & 1 ? ring::Arc{v, r.size() - d}
                                     : ring::Arc{u, d});
    }
    if (ring::max_load(r, arcs) <= 1) return true;
  }
  return false;
}

}  // namespace ccov::covering
