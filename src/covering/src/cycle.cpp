#include "ccov/covering/cycle.hpp"

#include <algorithm>
#include <set>

namespace ccov::covering {

bool is_valid_cycle(const Cycle& c, std::uint32_t n) {
  if (c.size() < 3) return false;
  std::set<Vertex> seen;
  for (Vertex v : c) {
    if (v >= n) return false;
    if (!seen.insert(v).second) return false;
  }
  return true;
}

std::vector<std::pair<Vertex, Vertex>> cycle_chords(const Cycle& c) {
  std::vector<std::pair<Vertex, Vertex>> out;
  out.reserve(c.size());
  for_each_chord(c, [&](Vertex u, Vertex v) { out.emplace_back(u, v); });
  return out;
}

Cycle canonical(const Cycle& c) {
  if (c.empty()) return c;
  Cycle best;
  Cycle cur = c;
  for (int rev = 0; rev < 2; ++rev) {
    for (std::size_t s = 0; s < cur.size(); ++s) {
      Cycle rot(cur.size());
      for (std::size_t i = 0; i < cur.size(); ++i)
        rot[i] = cur[(s + i) % cur.size()];
      if (best.empty() || rot < best) best = rot;
    }
    std::reverse(cur.begin(), cur.end());
  }
  return best;
}

std::string to_string(const Cycle& c) {
  std::string s = "(";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) s += ' ';
    s += std::to_string(c[i]);
  }
  s += ')';
  return s;
}

}  // namespace ccov::covering
