#include "ccov/covering/cover.hpp"

#include <algorithm>
#include <map>

#include "ccov/covering/drc.hpp"
#include "ccov/util/ints.hpp"

namespace ccov::covering {

std::vector<std::size_t> composition(const RingCover& cover) {
  std::size_t maxlen = 0;
  for (const Cycle& c : cover.cycles) maxlen = std::max(maxlen, c.size());
  std::vector<std::size_t> comp(maxlen + 1, 0);
  for (const Cycle& c : cover.cycles) comp[c.size()] += 1;
  return comp;
}

std::size_t count_c3(const RingCover& cover) {
  return static_cast<std::size_t>(
      std::count_if(cover.cycles.begin(), cover.cycles.end(),
                    [](const Cycle& c) { return c.size() == 3; }));
}

std::size_t count_c4(const RingCover& cover) {
  return static_cast<std::size_t>(
      std::count_if(cover.cycles.begin(), cover.cycles.end(),
                    [](const Cycle& c) { return c.size() == 4; }));
}

namespace {

ValidationReport validate_impl(const RingCover& cover,
                               const std::map<std::pair<Vertex, Vertex>,
                                              std::uint32_t>& demand) {
  ValidationReport rep;
  if (cover.n < 3) {
    rep.error = "ring size must be >= 3";
    return rep;
  }
  const ring::Ring r(cover.n);

  std::map<std::pair<Vertex, Vertex>, std::uint32_t> covered;
  for (const Cycle& c : cover.cycles) {
    if (!is_valid_cycle(c, cover.n)) {
      rep.error = "structurally invalid cycle " + to_string(c);
      return rep;
    }
    if (!satisfies_drc(r, c)) {
      rep.non_drc_cycles += 1;
      if (rep.error.empty())
        rep.error = "cycle " + to_string(c) + " violates the DRC";
      continue;
    }
    for_each_chord(c, [&](Vertex u, Vertex v) { covered[{u, v}] += 1; });
  }
  if (rep.non_drc_cycles > 0) return rep;

  for (const auto& [chord, mult] : demand) {
    const auto it = covered.find(chord);
    const std::uint32_t have = it == covered.end() ? 0 : it->second;
    if (have < mult) {
      rep.uncovered_chords += mult - have;
      if (rep.error.empty())
        rep.error = "chord (" + std::to_string(chord.first) + "," +
                    std::to_string(chord.second) + ") covered " +
                    std::to_string(have) + " < " + std::to_string(mult) +
                    " times";
    } else {
      rep.duplicate_coverage += have - mult;
    }
  }
  // Coverage of chords outside the demand also counts as duplicate work.
  for (const auto& [chord, cnt] : covered)
    if (demand.find(chord) == demand.end()) rep.duplicate_coverage += cnt;

  rep.ok = rep.uncovered_chords == 0;
  if (rep.ok) rep.error.clear();
  return rep;
}

}  // namespace

ValidationReport validate_cover(const RingCover& cover) {
  std::map<std::pair<Vertex, Vertex>, std::uint32_t> demand;
  for (Vertex u = 0; u < cover.n; ++u)
    for (Vertex v = u + 1; v < cover.n; ++v) demand[{u, v}] = 1;
  return validate_impl(cover, demand);
}

ValidationReport validate_cover_against(const RingCover& cover,
                                        const graph::Graph& demand) {
  std::map<std::pair<Vertex, Vertex>, std::uint32_t> d;
  for (const auto& e : demand.edges()) d[{e.u, e.v}] += 1;
  return validate_impl(cover, d);
}

std::string to_string(const RingCover& cover) {
  std::string s;
  for (const Cycle& c : cover.cycles) s += to_string(c);
  return s;
}

std::string summary(const RingCover& cover) {
  const auto rep = validate_cover(cover);
  std::string s = "n=" + std::to_string(cover.n) + ": " +
                  std::to_string(cover.size()) + " cycles (" +
                  std::to_string(count_c3(cover)) + " C3, " +
                  std::to_string(count_c4(cover)) + " C4), " +
                  (rep.ok ? "valid" : "INVALID: " + rep.error);
  return s;
}

}  // namespace ccov::covering
