#include "ccov/covering/solver.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/ring/ring.hpp"
#include "ccov/util/ints.hpp"
#include "ccov/util/thread_pool.hpp"

namespace ccov::covering {

namespace {

struct Search {
  std::uint32_t n;
  ring::Ring r;
  SolverOptions opts;
  std::uint64_t nodes = 0;
  bool node_budget_hit = false;

  // Chord (a, b), a < b, indexed as a*n + b. covered[] counts coverage.
  std::vector<std::uint8_t> covered;
  std::uint64_t remaining_load = 0;  // sum of minor distances of uncovered
  std::size_t uncovered_count = 0;
  std::vector<Cycle> chosen;
  std::vector<Cycle> best;
  bool found = false;

  explicit Search(std::uint32_t nn, const SolverOptions& o)
      : n(nn), r(nn), opts(o), covered(static_cast<std::size_t>(nn) * nn, 0) {
    for (Vertex a = 0; a < n; ++a)
      for (Vertex b = a + 1; b < n; ++b) {
        remaining_load += r.dist(a, b);
        ++uncovered_count;
      }
  }

  std::size_t idx(Vertex a, Vertex b) const {
    return static_cast<std::size_t>(a) * n + b;
  }

  void apply(const Cycle& c, int delta) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      Vertex a = c[i], b = c[(i + 1) % c.size()];
      if (a > b) std::swap(a, b);
      std::uint8_t& cnt = covered[idx(a, b)];
      if (delta > 0) {
        if (cnt == 0) {
          remaining_load -= r.dist(a, b);
          --uncovered_count;
        }
        ++cnt;
      } else {
        --cnt;
        if (cnt == 0) {
          remaining_load += r.dist(a, b);
          ++uncovered_count;
        }
      }
    }
  }

  /// First uncovered chord in lexicographic order.
  bool first_uncovered(Vertex& a, Vertex& b) const {
    for (Vertex x = 0; x < n; ++x)
      for (Vertex y = x + 1; y < n; ++y)
        if (covered[idx(x, y)] == 0) {
          a = x;
          b = y;
          return true;
        }
    return false;
  }

  /// Candidate circularly ordered cycles (sizes 3..max_cycle_len) that
  /// contain chord (a, b) as an edge. A circular cycle is determined by its
  /// vertex set; (a, b) is an edge iff one open arc between them holds no
  /// other chosen vertex. We enumerate subsets of each open arc.
  std::vector<Cycle> candidates(Vertex a, Vertex b) const {
    std::vector<Cycle> out;
    // Vertices strictly inside the cw arc a->b and b->a respectively.
    std::vector<Vertex> in_ab, in_ba;
    for (Vertex w = 0; w < n; ++w) {
      if (w == a || w == b) continue;
      (r.cw_dist(a, w) < r.cw_dist(a, b) ? in_ab : in_ba).push_back(w);
    }
    auto emit = [&](const std::vector<Vertex>& side) {
      // pick 1..(max_cycle_len-2) extra vertices, all from one side
      const std::uint32_t extra_max = opts.max_cycle_len - 2;
      for (std::size_t i = 0; i < side.size(); ++i) {
        out.push_back(sorted3(a, b, side[i]));
        if (extra_max >= 2)
          for (std::size_t j = i + 1; j < side.size(); ++j)
            out.push_back(sorted4(a, b, side[i], side[j]));
      }
    };
    emit(in_ab);
    emit(in_ba);
    // Deduplicate triangles (emitted from both sides).
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    // Prefer cycles covering many uncovered chords.
    std::stable_sort(out.begin(), out.end(),
                     [&](const Cycle& x, const Cycle& y) {
                       return fresh(x) > fresh(y);
                     });
    return out;
  }

  Cycle sorted3(Vertex a, Vertex b, Vertex c) const {
    Cycle v{a, b, c};
    std::sort(v.begin(), v.end());
    return v;
  }
  Cycle sorted4(Vertex a, Vertex b, Vertex c, Vertex d) const {
    Cycle v{a, b, c, d};
    std::sort(v.begin(), v.end());
    return v;
  }

  int fresh(const Cycle& c) const {
    int f = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      Vertex a = c[i], b = c[(i + 1) % c.size()];
      if (a > b) std::swap(a, b);
      f += covered[idx(a, b)] == 0 ? 1 : 0;
    }
    return f;
  }

  bool dfs(std::uint64_t budget) {
    if (++nodes > opts.max_nodes) {
      node_budget_hit = true;
      return false;
    }
    Vertex a, b;
    if (!first_uncovered(a, b)) {
      best = chosen;
      found = true;
      return true;
    }
    if (budget == 0) return false;
    // Capacity prune: each further cycle supplies exactly n units of arc
    // length, every uncovered chord costs at least its minor distance.
    if (opts.use_capacity_prune &&
        util::ceil_div<std::uint64_t>(remaining_load, n) > budget)
      return false;
    for (const Cycle& c : candidates(a, b)) {
      apply(c, +1);
      chosen.push_back(c);
      if (dfs(budget - 1)) return true;
      chosen.pop_back();
      apply(c, -1);
      if (node_budget_hit) return false;
    }
    return false;
  }
};

}  // namespace

SolverResult solve_with_budget(std::uint32_t n, std::uint64_t budget,
                               const SolverOptions& opts) {
  Search s(n, opts);
  SolverResult res;
  const bool ok = s.dfs(budget);
  res.found = ok;
  res.nodes = s.nodes;
  res.exhausted = !s.node_budget_hit;
  if (ok) res.cover = RingCover{n, s.best};
  return res;
}

SolverResult solve_with_budget_parallel(std::uint32_t n, std::uint64_t budget,
                                        const SolverOptions& opts,
                                        std::size_t threads) {
  // Root candidates: every cycle through the lexicographically first chord
  // (0, 1). Each becomes an independent subtree; the dihedral symmetry of
  // the empty state is broken the same way the serial search breaks it.
  Search root(n, opts);
  Vertex a = 0, b = 0;
  SolverResult res;
  if (!root.first_uncovered(a, b)) {
    res.found = true;
    res.exhausted = true;
    res.cover = RingCover{n, {}};
    return res;
  }
  if (budget == 0) {
    res.exhausted = true;
    return res;
  }
  const std::vector<Cycle> roots = root.candidates(a, b);

  std::mutex mu;
  std::atomic<bool> found{false};
  bool all_exhausted = true;
  std::uint64_t total_nodes = 0;
  RingCover witness;

  util::ThreadPool pool(threads);
  util::parallel_for(pool, 0, roots.size(), [&](std::size_t i) {
    if (found.load(std::memory_order_relaxed)) return;
    Search s(n, opts);
    s.apply(roots[i], +1);
    s.chosen.push_back(roots[i]);
    const bool ok = s.dfs(budget - 1);
    std::lock_guard lk(mu);
    total_nodes += s.nodes;
    if (s.node_budget_hit) all_exhausted = false;
    if (ok && !found.exchange(true)) witness = RingCover{n, s.best};
  });

  res.found = found.load();
  res.nodes = total_nodes;
  res.exhausted = res.found || all_exhausted;
  if (res.found) res.cover = std::move(witness);
  return res;
}

std::optional<std::pair<std::uint64_t, RingCover>> solve_minimum(
    std::uint32_t n, const SolverOptions& opts) {
  // Start from the construction (an upper bound) and push downward.
  RingCover ub = build_optimal_cover(n);
  std::uint64_t best = ub.size();
  RingCover witness = ub;
  while (best > 1) {
    SolverResult res = solve_with_budget(n, best - 1, opts);
    if (res.found) {
      best = res.cover.size();
      witness = res.cover;
      continue;
    }
    if (!res.exhausted) return std::nullopt;  // inconclusive
    break;
  }
  return std::make_pair(best, witness);
}

}  // namespace ccov::covering
