#include "ccov/covering/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <vector>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/chord_bitset.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/ring/ring.hpp"
#include "ccov/util/ints.hpp"
#include "ccov/util/thread_pool.hpp"

namespace ccov::covering {

namespace {

/// Shared node pool for the parallel search. Workers reserve chunks so the
/// hot path touches the atomic once every kNodeChunk nodes instead of once
/// per node, and return unused grants when their subtree completes, so the
/// total node spend across all workers never exceeds the configured budget
/// (the old per-worker budgets could overshoot by a factor of the root
/// fan-out).
struct SharedNodeBudget {
  explicit SharedNodeBudget(std::uint64_t total) : remaining(total) {}

  std::atomic<std::uint64_t> remaining;

  std::uint64_t take(std::uint64_t want) {
    std::uint64_t cur = remaining.load(std::memory_order_relaxed);
    while (cur != 0) {
      const std::uint64_t grant = cur < want ? cur : want;
      if (remaining.compare_exchange_weak(cur, cur - grant,
                                          std::memory_order_relaxed))
        return grant;
    }
    return 0;
  }

  void give_back(std::uint64_t unused) {
    if (unused) remaining.fetch_add(unused, std::memory_order_relaxed);
  }
};

constexpr std::uint64_t kNodeChunk = 4096;
constexpr std::uint64_t kCancelCheckMask = 1023;  // check every 1024 nodes
/// Deadline/cancel-token poll cadence: every 4096 nodes, amortizing the
/// clock read to nothing. The masked test itself runs on every node even
/// when both controls are unset, so arming them never changes which
/// nodes a non-interrupted search visits — the golden node counts stay
/// byte-identical.
constexpr std::uint64_t kInterruptCheckMask = 4095;
constexpr std::size_t kNoWinner = std::numeric_limits<std::size_t>::max();

struct Search {
  std::uint32_t n;
  ring::Ring r;
  SolverOptions opts;

  // Chord (a, b), a < b, indexed as a*n + b. covered[] counts coverage;
  // the bitset mirrors "count == 0" so the lexicographically first
  // uncovered chord is a countr_zero word scan instead of an O(n^2)
  // rescan, and freshness tests are single bit probes.
  std::vector<std::uint8_t> covered;
  ChordBitset uncovered;
  std::uint64_t remaining_load = 0;  // sum of minor distances of uncovered

  std::uint64_t nodes = 0;
  bool node_budget_hit = false;
  bool cancelled = false;     // a lower-index parallel root already won
  bool deadline_hit = false;  // opts.deadline expired mid-search
  bool cancel_hit = false;    // *opts.cancel fired mid-search
  std::vector<SmallCycle> chosen;
  std::vector<Cycle> best;
  bool found = false;

  // Parallel wiring; all null/unused in the serial search.
  SharedNodeBudget* shared_budget = nullptr;
  std::uint64_t grant = 0;  // nodes pre-reserved from shared_budget
  const std::atomic<std::size_t>* winner = nullptr;
  std::size_t root_index = 0;

  // Per-depth scratch. Candidates are generated into gen[] in
  // lexicographic order, then stable-bucketed by freshness into
  // ordered[]. prepare() sizes the arena for the whole search up front,
  // so the steady-state DFS performs no allocation and references into
  // the arena are never invalidated by deeper levels.
  struct DepthScratch {
    std::vector<SmallCycle> gen;
    std::vector<std::uint8_t> fresh;
    std::vector<SmallCycle> ordered;
  };
  std::vector<DepthScratch> arena;

  explicit Search(std::uint32_t nn, const SolverOptions& o)
      : n(nn),
        r(nn),
        opts(o),
        covered(static_cast<std::size_t>(nn) * nn, 0),
        uncovered(nn) {
    uncovered.set_all_chords();
    for (Vertex a = 0; a < n; ++a)
      for (Vertex b = a + 1; b < n; ++b) remaining_load += r.dist(a, b);
  }

  /// Largest possible candidate list: n-2 triangles plus quads whose two
  /// extra vertices share one of the two open arcs.
  std::size_t max_candidates() const {
    const std::size_t m = n - 2;
    return m + m * (m - 1) / 2;
  }

  /// Preallocate every per-depth scratch buffer and the chosen stack for
  /// a search of at most `budget` cycles. Each chosen cycle covers at
  /// least one new chord (every candidate contains the branching chord),
  /// so the DFS depth is also bounded by the chord count.
  void prepare(std::uint64_t budget) {
    const std::uint64_t chords =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    const std::size_t depth_cap =
        static_cast<std::size_t>(budget < chords ? budget : chords);
    chosen.reserve(depth_cap);
    arena.resize(depth_cap);
    const std::size_t cap = max_candidates();
    for (DepthScratch& s : arena) {
      if (s.gen.capacity() == 0) {
        s.gen.reserve(cap);
        s.fresh.reserve(cap);
        s.ordered.reserve(cap);
      }
    }
  }

  void apply(const SmallCycle& c, int delta) {
    for_each_chord(c, [&](Vertex a, Vertex b) {
      std::uint8_t& cnt = covered[uncovered.index(a, b)];
      if (delta > 0) {
        if (cnt == 0) {
          remaining_load -= r.dist(a, b);
          uncovered.clear(a, b);
        }
        ++cnt;
      } else {
        --cnt;
        if (cnt == 0) {
          remaining_load += r.dist(a, b);
          uncovered.set(a, b);
        }
      }
    });
  }

  int fresh(const SmallCycle& c) const {
    int f = 0;
    for_each_chord(c, [&](Vertex a, Vertex b) { f += uncovered.test(a, b); });
    return f;
  }

  /// Candidate circularly ordered cycles (sizes 3..4, capped by
  /// max_cycle_len) containing chord (a, b) as an edge, written into the
  /// scratch in lexicographically sorted vertex order. A circular cycle
  /// is determined by its vertex set; (a, b) is an edge iff one open arc
  /// between them holds no other chosen vertex, so the extra vertices
  /// all come from one side: the interior (a, b) or the exterior
  /// [0, a) ∪ (b, n). Each candidate is emitted exactly once — no
  /// dedup pass — and a < b always holds for the branching chord.
  void generate(Vertex a, Vertex b, DepthScratch& s) const {
    const bool quads = opts.max_cycle_len >= 4;
    s.gen.clear();
    // Sorted sequences leading with w < a: both extras below a, then the
    // triangle, then the second extra beyond b.
    for (Vertex w = 0; w < a; ++w) {
      if (quads)
        for (Vertex z = w + 1; z < a; ++z) s.gen.push_back({w, z, a, b});
      s.gen.push_back({w, a, b});
      if (quads)
        for (Vertex z = b + 1; z < n; ++z) s.gen.push_back({w, a, b, z});
    }
    // Leading with a: extras strictly inside the (a, b) arc.
    for (Vertex w = a + 1; w < b; ++w) {
      if (quads)
        for (Vertex z = w + 1; z < b; ++z) s.gen.push_back({a, w, z, b});
      s.gen.push_back({a, w, b});
    }
    // Leading with a, b: extras beyond b.
    for (Vertex w = b + 1; w < n; ++w) {
      s.gen.push_back({a, b, w});
      if (quads)
        for (Vertex z = w + 1; z < n; ++z) s.gen.push_back({a, b, w, z});
    }
  }

  /// Stable bucket sort by freshness, descending — the same ordering the
  /// former std::stable_sort over the lex-sorted list produced, pinned
  /// by the golden node-count tests. Freshness of a C3/C4 is in [0, 4].
  std::size_t order_candidates(DepthScratch& s) const {
    const std::size_t k = s.gen.size();
    s.fresh.resize(k);
    s.ordered.resize(k);
    std::size_t cnt[5] = {0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < k; ++i) {
      const int f = fresh(s.gen[i]);
      s.fresh[i] = static_cast<std::uint8_t>(f);
      ++cnt[f];
    }
    std::size_t off[5];
    std::size_t acc = 0;
    for (int f = 4; f >= 0; --f) {
      off[f] = acc;
      acc += cnt[f];
    }
    for (std::size_t i = 0; i < k; ++i) s.ordered[off[s.fresh[i]]++] = s.gen[i];
    return k;
  }

  /// Count one branch node against the budget; false aborts the search.
  bool consume_node() {
    ++nodes;
    if ((nodes & kInterruptCheckMask) == 0) {
      if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        cancel_hit = true;
        return false;
      }
      if (opts.deadline.expired()) {
        deadline_hit = true;
        return false;
      }
    }
    if (winner != nullptr && (nodes & kCancelCheckMask) == 0 &&
        winner->load(std::memory_order_relaxed) < root_index) {
      cancelled = true;
      return false;
    }
    if (shared_budget == nullptr) {
      if (nodes > opts.max_nodes) {
        node_budget_hit = true;
        return false;
      }
      return true;
    }
    if (grant == 0) grant = shared_budget->take(kNodeChunk);
    if (grant == 0) {
      node_budget_hit = true;
      return false;
    }
    --grant;
    return true;
  }

  void record_witness() {
    best.clear();
    best.reserve(chosen.size());
    for (const SmallCycle& c : chosen) best.push_back(c.to_cycle());
    found = true;
  }

  bool dfs(std::uint64_t budget) {
    if (!consume_node()) return false;
    Vertex a = 0, b = 0;
    if (!uncovered.first(a, b)) {
      record_witness();
      return true;
    }
    if (budget == 0) return false;
    // Capacity prune: each further cycle supplies exactly n units of arc
    // length, every uncovered chord costs at least its minor distance.
    if (opts.use_capacity_prune &&
        util::ceil_div<std::uint64_t>(remaining_load, n) > budget)
      return false;
    const std::size_t depth = chosen.size();
    generate(a, b, arena[depth]);
    const std::size_t k = order_candidates(arena[depth]);
    for (std::size_t i = 0; i < k; ++i) {
      const SmallCycle c = arena[depth].ordered[i];
      apply(c, +1);
      chosen.push_back(c);
      if (dfs(budget - 1)) return true;
      chosen.pop_back();
      apply(c, -1);
      if (node_budget_hit || cancelled || deadline_hit || cancel_hit)
        return false;
    }
    return false;
  }
};

}  // namespace

SolverResult solve_with_budget(std::uint32_t n, std::uint64_t budget,
                               const SolverOptions& opts) {
  Search s(n, opts);
  s.prepare(budget);
  SolverResult res;
  const bool ok = s.dfs(budget);
  res.found = ok;
  res.nodes = s.nodes;
  res.timed_out = s.deadline_hit;
  res.cancelled = s.cancel_hit;
  res.exhausted = !s.node_budget_hit && !s.deadline_hit && !s.cancel_hit;
  if (ok) res.cover = RingCover{n, std::move(s.best)};
  return res;
}

SolverResult solve_with_budget_parallel(std::uint32_t n, std::uint64_t budget,
                                        const SolverOptions& opts,
                                        std::size_t threads) {
  // Root candidates: every cycle through the lexicographically first chord
  // (0, 1). Each becomes an independent subtree; the dihedral symmetry of
  // the empty state is broken the same way the serial search breaks it.
  // The serial root node is mirrored exactly (one node consumed, then the
  // zero-budget and capacity-prune exits) so node counts and witnesses
  // agree with solve_with_budget whenever the node budget is not hit.
  SolverResult res;
  Search root(n, opts);
  res.nodes = 1;  // the shared root node
  if (opts.max_nodes == 0) return res;  // budget hit at the root
  Vertex a = 0, b = 0;
  if (!root.uncovered.first(a, b)) {  // unreachable for n >= 3
    res.found = true;
    res.exhausted = true;
    res.cover = RingCover{n, {}};
    return res;
  }
  if (budget == 0) {
    res.exhausted = true;
    return res;
  }
  if (opts.use_capacity_prune &&
      util::ceil_div<std::uint64_t>(root.remaining_load, n) > budget) {
    res.exhausted = true;
    return res;
  }

  Search::DepthScratch root_scratch;
  root.generate(a, b, root_scratch);
  const std::size_t fanout = root.order_candidates(root_scratch);
  const std::vector<SmallCycle> roots = root_scratch.ordered;

  // Workers share the remaining node budget and clone the initialized
  // root state instead of recomputing it. The winner is the *lowest*
  // successful root index — exactly the subtree the serial search would
  // have succeeded in first — so the returned cover is byte-identical to
  // the serial one; workers that can no longer win cancel themselves.
  SharedNodeBudget node_pool(opts.max_nodes - 1);
  std::atomic<std::size_t> winner{kNoWinner};
  struct WorkerResult {
    std::uint64_t nodes = 0;
    bool found = false;
    bool budget_hit = false;
    bool cancelled = false;
    bool timed_out = false;
    bool cancel_hit = false;
    std::vector<Cycle> best;
  };
  std::vector<WorkerResult> results(fanout);

  util::ThreadPool pool(threads);
  util::parallel_for(pool, 0, fanout, [&](std::size_t i) {
    if (winner.load(std::memory_order_relaxed) < i) {
      results[i].cancelled = true;
      return;
    }
    Search s(root);  // clone-from-root: no per-root O(n^2) re-init
    s.prepare(budget);
    s.shared_budget = &node_pool;
    s.winner = &winner;
    s.root_index = i;
    s.apply(roots[i], +1);
    s.chosen.push_back(roots[i]);
    const bool ok = s.dfs(budget - 1);
    node_pool.give_back(s.grant);
    WorkerResult& out = results[i];
    out.nodes = s.nodes;
    out.budget_hit = s.node_budget_hit;
    out.cancelled = s.cancelled;
    out.timed_out = s.deadline_hit;
    out.cancel_hit = s.cancel_hit;
    if (ok) {
      out.found = true;
      out.best = std::move(s.best);
      std::size_t cur = winner.load(std::memory_order_relaxed);
      while (i < cur && !winner.compare_exchange_weak(cur, i)) {
      }
    }
  });

  const std::size_t w = winner.load();
  if (w != kNoWinner) {
    // Subtrees before the winner ran to completion (a worker only cancels
    // when a *lower* index already won), so this sum reproduces the
    // serial node count — unless one of them was starved by the shared
    // budget, in which case the serial search might have spent the whole
    // budget there and committed to a different result. exhausted=false
    // flags that budget-truncated (possibly non-serial) witness.
    bool clean = true;
    for (std::size_t i = 0; i <= w; ++i) {
      res.nodes += results[i].nodes;
      // A timed-out or token-cancelled sibling subtree means the serial
      // search might have committed elsewhere — same truncation flag as
      // a budget-starved one. A found cover is still reported as found
      // (never timed_out): a witness in hand beats a timeout.
      if (results[i].budget_hit || results[i].timed_out ||
          results[i].cancel_hit)
        clean = false;
    }
    res.found = true;
    res.exhausted = clean;
    res.cover = RingCover{n, std::move(results[w].best)};
    return res;
  }
  bool all_exhausted = true;
  for (const WorkerResult& r : results) {
    res.nodes += r.nodes;
    if (r.budget_hit) all_exhausted = false;
    if (r.timed_out) res.timed_out = true;
    if (r.cancel_hit) res.cancelled = true;
  }
  res.exhausted = all_exhausted && !res.timed_out && !res.cancelled;
  return res;
}

std::optional<std::pair<std::uint64_t, RingCover>> solve_minimum(
    std::uint32_t n, const SolverOptions& opts, SolverResult* last) {
  // Start from the construction (an upper bound) and push downward.
  RingCover ub = build_optimal_cover(n);
  std::uint64_t best = ub.size();
  RingCover witness = ub;
  std::uint64_t total_nodes = 0;
  while (best > 1) {
    SolverResult res = solve_with_budget(n, best - 1, opts);
    total_nodes += res.nodes;
    if (last != nullptr) {
      *last = res;
      last->nodes = total_nodes;
    }
    if (res.found) {
      best = res.cover.size();
      witness = res.cover;
      continue;
    }
    if (!res.exhausted) return std::nullopt;  // inconclusive
    break;
  }
  return std::make_pair(best, witness);
}

namespace detail {

std::vector<Cycle> candidate_cycles(std::uint32_t n, Vertex a, Vertex b,
                                    const SolverOptions& opts) {
  Search s(n, opts);
  Search::DepthScratch scratch;
  s.generate(a, b, scratch);
  const std::size_t k = s.order_candidates(scratch);
  std::vector<Cycle> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back(scratch.ordered[i].to_cycle());
  return out;
}

}  // namespace detail

}  // namespace ccov::covering
