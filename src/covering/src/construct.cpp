#include <stdexcept>

#include "ccov/covering/construct.hpp"

namespace ccov::covering {

RingCover build_optimal_cover(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("build_optimal_cover: n >= 3");
  return n % 2 == 1 ? construct_odd_cover(n) : construct_even_cover(n);
}

}  // namespace ccov::covering
