#include <stdexcept>

#include "ccov/covering/construct.hpp"

namespace ccov::covering {

/// Induction K_{2p-1} -> K_{2p+1} (DESIGN.md 2.3).
///
/// Insert two new vertices u, v into the ring. In the new labelling
///   u = 0, side A = 1..p-1 (old 0..p-2), v = p, side B = p+1..2p (old
///   p-1..2p-2).
/// Order-preserving relabelling keeps every old cycle circularly ordered,
/// so old cycles remain DRC and keep covering all old chords. The new
/// chords (every pair touching u or v) are covered exactly by
///   quads (u, a_i, v, b_i) = (0, i, p, p+i), i = 1..p-1, and
///   triangle (u, v, b_p) = (0, p, 2p).
/// Counting gives rho(2p+1) = rho(2p-1) + p with p-1 quads + 1 triangle
/// added per step: totals p C3 + p(p-1)/2 C4 = p(p+1)/2 cycles, matching
/// the capacity lower bound, hence optimal.
RingCover construct_odd_cover(std::uint32_t n) {
  if (n < 3 || n % 2 == 0)
    throw std::invalid_argument("construct_odd_cover: odd n >= 3 required");

  RingCover cover;
  cover.n = 3;
  cover.cycles = {{0, 1, 2}};

  for (std::uint32_t m = 5; m <= n; m += 2) {
    const Vertex p = (m - 1) / 2;
    // Relabel: old i -> i+1 for i <= p-2, old i -> i+2 for i >= p-1.
    for (Cycle& c : cover.cycles)
      for (Vertex& v : c) v = v <= p - 2 ? v + 1 : v + 2;
    // New cycles covering all chords incident to u = 0 and v = p.
    for (Vertex i = 1; i + 1 <= p; ++i)
      cover.cycles.push_back({0, i, p, static_cast<Vertex>(p + i)});
    cover.cycles.push_back({0, p, static_cast<Vertex>(2 * p)});
    cover.n = m;
  }
  return cover;
}

}  // namespace ccov::covering
