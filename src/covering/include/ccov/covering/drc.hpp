#pragma once
/// \file drc.hpp
/// The Disjoint Routing Constraint (DRC) of the paper, specialised to rings.
///
/// Theory (DESIGN.md 2.1): concatenating the routing paths of a logical
/// cycle gives a closed walk on C_n; pairwise edge-disjointness forces the
/// walk to traverse every ring edge exactly once in one direction (winding
/// number 1). Hence a cycle admits an edge-disjoint routing iff its vertex
/// sequence is circularly ordered around the ring, and the unique routing
/// assigns each logical edge the forward arc between its endpoints.

#include <optional>
#include <vector>

#include "ccov/covering/cycle.hpp"
#include "ccov/ring/arc.hpp"

namespace ccov::covering {

/// True when the cycle's vertices appear in circular order (clockwise or
/// counterclockwise) around the ring — i.e. the DRC is satisfiable.
bool is_circularly_ordered(const ring::Ring& r, const Cycle& c);

/// Equivalent to is_circularly_ordered (named after the paper's property).
inline bool satisfies_drc(const ring::Ring& r, const Cycle& c) {
  return is_circularly_ordered(r, c);
}

/// The edge-disjoint routing (one arc per logical edge, in cycle order),
/// or nullopt when the DRC fails. The returned arcs tile the ring exactly.
std::optional<std::vector<ring::Arc>> drc_route(const ring::Ring& r,
                                                const Cycle& c);

/// Brute-force DRC oracle: tries all 2^k orientation assignments and checks
/// pairwise edge-disjointness. Exponential; used only to validate the O(k)
/// characterisation in tests (k <= ~20).
bool satisfies_drc_bruteforce(const ring::Ring& r, const Cycle& c);

}  // namespace ccov::covering
