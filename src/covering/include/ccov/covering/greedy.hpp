#pragma once
/// \file greedy.hpp
/// Greedy DRC-covering baseline: repeatedly adds the C3/C4 covering the
/// most uncovered chords. Simple, valid, but suboptimal — used in the
/// benchmark tables to show the gap to the paper's constructions.

#include "ccov/covering/cover.hpp"
#include "ccov/graph/graph.hpp"

namespace ccov::covering {

/// Greedy covering of K_n over C_n.
RingCover greedy_cover(std::uint32_t n);

/// Greedy covering of an arbitrary demand graph over C_n (used by the
/// tree-of-rings extension, where per-ring demands are not complete).
/// Throws std::invalid_argument if the demand mentions a vertex >= n.
RingCover greedy_cover_demand(std::uint32_t n, const graph::Graph& demand);

}  // namespace ccov::covering
