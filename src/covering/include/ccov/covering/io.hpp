#pragma once
/// \file io.hpp
/// Text serialization for coverings. Format:
///
///   drc-cover v1
///   n <ring size>
///   cycles <count>
///   <k> v0 v1 ... v{k-1}        (one line per cycle)
///
/// Round-trippable; read_cover rejects malformed input with a descriptive
/// exception but does NOT validate the covering semantically (call
/// validate_cover for that).

#include <iosfwd>
#include <string>

#include "ccov/covering/cover.hpp"

namespace ccov::covering {

void write_cover(std::ostream& os, const RingCover& cover);
RingCover read_cover(std::istream& is);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_cover(const std::string& path, const RingCover& cover);
RingCover load_cover(const std::string& path);

}  // namespace ccov::covering
