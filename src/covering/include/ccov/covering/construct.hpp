#pragma once
/// \file construct.hpp
/// Optimal DRC-covering constructions reproducing Theorems 1 and 2.

#include "ccov/covering/cover.hpp"

namespace ccov::covering {

/// Optimal DRC-covering of K_n over C_n for odd n >= 3 (Theorem 1).
/// Inductive construction (DESIGN.md 2.3): exactly p C3 and p(p-1)/2 C4,
/// p = (n-1)/2, meeting the capacity lower bound. O(n^2) time/output.
RingCover construct_odd_cover(std::uint32_t n);

/// Optimal DRC-covering of K_n over C_n for even n >= 4 (Theorem 2).
/// Chain construction (DESIGN.md 2.4): alternating two-vertex insertion
/// steps with dup-triangle breaks; exactly rho(n) cycles and, for n >= 6,
/// the paper's composition (4 C3 for n = 4q, 2 C3 for n = 4q+2).
RingCover construct_even_cover(std::uint32_t n);

/// Dispatch to the odd/even construction. The result always validates and
/// has exactly rho(n) cycles.
RingCover build_optimal_cover(std::uint32_t n);

}  // namespace ccov::covering
