#pragma once
/// \file bounds.hpp
/// Closed forms for rho(n) (Theorems 1 and 2 of the paper) and the two
/// lower-bound arguments that certify them.

#include <cstdint>

namespace ccov::covering {

/// Minimum number of cycles in a DRC-covering of K_n over C_n.
///   n odd,  n = 2p+1        : rho = p(p+1)/2            (Theorem 1)
///   n even, n = 2p  (p >= 2): rho = ceil((p^2+1)/2)     (Theorem 2; the
///                              formula also gives the correct value 3 for
///                              n = 4, the paper's in-text example)
///   n = 3: 1.
std::uint64_t rho(std::uint32_t n);

/// Capacity bound: every DRC cycle's routing tiles the ring exactly once,
/// so rho >= ceil(L(n)/n) with L(n) the total minor-arc load of K_n.
std::uint64_t capacity_lower_bound(std::uint32_t n);

/// Refined bound for even n = 2p: a covering meeting the capacity bound
/// would need every ring edge to lie under exactly p/2 of the p antipodal
/// chords' chosen arcs; moving one edge forward flips that count by +-1,
/// never 0, so equality is impossible and rho >= floor(p^2/2) + 1.
/// For odd n this returns the capacity bound unchanged.
std::uint64_t parity_lower_bound(std::uint32_t n);

/// Theorem composition: the number of C3s / C4s in the optimal coverings
/// described by the paper. Valid for odd n >= 3 and even n >= 6.
struct Composition {
  std::uint64_t c3 = 0;
  std::uint64_t c4 = 0;
};
Composition theorem_composition(std::uint32_t n);

}  // namespace ccov::covering
