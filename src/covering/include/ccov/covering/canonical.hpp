#pragma once
/// \file canonical.hpp
/// Symmetry utilities for coverings. The ring's automorphism group is the
/// dihedral group D_n (rotations + reflections); these helpers normalize
/// cycles and covers under it, deduplicate isomorphic covers, and apply
/// group elements. Used by the solver's symmetry breaking, the test suite
/// and anyone caching covers to disk.

#include <cstdint>

#include "ccov/covering/cover.hpp"

namespace ccov::covering {

/// Apply the rotation x -> x + shift (mod n) to every vertex.
RingCover rotate_cover(const RingCover& cover, std::uint32_t shift);

/// Apply the reflection x -> n - x (mod n) to every vertex.
RingCover reflect_cover(const RingCover& cover);

/// Canonical form of a cover under D_n and cycle re-encodings: every cycle
/// canonicalized, cycles sorted, then the lexicographically least image
/// over all 2n group elements. Two covers are D_n-isomorphic iff their
/// canonical forms compare equal.
RingCover canonical_cover(const RingCover& cover);

/// True when two covers are isomorphic under the dihedral group.
bool covers_isomorphic(const RingCover& a, const RingCover& b);

/// Number of distinct covers in the D_n-orbit of `cover` (divides 2n).
std::size_t orbit_size(const RingCover& cover);

}  // namespace ccov::covering
