#pragma once
/// \file cover.hpp
/// DRC-coverings: collections of DRC cycles whose chords cover a demand
/// graph (K_n unless stated otherwise), plus the validator used throughout
/// the library to certify construction output.

#include <cstdint>
#include <string>
#include <vector>

#include "ccov/covering/cycle.hpp"
#include "ccov/graph/graph.hpp"

namespace ccov::covering {

/// A covering of demands on ring C_n by logical cycles.
struct RingCover {
  std::uint32_t n = 0;          ///< ring / instance size
  std::vector<Cycle> cycles;    ///< the sub-networks I_k

  std::size_t size() const { return cycles.size(); }
};

/// Count of cycles by length: composition[k] = number of C_k in the cover.
std::vector<std::size_t> composition(const RingCover& cover);

/// Number of triangles / quadrilaterals (the sizes in Theorems 1 and 2).
std::size_t count_c3(const RingCover& cover);
std::size_t count_c4(const RingCover& cover);

struct ValidationReport {
  bool ok = false;
  std::string error;                 ///< first failure, empty when ok
  std::size_t uncovered_chords = 0;  ///< demands with zero coverage
  std::size_t duplicate_coverage = 0;///< extra coverages beyond the demand
  std::size_t non_drc_cycles = 0;    ///< cycles violating the DRC
};

/// Validate against the all-to-all demand K_n: every cycle must satisfy the
/// DRC on C_n and every chord of K_n must be covered at least once.
ValidationReport validate_cover(const RingCover& cover);

/// Validate against an arbitrary demand (multi)graph on n vertices: each
/// demand edge must be covered with at least its multiplicity.
ValidationReport validate_cover_against(const RingCover& cover,
                                        const graph::Graph& demand);

/// Concatenated rendering of every cycle, "(0 1 2)(0 2 3)...": a compact
/// byte-comparable fingerprint of a cover, used by the golden tests.
std::string to_string(const RingCover& cover);

/// Human-readable one-line summary: "n=9: 10 cycles (3 C3, 7 C4), valid".
std::string summary(const RingCover& cover);

}  // namespace ccov::covering
