#pragma once
/// \file chord_bitset.hpp
/// Packed bitset over the chords (a, b), a < b, of K_n. This is the
/// word-parallel state representation behind the exact solver and the
/// greedy baseline: chord (a, b) maps to bit a*n + b, so lexicographic
/// order on chords equals ascending bit index and "first uncovered
/// chord" is a countr_zero scan instead of an O(n^2) rescan.
///
/// All mutating operations are O(1); scans are O(n^2 / 64) words. The
/// only allocation is the word vector in the constructor — the solver
/// and greedy reuse one instance for an entire search.

#include <bit>
#include <cstdint>
#include <vector>

#include "ccov/ring/ring.hpp"

namespace ccov::covering {

class ChordBitset {
 public:
  using Vertex = ring::Vertex;

  ChordBitset() = default;
  explicit ChordBitset(std::uint32_t n)
      : n_(n), words_((static_cast<std::size_t>(n) * n + 63) / 64, 0) {}

  std::uint32_t n() const { return n_; }

  /// Bit index of chord (a, b); callers normalize a < b.
  std::size_t index(Vertex a, Vertex b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }

  bool test(Vertex a, Vertex b) const {
    const std::size_t i = index(a, b);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(Vertex a, Vertex b) {
    const std::size_t i = index(a, b);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(Vertex a, Vertex b) {
    const std::size_t i = index(a, b);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Set every chord of K_n (all pairs a < b).
  void set_all_chords() {
    for (Vertex a = 0; a < n_; ++a)
      for (Vertex b = a + 1; b < n_; ++b) set(a, b);
  }

  bool none() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// Lexicographically first set chord; false when empty.
  bool first(Vertex& a, Vertex& b) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] == 0) continue;
      const std::size_t i = (wi << 6) + std::countr_zero(words_[wi]);
      a = static_cast<Vertex>(i / n_);
      b = static_cast<Vertex>(i % n_);
      return true;
    }
    return false;
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ccov::covering
