#pragma once
/// \file solver.hpp
/// Exact branch-and-bound search for minimum DRC-coverings. Together with
/// the capacity/parity lower bounds this computationally certifies the
/// rho(n) values of Theorems 1 and 2 for small n.

#include <cstdint>
#include <optional>

#include "ccov/covering/cover.hpp"
#include "ccov/util/timer.hpp"

namespace ccov::covering {

struct SolverOptions {
  /// Maximum cycle length to branch on. Sizes {3,4} suffice to reach the
  /// theorems' optima; since the matching lower bound certifies them, the
  /// restricted search still proves rho(n) whenever it succeeds.
  std::uint32_t max_cycle_len = 4;
  /// Node budget (branch evaluations) before giving up.
  std::uint64_t max_nodes = 200'000'000;
  /// Capacity pruning (each cycle supplies exactly n arc units). Disabling
  /// it exists only for the ablation benchmark — searches explode.
  bool use_capacity_prune = true;
  /// Runtime interruption controls. Both are polled every ~4k nodes, so
  /// an unset deadline / null token leaves node counts byte-identical to
  /// a build without them (the golden-count tests pin this). They
  /// describe *this run*, not the problem, and are deliberately excluded
  /// from the engine's canonical cache key.
  util::Deadline deadline{};                  ///< wall-clock bound (unset = none)
  const util::CancelToken* cancel = nullptr;  ///< cooperative cancel (may be null)
};

struct SolverResult {
  bool found = false;          ///< a covering within the budget was found
  bool exhausted = false;      ///< search space fully explored (proof of
                               ///< infeasibility when !found)
  bool timed_out = false;      ///< the deadline expired mid-search
  bool cancelled = false;      ///< the cancel token fired mid-search
  std::uint64_t nodes = 0;     ///< branch nodes visited
  RingCover cover;             ///< witness when found
};

/// Search for a DRC-covering of K_n with at most `budget` cycles.
SolverResult solve_with_budget(std::uint32_t n, std::uint64_t budget,
                               const SolverOptions& opts = {});

/// Compute the exact minimum by decreasing the budget from the
/// construction's value until infeasible. Returns the minimum count and a
/// witness, or nullopt if the node budget was exceeded, the deadline
/// expired, or the cancel token fired. When `last` is non-null it
/// receives the final budget probe's result (total nodes across all
/// probes; timed_out/cancelled say *why* an inconclusive run stopped).
std::optional<std::pair<std::uint64_t, RingCover>> solve_minimum(
    std::uint32_t n, const SolverOptions& opts = {},
    SolverResult* last = nullptr);

/// Parallel variant: fans the root branching (the candidate cycles through
/// chord (0, 1)) across a thread pool. All workers draw from one shared
/// atomic node budget (`opts.max_nodes` total, like the serial search —
/// not per worker), and the returned witness is always the one from the
/// lowest successful root subtree, i.e. exactly the cover the serial
/// search returns. Whenever the node budget is not exhausted, `nodes`
/// and `cover` are byte-identical to solve_with_budget; workers that can
/// no longer produce the winning subtree cancel themselves early. If a
/// subtree below the winner was starved by the shared budget, the
/// witness is still a valid cover but may differ from the serial one,
/// and the result reports `exhausted == false` to flag the truncation.
/// `threads == 0` selects hardware concurrency.
SolverResult solve_with_budget_parallel(std::uint32_t n, std::uint64_t budget,
                                        const SolverOptions& opts = {},
                                        std::size_t threads = 0);

namespace detail {

/// Testing hook: the exact candidate branching list the search uses for
/// chord (a, b) of K_n in the initial (all-uncovered) state — duplicate
/// free, every cycle containing (a, b) as an edge, ordered by freshness
/// (stable on the lexicographic generation order). Allocates; the real
/// search writes the same sequence into a preallocated arena.
std::vector<Cycle> candidate_cycles(std::uint32_t n, Vertex a, Vertex b,
                                    const SolverOptions& opts = {});

}  // namespace detail

}  // namespace ccov::covering
