#pragma once
/// \file cycle.hpp
/// Logical cycles: the sub-networks I_k of the paper. A cycle is a sequence
/// of >= 3 distinct vertices; it covers the request (chord) between each
/// pair of cyclically consecutive vertices.

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ccov/ring/ring.hpp"

namespace ccov::covering {

using Vertex = ring::Vertex;

/// Vertex sequence of a logical cycle. Rotations and reversal denote the
/// same cycle; see canonical().
using Cycle = std::vector<Vertex>;

/// Inline fixed-capacity cycle for the allocation-free hot paths of the
/// solver and greedy. Vertices live in-object (no heap); capacity 4 is
/// exactly the C3/C4 branching the search performs (Theorems 1–2 only
/// need cycles of sizes {3, 4}). Convert to a heap Cycle with
/// to_cycle() at the witness boundary only.
struct SmallCycle {
  static constexpr std::size_t kCapacity = 4;

  std::array<Vertex, kCapacity> v{};
  std::uint32_t len = 0;

  SmallCycle() = default;
  SmallCycle(Vertex a, Vertex b, Vertex c) : v{a, b, c, 0}, len(3) {}
  SmallCycle(Vertex a, Vertex b, Vertex c, Vertex d) : v{a, b, c, d}, len(4) {}

  std::size_t size() const { return len; }
  Vertex operator[](std::size_t i) const { return v[i]; }
  Vertex& operator[](std::size_t i) { return v[i]; }

  void push_back(Vertex x) {
    assert(len < kCapacity);
    v[len++] = x;
  }

  Cycle to_cycle() const { return Cycle(v.begin(), v.begin() + len); }

  friend bool operator==(const SmallCycle& a, const SmallCycle& b) {
    if (a.len != b.len) return false;
    for (std::uint32_t i = 0; i < a.len; ++i)
      if (a.v[i] != b.v[i]) return false;
    return true;
  }
};

/// Visit the chords (logical edges) of a cycle, normalized u < v, without
/// materializing a vector — the allocation-free counterpart of
/// cycle_chords(). Works for both Cycle and SmallCycle (anything with
/// size() and operator[]).
template <typename CycleT, typename Fn>
inline void for_each_chord(const CycleT& c, Fn&& fn) {
  const std::size_t k = c.size();
  for (std::size_t i = 0; i < k; ++i) {
    Vertex u = c[i];
    Vertex v = c[i + 1 == k ? 0 : i + 1];
    if (u > v) std::swap(u, v);
    fn(u, v);
  }
}

/// True when the sequence is a structurally valid cycle: >= 3 vertices,
/// all distinct, all < n.
bool is_valid_cycle(const Cycle& c, std::uint32_t n);

/// The chords (logical edges) covered by the cycle, normalized u < v.
std::vector<std::pair<Vertex, Vertex>> cycle_chords(const Cycle& c);

/// Canonical form: lexicographically smallest rotation/reflection. Two
/// sequences denote the same cycle iff their canonical forms are equal.
Cycle canonical(const Cycle& c);

/// "(v0 v1 ... vk)" rendering for logs and examples.
std::string to_string(const Cycle& c);

}  // namespace ccov::covering
