#pragma once
/// \file cycle.hpp
/// Logical cycles: the sub-networks I_k of the paper. A cycle is a sequence
/// of >= 3 distinct vertices; it covers the request (chord) between each
/// pair of cyclically consecutive vertices.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ccov/ring/ring.hpp"

namespace ccov::covering {

using Vertex = ring::Vertex;

/// Vertex sequence of a logical cycle. Rotations and reversal denote the
/// same cycle; see canonical().
using Cycle = std::vector<Vertex>;

/// True when the sequence is a structurally valid cycle: >= 3 vertices,
/// all distinct, all < n.
bool is_valid_cycle(const Cycle& c, std::uint32_t n);

/// The chords (logical edges) covered by the cycle, normalized u < v.
std::vector<std::pair<Vertex, Vertex>> cycle_chords(const Cycle& c);

/// Canonical form: lexicographically smallest rotation/reflection. Two
/// sequences denote the same cycle iff their canonical forms are equal.
Cycle canonical(const Cycle& c);

/// "(v0 v1 ... vk)" rendering for logs and examples.
std::string to_string(const Cycle& c);

}  // namespace ccov::covering
