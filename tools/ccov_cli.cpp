// ccov — command-line front end for the cycle-covering library.
//
//   ccov cover    --n 13 [--out cover.txt]    build the optimal covering
//   ccov validate --in cover.txt              validate a covering file
//   ccov bounds   --n 13                      print rho and lower bounds
//   ccov solve    --n 8 [--budget B] [--parallel]
//                                             exact search
//   ccov protect  --n 12 [--edge E]           loop-back failure report
//   ccov run      --algo solve --n 9          any registered algorithm
//   ccov sweep    --n-from 3 --n-to 15 --algo construct --jobs 4
//                                             batch sweep, CSV/JSON out
//   ccov serve    [--listen H:P | --http H:P | --shm NAME] [--jobs K]
//                 [--batch B] [--cache-file F] JSONL serve loop (stdio, TCP,
//                                             HTTP with /metrics, or a
//                                             shared-memory segment)
//   ccov client   --shm NAME                  JSONL client for a --shm server
//                                             (stdin -> segment -> stdout)
//   ccov cache    stats|save|load|clear --cache-file F
//                                             snapshot maintenance
//   ccov algos                                list registered algorithms
//   ccov --version                            print the version
//
// Exit code 0 on success / valid, 1 otherwise. Unknown subcommands print
// the usage on stderr and exit nonzero.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/io.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/engine/batch.hpp"
#include "ccov/engine/engine.hpp"
#include "ccov/engine/http.hpp"
#include "ccov/engine/net.hpp"
#include "ccov/engine/serve.hpp"
#include "ccov/engine/shm.hpp"
#include "ccov/engine/store.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/util/failpoint.hpp"
#include "ccov/util/shm_ring.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/network.hpp"

#ifndef CCOV_VERSION
#define CCOV_VERSION "unknown"
#endif

namespace {

void print_usage(std::ostream& os) {
  os << "usage: ccov <subcommand> [flags]\n"
        "  cover     --n N [--out F]                build the optimal "
        "covering\n"
        "  validate  --in F                         validate a covering "
        "file\n"
        "  bounds    --n N                          print rho and lower "
        "bounds\n"
        "  solve     --n N [--budget B] [--parallel]  exact search\n"
        "  protect   --n N [--edge E]               loop-back failure "
        "report\n"
        "  run       --algo NAME --n N [--budget B] [--lambda L]\n"
        "            [--threads K] [--no-validate] [--out F]\n"
        "                                           run any registered "
        "algorithm\n"
        "  sweep     --n-from A --n-to B [--step S] --algo NAME [--jobs "
        "K]\n"
        "            [--budget B] [--lambda L] [--no-validate] [--timing]\n"
        "            [--format csv|json|table] [--out F] [--cache-file F]\n"
        "                                           batch sweep via the "
        "engine\n"
        "  serve     [--listen HOST:PORT | --http HOST:PORT | --shm NAME]\n"
        "            [--jobs K] [--batch B] [--cache-file F] "
        "[--cache-capacity C]\n"
        "            [--cache-shards S] [--max-clients M] [--max-line "
        "BYTES]\n"
        "            [--max-body BYTES] [--shm-ring BYTES]\n"
        "            [--default-deadline-ms MS] [--fallback greedy|none]\n"
        "                                           JSONL serve loop: stdio "
        "by default,\n"
        "                                           TCP with --listen, HTTP "
        "with --http\n"
        "                                           (POST /v1/batch, GET "
        "/metrics),\n"
        "                                           shared memory with "
        "--shm;\n"
        "                                           SIGINT/SIGTERM cancel "
        "in-flight\n"
        "                                           solves, shut down "
        "cleanly and\n"
        "                                           save the store\n"
        "  client    --shm NAME [--connect-retry-ms MS]\n"
        "                                           pipe JSONL from stdin "
        "through a\n"
        "                                           --shm server, responses "
        "to stdout\n"
        "  cache     stats|save|load|clear --cache-file F [sweep flags]\n"
        "                                           inspect / warm / verify "
        "/ reset a snapshot\n"
        "  algos                                    list registered "
        "algorithms\n"
        "  help                                     show this message\n"
        "  --version                                print the version\n";
}

/// Cache capacity big enough to merge an existing snapshot plus new
/// work without evicting persisted entries (a too-small cache would
/// silently shrink the store on save-back).
std::size_t warm_capacity(const std::string& cache_file, std::size_t floor) {
  std::size_t entries = 0;
  if (!cache_file.empty() && std::filesystem::exists(cache_file))
    entries = static_cast<std::size_t>(
        ccov::engine::snapshot_entry_count_file(cache_file));
  return std::max(floor, 2 * entries);
}

/// Load `cache_file` into the cache when it exists; 0 entries otherwise.
std::size_t load_snapshot_if_exists(const std::string& cache_file,
                                    ccov::engine::CoverCache& cache) {
  if (cache_file.empty() || !std::filesystem::exists(cache_file)) return 0;
  return ccov::engine::load_snapshot_file(cache_file, cache);
}

/// Shared request assembly for the engine-backed subcommands.
ccov::engine::CoverRequest make_request(const ccov::util::Cli& cli,
                                        std::uint32_t n) {
  ccov::engine::CoverRequest req;
  req.algorithm = cli.get("algo", "construct");
  req.n = n;
  req.budget = static_cast<std::uint64_t>(cli.get_int("budget", 0));
  req.lambda = static_cast<std::uint32_t>(cli.get_int("lambda", 1));
  req.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  req.validate = !cli.has("no-validate");
  return req;
}

int cmd_cover(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));
  const auto cover = ccov::covering::build_optimal_cover(n);
  std::cout << ccov::covering::summary(cover) << "\n";
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    ccov::covering::save_cover(out, cover);
    std::cout << "saved to " << out << "\n";
  } else {
    ccov::covering::write_cover(std::cout, cover);
  }
  return 0;
}

int cmd_validate(const ccov::util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) {
    std::cerr << "validate: --in <file> required\n";
    return 1;
  }
  const auto cover = ccov::covering::load_cover(in);
  const auto rep = ccov::covering::validate_cover(cover);
  std::cout << ccov::covering::summary(cover) << "\n";
  if (!rep.ok) std::cout << "error: " << rep.error << "\n";
  return rep.ok ? 0 : 1;
}

int cmd_bounds(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));
  using namespace ccov::covering;
  std::cout << "n = " << n << "\n"
            << "rho(n)            = " << rho(n) << "\n"
            << "capacity bound    = " << capacity_lower_bound(n) << "\n"
            << "parity bound      = " << parity_lower_bound(n) << "\n";
  if (n >= 6 || n % 2 == 1) {
    const auto comp = theorem_composition(n);
    std::cout << "theorem C3 / C4   = " << comp.c3 << " / " << comp.c4
              << "\n";
  }
  return 0;
}

int cmd_solve(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 7));
  using namespace ccov::covering;
  const auto budget =
      static_cast<std::uint64_t>(cli.get_int("budget",
                                             static_cast<std::int64_t>(rho(n))));
  const auto res = cli.has("parallel")
                       ? solve_with_budget_parallel(n, budget)
                       : solve_with_budget(n, budget);
  std::cout << "n=" << n << " budget=" << budget << " found=" << res.found
            << " exhausted=" << res.exhausted << " nodes=" << res.nodes
            << "\n";
  if (res.found) {
    for (const auto& c : res.cover.cycles)
      std::cout << "  " << to_string(c) << "\n";
  }
  return res.found ? 0 : 1;
}

int cmd_protect(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 12));
  const auto edge = static_cast<std::uint32_t>(cli.get_int("edge", 0));
  const auto cover = ccov::covering::build_optimal_cover(n);
  const auto inst = ccov::wdm::Instance::all_to_all(n);
  const ccov::wdm::WdmRingNetwork net(n, cover, inst);
  const auto rep =
      ccov::protection::simulate_loopback(net, {edge % n});
  std::cout << "link " << edge % n << " failure on C_" << n << ": affected="
            << rep.affected_requests << " switches=" << rep.switching_actions
            << " max_detour=" << rep.max_detour_hops
            << " recovery_ms=" << rep.recovery_time_ms << "\n";
  return 0;
}

int cmd_run(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));
  const auto req = make_request(cli, n);
  ccov::engine::Engine engine;
  const auto resp = engine.run(req);
  if (!resp.ok) {
    std::cerr << "run: " << resp.error << "\n";
    return 1;
  }
  std::cout << "algo=" << resp.algorithm << " n=" << resp.n
            << " found=" << resp.found << " exhausted=" << resp.exhausted
            << " nodes=" << resp.nodes << " cycles=" << resp.cover.size();
  if (resp.validated) std::cout << " valid=" << (resp.valid ? "yes" : "no");
  std::cout << " ms=" << resp.elapsed_ms << "\n";
  if (resp.found) {
    const std::string out = cli.get("out", "");
    if (!out.empty()) {
      ccov::covering::save_cover(out, resp.cover);
      std::cout << "saved to " << out << "\n";
    } else {
      for (const auto& c : resp.cover.cycles)
        std::cout << "  " << ccov::covering::to_string(c) << "\n";
    }
  }
  // Honour the documented exit contract: 0 only on success AND (when
  // validation ran) a valid cover.
  return resp.found && (!resp.validated || resp.valid) ? 0 : 1;
}

int cmd_sweep(const ccov::util::Cli& cli) {
  const auto n_from = static_cast<std::uint32_t>(cli.get_int("n-from", 3));
  const auto n_to =
      static_cast<std::uint32_t>(cli.get_int("n-to", n_from));
  const auto step =
      static_cast<std::uint32_t>(cli.get_int("step", 1));
  if (n_from < 3 || n_to < n_from || step == 0) {
    std::cerr << "sweep: need 3 <= --n-from <= --n-to and --step >= 1\n";
    return 1;
  }
  const std::string format = cli.get("format", "csv");
  if (format != "csv" && format != "json" && format != "table") {
    std::cerr << "sweep: --format must be csv, json or table\n";
    return 1;
  }
  const bool timing = cli.has("timing");

  std::vector<ccov::engine::CoverRequest> requests;
  for (std::uint32_t n = n_from; n <= n_to; n += step)
    requests.push_back(make_request(cli, n));

  // --cache-file warm-starts the sweep from a snapshot and persists the
  // merged store afterwards, so repeated sweeps skip solved instances.
  const std::string cache_file = cli.get("cache-file", "");
  ccov::engine::EngineOptions eopts;
  if (!cache_file.empty())
    eopts.cache_capacity = warm_capacity(cache_file, 1 << 16);
  ccov::engine::Engine engine(eopts);
  load_snapshot_if_exists(cache_file, engine.cache());
  ccov::engine::BatchRunner runner(
      engine, {static_cast<std::size_t>(cli.get_int("jobs", 0))});
  const auto responses = runner.run(requests);
  if (!cache_file.empty())
    ccov::engine::save_snapshot_file(cache_file, engine.cache());

  std::vector<std::string> headers = {"algo", "n",     "rho",      "cycles",
                                      "c3",   "c4",    "found",    "exhausted",
                                      "nodes", "valid"};
  if (timing) headers.push_back("ms");
  ccov::util::Table table(headers);
  int failures = 0;
  for (const auto& resp : responses) {
    if (!resp.ok) {
      ++failures;
      std::cerr << "sweep: " << resp.algorithm << " n=" << resp.n << ": "
                << resp.error << "\n";
    }
    std::vector<std::string> row = {
        resp.algorithm,
        std::to_string(resp.n),
        std::to_string(ccov::covering::rho(resp.n)),
        std::to_string(resp.cover.size()),
        std::to_string(ccov::covering::count_c3(resp.cover)),
        std::to_string(ccov::covering::count_c4(resp.cover)),
        std::to_string(resp.found ? 1 : 0),
        std::to_string(resp.exhausted ? 1 : 0),
        std::to_string(resp.nodes),
        !resp.ok ? "error" : (resp.validated ? (resp.valid ? "yes" : "no")
                                             : "-")};
    if (timing) row.push_back(std::to_string(resp.elapsed_ms));
    table.add_row(std::move(row));
  }

  const std::string out = cli.get("out", "");
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      std::cerr << "sweep: cannot open " << out << " for writing\n";
      return 1;
    }
  }
  std::ostream& os = out.empty() ? std::cout : file;
  if (format == "csv") {
    table.write_csv(os);
  } else if (format == "json") {
    table.write_json(os);
  } else {
    table.print(os, "sweep " + cli.get("algo", "construct"));
  }
  return failures == 0 ? 0 : 1;
}

/// The single place serve flags become a ServeConfig — every front end
/// (stdio, --listen, --http, --shm) consumes the result. The three
/// transport flags form one mutually-exclusive group: naming more than
/// one raises a single coherent error listing exactly what was given.
ccov::engine::ServeConfig parse_serve_config(const ccov::util::Cli& cli) {
  ccov::engine::ServeConfig config;
  config.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  config.batch = static_cast<std::size_t>(cli.get_int("batch", 1));
  config.cache_file = cli.get("cache-file", "");
  config.max_line_bytes = static_cast<std::size_t>(
      cli.get_int("max-line", static_cast<std::int64_t>(1) << 20));
  config.max_clients =
      static_cast<std::size_t>(cli.get_int("max-clients", 64));
  config.max_body_bytes = static_cast<std::size_t>(cli.get_int(
      "max-body", static_cast<std::int64_t>(config.max_body_bytes)));
  const std::int64_t deadline_ms = cli.get_int("default-deadline-ms", 0);
  if (deadline_ms < 0)
    throw std::invalid_argument("--default-deadline-ms must be >= 0");
  config.default_deadline_ms = static_cast<std::uint64_t>(deadline_ms);
  config.fallback = cli.get("fallback", "");
  if (config.fallback == "none") config.fallback.clear();
  if (!config.fallback.empty() && config.fallback != "greedy")
    throw std::invalid_argument("--fallback must be 'greedy' or 'none' (got '" +
                                config.fallback + "')");

  const struct {
    const char* flag;
    std::string value;
  } transports[] = {{"listen", cli.get("listen", "")},
                    {"http", cli.get("http", "")},
                    {"shm", cli.get("shm", "")}};
  std::vector<std::string> given;
  for (const auto& t : transports)
    if (!t.value.empty()) given.push_back(std::string("--") + t.flag);
  if (given.size() > 1) {
    std::string got = given[0];
    for (std::size_t i = 1; i < given.size(); ++i)
      got += (i + 1 == given.size() ? " and " : ", ") + given[i];
    throw std::invalid_argument(
        "--listen, --http and --shm select the transport and are mutually "
        "exclusive (got " + got + ")");
  }

  for (const auto& t : transports) {
    if (t.value.empty() || t.flag == std::string("shm")) continue;
    std::string err;
    if (!ccov::engine::net::parse_endpoint(t.value, &config.host,
                                           &config.port, &err))
      throw std::invalid_argument("--" + std::string(t.flag) + " '" +
                                  t.value + "': " + err);
  }
  config.shm_name = cli.get("shm", "");
  config.shm_ring_bytes = static_cast<std::size_t>(cli.get_int(
      "shm-ring", static_cast<std::int64_t>(config.shm_ring_bytes)));
  if (!config.shm_name.empty() &&
      !ccov::util::ShmByteRing::valid_capacity(config.shm_ring_bytes))
    throw std::invalid_argument(
        "--shm-ring must be a power of two >= 64 bytes");
  return config;
}

int cmd_serve(const ccov::util::Cli& cli) {
  // Fail fast on a malformed CCOV_FAILPOINTS before any socket binds:
  // the registry's own env bootstrap stays deliberately silent (a stale
  // variable must never break a production binary), but an operator who
  // mistypes a spec while standing up a *server* wants one line and a
  // nonzero exit, not silently-disarmed fault injection.
  if (const char* fp_env = std::getenv("CCOV_FAILPOINTS")) {
    std::string fp_err;
    if (!ccov::util::failpoint::validate(fp_env, &fp_err)) {
      std::cerr << "serve: invalid CCOV_FAILPOINTS: " << fp_err << "\n";
      return 2;
    }
  }
  ccov::engine::ServeConfig config = parse_serve_config(cli);
  const bool listen = !cli.get("listen", "").empty();
  const bool http = !cli.get("http", "").empty();
  const bool shm = !config.shm_name.empty();

  // The shutdown token the SIGINT/SIGTERM handler fires. Static because
  // a signal can arrive after cmd_serve unwinds (the handlers stay
  // installed for the process lifetime); every session threads it into
  // its in-flight requests, so shutdown latency is bounded by the
  // solver's ~4k-node cancel poll, not the deepest running search.
  static ccov::util::CancelToken shutdown_token;
  config.cancel = &shutdown_token;

  ccov::engine::EngineOptions eopts;
  eopts.cache_capacity = std::max(
      static_cast<std::size_t>(cli.get_int("cache-capacity", 1 << 14)),
      warm_capacity(config.cache_file, 0));
  eopts.cache_shards = static_cast<std::size_t>(cli.get_int(
      "cache-shards",
      static_cast<std::int64_t>(ccov::engine::CoverCache::kDefaultShards)));
  eopts.fallback_greedy = config.fallback == "greedy";
  ccov::engine::Engine engine(eopts);

  if (const std::size_t loaded =
          load_snapshot_if_exists(config.cache_file, engine.cache())) {
    std::cerr << "serve: warm-started " << loaded << " entries from "
              << config.cache_file << "\n";
  }

  int rc = 0;
  if (http) {
    ccov::engine::net::HttpServer server(engine, config);
    ccov::engine::net::install_signal_shutdown(server.wake_fd(),
                                               &shutdown_token);
    std::cerr << "serve: http listening on " << server.host() << ":"
              << server.port() << "\n";
    rc = server.run();
  } else if (listen) {
    ccov::engine::net::ServeServer server(engine, config);
    ccov::engine::net::install_signal_shutdown(server.wake_fd(),
                                               &shutdown_token);
    std::cerr << "serve: listening on " << server.host() << ":"
              << server.port() << "\n";
    rc = server.run();
  } else if (shm) {
    ccov::engine::shm::ShmServer server(engine, config);
    ccov::engine::net::install_signal_shutdown(server.wake_fd(),
                                               &shutdown_token);
    std::cerr << "serve: shm serving on " << server.name() << "\n";
    rc = server.run();
  } else {
    // Unsynchronized streams let the stdio transport's read_some drain
    // whole buffered lines via readsome() instead of one byte per call
    // (std::cin's C-stdio sync buffer always reports in_avail() == 0).
    // Untie cin from cout: the session's reader thread must not flush
    // cout (via the istream sentry) while the pipeline worker writes
    // responses to it.
    std::ios::sync_with_stdio(false);
    std::cin.tie(nullptr);
    // No wake pipe on stdio: the handler (installed without SA_RESTART)
    // interrupts the blocked stdin read itself, and the fired token
    // aborts whatever is solving, so SIGINT/SIGTERM still drain, save
    // and exit 0 within a bounded latency.
    ccov::engine::net::install_signal_shutdown(-1, &shutdown_token);
    rc = ccov::engine::serve_loop(std::cin, std::cout, engine, config);
  }
  if (!config.cache_file.empty()) {
    // A failed save-on-exit (disk full, I/O error) must be loud: the
    // operator asked for persistence and did not get it. The previous
    // snapshot, if any, is still intact (atomic temp-then-rename).
    try {
      ccov::engine::save_snapshot_file(config.cache_file, engine.cache());
      std::cerr << "serve: saved " << engine.cache().size() << " entries to "
                << config.cache_file << "\n";
    } catch (const std::exception& e) {
      std::cerr << "serve: save-on-exit failed: " << e.what() << "\n";
      return rc != 0 ? rc : 1;
    }
  }
  return rc;
}

/// `ccov client --shm NAME`: the shared-memory analog of bash's
/// /dev/tcp — pump JSONL from stdin through a served segment and print
/// the response lines to stdout. Sends and receives are interleaved so
/// a batch larger than the rings cannot deadlock on backpressure.
int cmd_client(const ccov::util::Cli& cli) {
  const std::string name = cli.get("shm", "");
  if (name.empty()) {
    std::cerr << "client: --shm NAME required\n";
    return 1;
  }
  ccov::engine::shm::ShmClient client;
  std::string error;
  // Two distinct transient failures get retried: losing the claim race
  // against the server's between-sessions reset (short fixed retries, as
  // before), and the segment not existing yet — a client started moments
  // before its server. The latter backs off exponentially (1ms doubling
  // to 100ms) within the --connect-retry-ms budget, so scripted
  // "server & client &" races converge without hammering shm_open.
  const std::int64_t retry_budget_ms =
      std::max<std::int64_t>(0, cli.get_int("connect-retry-ms", 2000));
  const auto sleep_ms = [](std::int64_t ms) {
    const timespec ts{static_cast<time_t>(ms / 1000),
                      static_cast<long>(ms % 1000) * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  };
  std::int64_t waited_ms = 0;
  std::int64_t backoff_ms = 1;
  for (int busy_attempts = 0; !client.connect(name, &error);) {
    if (error.find("busy (session reset)") != std::string::npos &&
        busy_attempts < 100) {
      ++busy_attempts;
      sleep_ms(10);
      continue;
    }
    if (error.find("cannot open shm segment") != std::string::npos &&
        waited_ms < retry_budget_ms) {
      const std::int64_t delay =
          std::min(backoff_ms, retry_budget_ms - waited_ms);
      sleep_ms(delay);
      waited_ms += delay;
      backoff_ms = std::min<std::int64_t>(backoff_ms * 2, 100);
      continue;
    }
    std::cerr << "client: " << error << "\n";
    return 1;
  }

  // One rx buffer for the whole session: a drain can land mid-line
  // (reliably so under response-ring backpressure), and a line split
  // across two drains must be reassembled in the same buffer — mixing
  // this with ShmClient's internal read_line buffer would tear it.
  std::string rx;
  std::size_t requests = 0;
  std::size_t responses = 0;
  const auto flush_lines = [&] {
    std::size_t nl;
    while ((nl = rx.find('\n')) != std::string::npos) {
      std::cout.write(rx.data(), static_cast<std::streamsize>(nl + 1));
      rx.erase(0, nl + 1);
      ++responses;
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    line += '\n';
    ++requests;
    std::size_t off = 0;
    while (off < line.size()) {
      off += client.try_send(line.data() + off, line.size() - off);
      // Drain responses between partial sends: with both rings bounded,
      // one side must always keep consuming or a big batch deadlocks.
      client.drain_available(&rx);
      flush_lines();
      if (off < line.size()) {
        if (!client.ok()) {
          std::cerr << "client: server went away mid-send\n";
          return 1;
        }
        client.wait_send(50);
      }
    }
  }
  client.finish();
  while (client.read_some(&rx) > 0) flush_lines();
  flush_lines();
  // The protocol answers every request line with exactly one response
  // line, so a clean session ends with matching counts, an empty rx
  // (no torn trailing line) and the server's eof mark. Anything else
  // means a crashed or shut-down server truncated the stream — print
  // what arrived, but say so and fail.
  const bool complete =
      client.server_finished() && rx.empty() && responses == requests;
  if (!rx.empty()) std::cout.write(rx.data(), static_cast<std::streamsize>(rx.size()));
  std::cout.flush();
  client.close();
  if (!complete) {
    std::cerr << "client: session aborted before the server finished ("
              << responses << " of " << requests
              << " responses received; output may be truncated)\n";
    return 1;
  }
  return 0;
}

int cmd_cache(const ccov::util::Cli& cli) {
  const auto& pos = cli.positional();
  const std::string verb = pos.size() > 1 ? pos[1] : "";
  const std::string file = cli.get("cache-file", "");
  if (verb.empty() || file.empty()) {
    std::cerr << "cache: usage: ccov cache stats|save|load|clear "
                 "--cache-file F\n";
    return 1;
  }

  if (verb == "stats" || verb == "load") {
    ccov::engine::CoverCache cache(warm_capacity(file, 1));
    const std::size_t entries =
        ccov::engine::load_snapshot_file(file, cache);
    std::cout << "file:    " << file << "\n"
              << "version: " << ccov::engine::kSnapshotVersion << "\n"
              << "bytes:   " << std::filesystem::file_size(file) << "\n"
              << "entries: " << entries << "\n";
    if (verb == "stats") {
      // Per-algorithm breakdown: the canonical key starts "algo|n=...".
      std::map<std::string, std::size_t> per_algo;
      for (const auto& [key, resp] : cache.export_entries())
        ++per_algo[key.substr(0, key.find('|'))];
      for (const auto& [algo, count] : per_algo)
        std::cout << "  " << algo << ": " << count << "\n";
    } else {
      std::cout << "load: snapshot ok\n";
    }
    return 0;
  }
  if (verb == "clear") {
    ccov::engine::CoverCache empty(1);
    ccov::engine::save_snapshot_file(file, empty);
    std::cout << "cleared " << file << "\n";
    return 0;
  }
  if (verb == "save") {
    // Offline warming: run the given sweep through an engine seeded from
    // the snapshot (if present) and persist the merged store.
    const auto n_from =
        static_cast<std::uint32_t>(cli.get_int("n-from", 3));
    const auto n_to =
        static_cast<std::uint32_t>(cli.get_int("n-to", n_from));
    const auto step = static_cast<std::uint32_t>(cli.get_int("step", 1));
    if (n_from < 3 || n_to < n_from || step == 0) {
      std::cerr << "cache save: need 3 <= --n-from <= --n-to and --step >= "
                   "1\n";
      return 1;
    }
    ccov::engine::EngineOptions eopts;
    eopts.cache_capacity = warm_capacity(file, 1 << 16);
    ccov::engine::Engine engine(eopts);
    load_snapshot_if_exists(file, engine.cache());
    std::vector<ccov::engine::CoverRequest> requests;
    for (std::uint32_t n = n_from; n <= n_to; n += step)
      requests.push_back(make_request(cli, n));
    ccov::engine::BatchRunner runner(
        engine, {static_cast<std::size_t>(cli.get_int("jobs", 0))});
    int failures = 0;
    for (const auto& resp : runner.run(requests)) {
      if (resp.ok) continue;
      ++failures;
      std::cerr << "cache save: " << resp.algorithm << " n=" << resp.n
                << ": " << resp.error << "\n";
    }
    ccov::engine::save_snapshot_file(file, engine.cache());
    std::cout << "saved " << engine.cache().size() << " entries to " << file
              << "\n";
    return failures == 0 ? 0 : 1;
  }
  std::cerr << "cache: unknown verb '" << verb
            << "' (expected stats|save|load|clear)\n";
  return 1;
}

int cmd_algos() {
  const auto& reg = ccov::engine::AlgorithmRegistry::global();
  ccov::util::Table t({"name", "description"});
  for (const auto& name : reg.names())
    t.add(name, reg.find(name)->description);
  t.print(std::cout, "registered algorithms");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ccov::util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::cout << "ccov " << CCOV_VERSION << "\n";
    return 0;
  }
  const auto& pos = cli.positional();
  const std::string cmd = pos.empty() ? "help" : pos[0];
  try {
    if (cmd == "cover") return cmd_cover(cli);
    if (cmd == "validate") return cmd_validate(cli);
    if (cmd == "bounds") return cmd_bounds(cli);
    if (cmd == "solve") return cmd_solve(cli);
    if (cmd == "protect") return cmd_protect(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "sweep") return cmd_sweep(cli);
    if (cmd == "serve") return cmd_serve(cli);
    if (cmd == "client") return cmd_client(cli);
    if (cmd == "cache") return cmd_cache(cli);
    if (cmd == "algos") return cmd_algos();
  } catch (const std::exception& e) {
    std::cerr << "ccov " << cmd << ": " << e.what() << "\n";
    return 1;
  }
  if (cmd == "help") {
    print_usage(std::cout);
    return 0;
  }
  std::cerr << "ccov: unknown subcommand '" << cmd << "'\n";
  print_usage(std::cerr);
  return 1;
}
