// ccov — command-line front end for the cycle-covering library.
//
//   ccov cover    --n 13 [--out cover.txt]    build the optimal covering
//   ccov validate --in cover.txt              validate a covering file
//   ccov bounds   --n 13                      print rho and lower bounds
//   ccov solve    --n 8 [--budget B] [--parallel]
//                                             exact search
//   ccov protect  --n 12 [--edge E]           loop-back failure report
//
// Exit code 0 on success / valid, 1 otherwise.

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/covering/io.hpp"
#include "ccov/covering/solver.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/wdm/network.hpp"

namespace {

int cmd_cover(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));
  const auto cover = ccov::covering::build_optimal_cover(n);
  std::cout << ccov::covering::summary(cover) << "\n";
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    ccov::covering::save_cover(out, cover);
    std::cout << "saved to " << out << "\n";
  } else {
    ccov::covering::write_cover(std::cout, cover);
  }
  return 0;
}

int cmd_validate(const ccov::util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) {
    std::cerr << "validate: --in <file> required\n";
    return 1;
  }
  const auto cover = ccov::covering::load_cover(in);
  const auto rep = ccov::covering::validate_cover(cover);
  std::cout << ccov::covering::summary(cover) << "\n";
  if (!rep.ok) std::cout << "error: " << rep.error << "\n";
  return rep.ok ? 0 : 1;
}

int cmd_bounds(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));
  using namespace ccov::covering;
  std::cout << "n = " << n << "\n"
            << "rho(n)            = " << rho(n) << "\n"
            << "capacity bound    = " << capacity_lower_bound(n) << "\n"
            << "parity bound      = " << parity_lower_bound(n) << "\n";
  if (n >= 6 || n % 2 == 1) {
    const auto comp = theorem_composition(n);
    std::cout << "theorem C3 / C4   = " << comp.c3 << " / " << comp.c4
              << "\n";
  }
  return 0;
}

int cmd_solve(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 7));
  using namespace ccov::covering;
  const auto budget =
      static_cast<std::uint64_t>(cli.get_int("budget",
                                             static_cast<std::int64_t>(rho(n))));
  const auto res = cli.has("parallel")
                       ? solve_with_budget_parallel(n, budget)
                       : solve_with_budget(n, budget);
  std::cout << "n=" << n << " budget=" << budget << " found=" << res.found
            << " exhausted=" << res.exhausted << " nodes=" << res.nodes
            << "\n";
  if (res.found) {
    for (const auto& c : res.cover.cycles)
      std::cout << "  " << to_string(c) << "\n";
  }
  return res.found ? 0 : 1;
}

int cmd_protect(const ccov::util::Cli& cli) {
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 12));
  const auto edge = static_cast<std::uint32_t>(cli.get_int("edge", 0));
  const auto cover = ccov::covering::build_optimal_cover(n);
  const auto inst = ccov::wdm::Instance::all_to_all(n);
  const ccov::wdm::WdmRingNetwork net(n, cover, inst);
  const auto rep =
      ccov::protection::simulate_loopback(net, {edge % n});
  std::cout << "link " << edge % n << " failure on C_" << n << ": affected="
            << rep.affected_requests << " switches=" << rep.switching_actions
            << " max_detour=" << rep.max_detour_hops
            << " recovery_ms=" << rep.recovery_time_ms << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ccov::util::Cli cli(argc, argv);
  const auto& pos = cli.positional();
  const std::string cmd = pos.empty() ? "help" : pos[0];
  try {
    if (cmd == "cover") return cmd_cover(cli);
    if (cmd == "validate") return cmd_validate(cli);
    if (cmd == "bounds") return cmd_bounds(cli);
    if (cmd == "solve") return cmd_solve(cli);
    if (cmd == "protect") return cmd_protect(cli);
  } catch (const std::exception& e) {
    std::cerr << "ccov " << cmd << ": " << e.what() << "\n";
    return 1;
  }
  std::cout << "usage: ccov <cover|validate|bounds|solve|protect> [--n N] "
               "[--in F] [--out F] [--budget B] [--parallel] [--edge E]\n";
  return cmd == "help" ? 0 : 1;
}
