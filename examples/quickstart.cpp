// Quickstart: build an optimal DRC-covering of K_n over the ring C_n,
// validate it, and print it.
//
//   ./quickstart [--n 9]

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/covering/construct.hpp"
#include "ccov/util/cli.hpp"

int main(int argc, char** argv) try {
  const ccov::util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 9));

  using namespace ccov::covering;
  std::cout << "All-to-all instance K_" << n << " on ring C_" << n << "\n"
            << "rho(" << n << ") = " << rho(n)
            << " (minimum number of protected sub-networks)\n\n";

  const RingCover cover = build_optimal_cover(n);
  std::cout << summary(cover) << "\n\ncycles:\n";
  for (const auto& c : cover.cycles) std::cout << "  " << to_string(c) << "\n";

  const auto rep = validate_cover(cover);
  std::cout << "\nvalidation: " << (rep.ok ? "OK" : rep.error)
            << " (duplicate coverage slots: " << rep.duplicate_coverage
            << ")\n";
  return rep.ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "quickstart: " << e.what() << "\n";
  return 1;
}
