// The worked example from the paper, reproduced end to end: on the ring
// C_4 with instance K_4, the covering {(1,2,3,4,1), (1,3,4,2,1)} fails the
// disjoint routing constraint, while {(1,2,3,4,1), (1,2,4,1), (1,3,4,1)}
// satisfies it. Vertices are 0-indexed here (paper vertex i = our i-1).

#include <iostream>

#include "ccov/covering/cover.hpp"
#include "ccov/covering/drc.hpp"
#include "ccov/ring/tiling.hpp"

int main() {
  using namespace ccov::covering;
  const ccov::ring::Ring r(4);

  std::cout << "Physical graph: C_4; logical graph: K_4\n\n";

  const Cycle bad{0, 2, 3, 1};
  std::cout << "cycle " << to_string(bad) << ": DRC "
            << (satisfies_drc(r, bad) ? "satisfied" : "VIOLATED") << "\n";
  std::cout << "  (requests (1,3) and (2,4) of the paper cannot be routed "
               "edge-disjointly on C_4)\n\n";

  for (const Cycle& c : {Cycle{0, 1, 2, 3}, Cycle{0, 1, 3}, Cycle{0, 2, 3}}) {
    auto arcs = drc_route(r, c);
    std::cout << "cycle " << to_string(c) << ": DRC satisfied, routing = ";
    for (const auto& a : *arcs)
      std::cout << "[" << a.start << "->" << a.end(r) << "] ";
    std::cout << (ccov::ring::is_exact_tiling(r, *arcs)
                      ? "(tiles the ring exactly)"
                      : "(ERROR)")
              << "\n";
  }

  const RingCover good{4, {{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}};
  const auto rep = validate_cover(good);
  std::cout << "\npaper covering {C4 + two C3}: "
            << (rep.ok ? "valid DRC-covering of K_4" : rep.error) << "\n";
  return rep.ok ? 0 : 1;
}
