// Capacity planning across ring sizes and demand multiplicities: how many
// protected sub-networks (and wavelengths) does a metro ring need as it
// grows? Uses the closed forms of Theorems 1 and 2 plus the lambda*K_n
// extension.
//
//   ./capacity_planning [--max-n 32] [--lambda 2]

#include <iostream>

#include "ccov/covering/bounds.hpp"
#include "ccov/extensions/lambda_cover.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/util/table.hpp"

int main(int argc, char** argv) try {
  const ccov::util::Cli cli(argc, argv);
  const auto max_n = static_cast<std::uint32_t>(cli.get_int("max-n", 32));
  const auto lambda = static_cast<std::uint32_t>(cli.get_int("lambda", 2));

  using namespace ccov;
  ccov::util::Table t({"nodes", "requests", "subnets rho(n)",
                       "wavelengths", "subnets @ lambda",
                       "wavelengths @ lambda"});
  for (std::uint32_t n = 4; n <= max_n; n += 2) {
    const std::uint64_t requests =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    const auto r1 = covering::rho(n);
    const auto rl = extensions::rho_lambda_lower_bound(n, lambda);
    t.add(n, requests, r1, 2 * r1, rl, 2 * rl);
  }
  t.print(std::cout, "Ring capacity plan (all-to-all; lambda = " +
                         std::to_string(lambda) + " column is the lower "
                         "bound)");
  std::cout << "\nRule of thumb from the theorems: sub-networks grow as "
               "n^2/8 — double the ring size, quadruple the wavelength "
               "budget.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "capacity_planning: " << e.what() << "\n";
  return 1;
}
