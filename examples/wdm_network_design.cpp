// Full WDM network design flow, as a network operator would run it:
//   topology -> optimal DRC covering -> wavelength assignment -> cost
//   report -> DOT export of the logical sub-networks.
//
//   ./wdm_network_design [--n 13] [--adm-cost 1.0] [--wl-cost 1.0]

#include <fstream>
#include <iostream>

#include "ccov/covering/construct.hpp"
#include "ccov/graph/io.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/cost.hpp"
#include "ccov/wdm/network.hpp"

int main(int argc, char** argv) try {
  const ccov::util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 13));

  using namespace ccov;
  const auto cover = covering::build_optimal_cover(n);
  const auto inst = wdm::Instance::all_to_all(n);
  const wdm::WdmRingNetwork net(n, cover, inst);

  wdm::CostModel model;
  model.adm_cost = cli.get_double("adm-cost", 1.0);
  model.wavelength_cost = cli.get_double("wl-cost", 1.0);
  const auto cost = wdm::evaluate_cost(net, model);

  std::cout << "WDM ring with " << n << " optical switches, all-to-all "
            << inst.num_requests() << " requests\n\n";

  ccov::util::Table t({"subnet", "cycle", "wavelengths (work/spare)"});
  for (std::size_t k = 0; k < net.subnetworks().size(); ++k) {
    const auto& s = net.subnetworks()[k];
    t.add(k, covering::to_string(s.cycle),
          std::to_string(s.wavelength) + "/" +
              std::to_string(s.wavelength + 1));
  }
  t.print(std::cout, "Deployed sub-networks");

  std::cout << "\ncost report: subnets=" << cost.subnetworks
            << " wavelengths=" << cost.wavelengths << " ADMs=" << cost.adms
            << " transit=" << cost.transit << " total=" << cost.total
            << "\n";

  // Export the logical covering as DOT for documentation.
  graph::Graph logical(n);
  const auto add_chord = [&](covering::Vertex u, covering::Vertex v) {
    logical.add_edge(u, v);
  };
  for (const auto& s : net.subnetworks())
    covering::for_each_chord(s.cycle, add_chord);
  std::ofstream dot("wdm_subnetworks.dot");
  graph::write_dot(dot, logical, "subnetworks");
  std::cout << "wrote wdm_subnetworks.dot (logical sub-network edges)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "wdm_network_design: " << e.what() << "\n";
  return 1;
}
