// Survivability simulation: compare loop-back protection on the cycle
// cover (the paper's scheme) with path restoration and 1+1 whole-ring
// protection, for every single-link failure on the ring.
//
//   ./survivability_sim [--n 12]

#include <iostream>

#include "ccov/covering/construct.hpp"
#include "ccov/protection/simulator.hpp"
#include "ccov/util/cli.hpp"
#include "ccov/util/table.hpp"
#include "ccov/wdm/network.hpp"

int main(int argc, char** argv) try {
  const ccov::util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 12));

  using namespace ccov;
  using namespace ccov::protection;
  const auto inst = wdm::Instance::all_to_all(n);
  const wdm::WdmRingNetwork net(n, covering::build_optimal_cover(n), inst);

  ccov::util::Table t({"failed link", "scheme", "affected", "switches",
                       "max detour", "recovery ms"});
  for (std::uint32_t e = 0; e < n; ++e) {
    const LinkFailure f{e};
    const auto lb = simulate_loopback(net, f);
    const auto rs = simulate_restoration(n, inst, f);
    t.add(e, "loop-back", lb.affected_requests, lb.switching_actions,
          lb.max_detour_hops, lb.recovery_time_ms);
    t.add(e, "restoration", rs.affected_requests, rs.switching_actions,
          rs.max_detour_hops, rs.recovery_time_ms);
  }
  t.print(std::cout, "Per-failure recovery comparison");

  const auto avg_lb = average_over_failures(
      n, [&](LinkFailure f) { return simulate_loopback(net, f); });
  const auto avg_rs = average_over_failures(
      n, [&](LinkFailure f) { return simulate_restoration(n, inst, f); });
  std::cout << "\nmean recovery: loop-back " << avg_lb.recovery_time_ms
            << " ms vs restoration " << avg_rs.recovery_time_ms
            << " ms — pre-assigned per-sub-network protection recovers "
            << (avg_rs.recovery_time_ms / avg_lb.recovery_time_ms)
            << "x faster on this ring.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "survivability_sim: " << e.what() << "\n";
  return 1;
}
