# Helper for declaring one ccov library module.
#
#   ccov_add_module(<name>
#     SOURCES <src/a.cpp> ...
#     [DEPS <ccov::other> ... ]
#     [LINK_PRIVATE <lib> ...])
#
# Creates the static library target `ccov_<name>` with alias `ccov::<name>`,
# exporting `include/` as its public include directory. DEPS are PUBLIC so
# that a module's public headers may include its dependencies' headers;
# consumers must still link the modules whose headers they include directly.
function(ccov_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS;LINK_PRIVATE" ${ARGN})

  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "ccov_add_module(${name}): SOURCES is required")
  endif()

  add_library(ccov_${name} STATIC ${ARG_SOURCES})
  add_library(ccov::${name} ALIAS ccov_${name})

  target_include_directories(ccov_${name} PUBLIC
    $<BUILD_INTERFACE:${CMAKE_CURRENT_SOURCE_DIR}/include>
    $<INSTALL_INTERFACE:include>)

  target_compile_features(ccov_${name} PUBLIC cxx_std_20)

  if(ARG_DEPS)
    target_link_libraries(ccov_${name} PUBLIC ${ARG_DEPS})
  endif()
  if(ARG_LINK_PRIVATE)
    target_link_libraries(ccov_${name} PRIVATE ${ARG_LINK_PRIVATE})
  endif()
  target_link_libraries(ccov_${name} PRIVATE ccov::build_flags)

  set_target_properties(ccov_${name} PROPERTIES
    EXPORT_NAME ${name}
    POSITION_INDEPENDENT_CODE ON)
endfunction()

# Helper for one-file executables (benches, examples):
#
#   ccov_add_executable(<name> DEPS <ccov::mod|lib> ...)
#
# Compiles <name>.cpp from the calling directory and links the given deps
# plus the shared warning flags.
function(ccov_add_executable name)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARG_DEPS} ccov::build_flags)
endfunction()

# Appends DOWNLOAD_EXTRACT_TIMESTAMP to <outvar> when the running CMake
# understands it (3.24+); older versions would warn on the unknown keyword.
function(ccov_fetchcontent_extra_args outvar)
  set(extra "")
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.24)
    list(APPEND extra DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  endif()
  set(${outvar} "${extra}" PARENT_SCOPE)
endfunction()
