#include "harnesses.hpp"

#include <string>

#include "ccov/util/json.hpp"

int ccov_fuzz_json(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ccov::util::json::Value v;
  std::string error;
  ccov::util::json::Reader reader(text);
  (void)reader.parse(&v, &error);
  return 0;
}
