#include "harnesses.hpp"

#include <string>

#include "ccov/engine/net.hpp"

int ccov_fuzz_endpoint(const std::uint8_t* data, std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  std::string host, error;
  std::uint16_t port = 0;
  (void)ccov::engine::net::parse_endpoint(spec, &host, &port, &error);
  return 0;
}
