#include "harnesses.hpp"

#include <string>

#include "ccov/engine/http.hpp"

int ccov_fuzz_http_head(const std::uint8_t* data, std::size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  std::size_t head_end = 0, body_start = 0;
  // Mirror the server's sequencing: locate the terminator first, parse
  // only the head before it — but also parse the whole buffer as a
  // head, which is what happens to a terminator-free final read.
  std::string error;
  ccov::engine::net::HttpRequest req;
  if (ccov::engine::net::find_head_end(buf, &head_end, &body_start))
    (void)ccov::engine::net::parse_head(buf.substr(0, head_end), &req, &error);
  ccov::engine::net::HttpRequest whole;
  (void)ccov::engine::net::parse_head(buf, &whole, &error);
  return 0;
}
