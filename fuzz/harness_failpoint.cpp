#include "harnesses.hpp"

#include <string>

#include "ccov/util/failpoint.hpp"

int ccov_fuzz_failpoint(const std::uint8_t* data, std::size_t size) {
  const std::string config(reinterpret_cast<const char*>(data), size);
  std::string error;
  // validate() is the parse-only entry point: same grammar as
  // configure(), but arms nothing — so the harness stays side-effect
  // free (a fuzzed "crash" spec must never actually arm a crash).
  (void)ccov::util::failpoint::validate(config, &error);
  return 0;
}
