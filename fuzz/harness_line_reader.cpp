#include "harnesses.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "ccov/engine/serve.hpp"

namespace {

/// ServeStream over a fixed byte buffer, delivering reads in uneven
/// chunks (cycling 1, 7, 4096 bytes) so the framing layer sees the same
/// torn-line arrivals a socket produces.
class BufferStream final : public ccov::engine::ServeStream {
 public:
  BufferStream(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::ptrdiff_t read_some(char* buf, std::size_t n) override {
    if (pos_ >= size_ || n == 0) return 0;
    static constexpr std::size_t kChunks[] = {1, 7, 4096};
    const std::size_t want = kChunks[turn_++ % 3];
    const std::size_t got = std::min({n, want, size_ - pos_});
    std::memcpy(buf, data_ + pos_, got);
    pos_ += got;
    return static_cast<std::ptrdiff_t>(got);
  }

  bool write_all(const char*, std::size_t) override { return true; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t turn_ = 0;
};

}  // namespace

int ccov_fuzz_line_reader(const std::uint8_t* data, std::size_t size) {
  // First byte picks the line limit (0, tiny, or moderate) so the
  // too-long discard path is exercised as often as plain framing.
  std::size_t max_line = 0;
  if (size != 0) {
    static constexpr std::size_t kLimits[] = {0, 3, 64, 1024};
    max_line = kLimits[data[0] % 4];
    ++data;
    --size;
  }
  BufferStream io(data, size);
  ccov::engine::LineReader reader(io, max_line);
  std::string line;
  while (reader.next(&line) != ccov::engine::LineReader::Result::kEof) {
  }
  return 0;
}
