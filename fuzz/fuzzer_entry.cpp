/// libFuzzer entry: forwards to the harness named by the
/// CCOV_FUZZ_TARGET compile definition (one binary per surface).

#include "harnesses.hpp"

#ifndef CCOV_FUZZ_TARGET
#error "CCOV_FUZZ_TARGET must name a ccov_fuzz_* harness"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return CCOV_FUZZ_TARGET(data, size);
}
