#include "harnesses.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "ccov/engine/store.hpp"

int ccov_fuzz_snapshot(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream is(bytes);
  // Small cache: the loader must reject hostile sizes *before* sizing
  // any allocation, so capacity plays no part in safety.
  ccov::engine::CoverCache cache(16);
  try {
    (void)ccov::engine::load_snapshot(is, cache);
  } catch (const std::runtime_error&) {
    // Rejected input — the expected outcome for almost every mutation.
  }
  return 0;
}
