#pragma once
/// \file harnesses.hpp
/// One entry point per untrusted parse surface, each with the libFuzzer
/// signature. Every function must be deterministic, side-effect-free
/// beyond its own stack/heap, and total: any byte string returns 0 (the
/// only interesting outcomes are sanitizer aborts, crashes and hangs).
///
/// Build shapes (see CMakeLists.txt here):
///  - Clang + CCOV_USE_LIBFUZZER: fuzzer_entry.cpp forwards
///    LLVMFuzzerTestOneInput to the one harness named by the
///    CCOV_FUZZ_TARGET compile definition; -fsanitize=fuzzer drives it.
///  - anywhere else: driver_main.cpp replays files/directories named on
///    the command line through the same harness, which is exactly what
///    the tests/fuzz_corpus regression tests need — no fuzzer toolchain
///    required to re-check a pinned crash input.

#include <cstddef>
#include <cstdint>

/// util/json.hpp Reader — the JSONL serve protocol's parser.
int ccov_fuzz_json(const std::uint8_t* data, std::size_t size);

/// engine snapshot load (store.cpp) — the --cache-file warm-start path.
int ccov_fuzz_snapshot(const std::uint8_t* data, std::size_t size);

/// HTTP/1.1 request-head parser (http.hpp find_head_end + parse_head).
int ccov_fuzz_http_head(const std::uint8_t* data, std::size_t size);

/// serve.hpp LineReader — newline framing over a ServeStream.
int ccov_fuzz_line_reader(const std::uint8_t* data, std::size_t size);

/// net.hpp parse_endpoint — the --listen/--http "host:port" spec.
int ccov_fuzz_endpoint(const std::uint8_t* data, std::size_t size);

/// failpoint::validate — the CCOV_FAILPOINTS env spec parser.
int ccov_fuzz_failpoint(const std::uint8_t* data, std::size_t size);
