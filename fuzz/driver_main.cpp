/// Standalone replay driver for builds without libFuzzer (GCC, MSVC):
/// every non-dash argument is a corpus file or a directory of corpus
/// files, each fed once through the harness named by CCOV_FUZZ_TARGET.
/// Dash arguments (libFuzzer flags like -runs=0) are ignored, so the
/// corpus-replay ctest command line is identical under both builds.
/// Exits 0 when every input was processed; a crashing input aborts the
/// process, which is exactly what the regression test asserts against.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harnesses.hpp"

#ifndef CCOV_FUZZ_TARGET
#error "CCOV_FUZZ_TARGET must name a ccov_fuzz_* harness"
#endif

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n",
                 path.string().c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)CCOV_FUZZ_TARGET(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  std::fprintf(stderr, "fuzz driver: ok %s (%zu bytes)\n",
               path.string().c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 0;
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag: ignore
    const std::filesystem::path p(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        rc |= run_file(entry.path());
        ++ran;
      }
    } else {
      rc |= run_file(p);
      ++ran;
    }
  }
  std::fprintf(stderr, "fuzz driver: replayed %zu input(s)\n", ran);
  return rc;
}
